#!/usr/bin/env python3
"""Direction-optimizing BFS on the accelerator (extension study).

The paper's introduction cites Beamer's direction-optimizing BFS [4] as
a key algorithmic advance; this example shows what it buys on top of the
ScalaGraph hardware.  On low-diameter power-law graphs the bottom-up
(pull) phases examine a small fraction of the edges the classic top-down
traversal scatters, and the savings carry straight through the timing
model via :meth:`ScalaGraph.run_trace`.
"""

from repro import BFS, ScalaGraph, ScalaGraphConfig, load_dataset, run_reference
from repro.algorithms import run_direction_optimizing_bfs
from repro.algorithms.dobfs import as_workload
from repro.experiments import format_table
from repro.graph import largest_out_component_root


def main() -> None:
    accel = ScalaGraph(ScalaGraphConfig())
    rows = []
    for name in ("PK", "LJ", "TW"):
        graph = load_dataset(name)
        root = largest_out_component_root(graph)

        plain = run_reference(BFS(root=root), graph)
        plain_report = accel.run(BFS(root=root), graph, reference=plain)

        dobfs = run_direction_optimizing_bfs(graph, root=root)
        assert (dobfs.depths == plain.properties).all()
        dobfs_report = accel.run_trace(
            graph,
            as_workload(dobfs),
            algorithm="dobfs",
            monotonic=True,
            properties=dobfs.depths,
        )
        rows.append(
            [
                name,
                plain.total_edges_traversed,
                dobfs.total_edges_examined,
                f"{1 - dobfs.total_edges_examined / plain.total_edges_traversed:.0%}",
                dobfs.pull_iterations,
                plain_report.total_cycles,
                dobfs_report.total_cycles,
                plain_report.total_cycles / dobfs_report.total_cycles,
            ]
        )

    print(
        format_table(
            [
                "Graph",
                "push edges",
                "DO edges",
                "edges saved",
                "pull iters",
                "push cycles",
                "DO cycles",
                "speedup",
            ],
            rows,
            title="Direction-optimizing BFS vs top-down BFS on ScalaGraph-512",
        )
    )
    print(
        "\nThe pull phases skip edges into already-visited vertices — the "
        "same result, computed\nwith a fraction of the traffic, and the "
        "accelerator's cycle count follows the edge count."
    )


if __name__ == "__main__":
    main()
