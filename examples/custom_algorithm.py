#!/usr/bin/env python3
"""Write a new algorithm against the vertex-centric API (paper Figure 1).

ScalaGraph runs any Process/Reduce/Apply program; this example adds
**widest path** (maximum-bottleneck path): the property of a vertex is
the largest minimum edge weight along any path from the source.  Widest
path is monotonically *increasing*, so it is still safe under the
inter-phase pipelining of Section IV-D.

The example validates the program on the functional reference engine and
the detailed cycle-level simulator, then measures it on the 512-PE
timing model.
"""

import numpy as np

from repro import (
    FunctionalScalaGraph,
    ScalaGraph,
    ScalaGraphConfig,
    load_dataset,
    run_reference,
)
from repro.algorithms.base import ProgramContext, VertexProgram


class WidestPath(VertexProgram):
    """Maximum-bottleneck path from a source vertex.

    Process emits ``min(width(src), edge_weight)``; Reduce keeps the
    maximum; Apply adopts wider paths.  The source starts at +inf (its
    own bottleneck is unconstrained), everything else at 0.
    """

    name = "widest_path"
    monotonic = True  # widths only grow: pipelining-safe
    all_active = False
    needs_weights = True

    def __init__(self, source: int = 0) -> None:
        self.source = source

    def initial_properties(self, ctx: ProgramContext) -> np.ndarray:
        props = np.zeros(ctx.num_vertices, dtype=np.float64)
        props[self.source] = np.inf
        return props

    def initial_active(self, ctx: ProgramContext) -> np.ndarray:
        return np.array([self.source], dtype=np.int64)

    @property
    def reduce_ufunc(self) -> np.ufunc:
        return np.maximum

    @property
    def reduce_identity(self) -> float:
        return 0.0

    def scatter_value(self, ctx, edge_src, edge_weight, src_prop):
        return np.minimum(src_prop, edge_weight)

    def apply_values(self, ctx, props, vtemp):
        return np.maximum(props, vtemp)


def widest_path_dijkstra(graph, source):
    """Slow gold model: Dijkstra with a max-heap over widths."""
    import heapq

    width = np.zeros(graph.num_vertices)
    width[source] = np.inf
    heap = [(-np.inf, source)]
    done = np.zeros(graph.num_vertices, dtype=bool)
    while heap:
        negw, v = heapq.heappop(heap)
        if done[v]:
            continue
        done[v] = True
        for u, w in zip(graph.neighbors(v), graph.edge_weights(v)):
            cand = min(-negw, w)
            if cand > width[u]:
                width[u] = cand
                heapq.heappush(heap, (-cand, int(u)))
    return width


def main() -> None:
    graph = load_dataset("PK", weighted=True)
    program = WidestPath(source=0)

    # 1. Functional reference run.
    reference = run_reference(program, graph)
    print(
        f"widest_path on {graph}: {reference.num_iterations} iterations, "
        f"{reference.total_edges_traversed:,} edges"
    )

    # 2. Validate against an independent Dijkstra implementation on a
    #    small projection (the full graph would be slow in pure Python).
    small = graph.subgraph(np.arange(256))
    gold = widest_path_dijkstra(small, 0)
    ours = run_reference(WidestPath(source=0), small).properties
    assert np.array_equal(ours, gold), "vertex-centric widest path is wrong!"
    print("validated against Dijkstra on a 256-vertex projection")

    # 3. The detailed cycle-level architecture computes the same thing.
    tiny = graph.subgraph(np.arange(128))
    detailed = FunctionalScalaGraph().run(WidestPath(source=0), tiny)
    assert np.array_equal(
        detailed.properties, run_reference(WidestPath(0), tiny).properties
    )
    print(
        f"cycle-level simulator agrees "
        f"({detailed.stats.noc_hops} NoC hops, "
        f"{detailed.stats.updates_coalesced} updates coalesced)"
    )

    # 4. Measure on the 512-PE accelerator.
    report = ScalaGraph(ScalaGraphConfig()).run(
        program, graph, reference=reference
    )
    print("\n" + report.summary())
    print(
        f"  inter-phase pipelining used: "
        f"{bool(report.extra['pipelining_used'])} (monotonic program)"
    )
    finite = np.isfinite(report.properties) & (report.properties > 0)
    print(
        f"  vertices with a path from v0: {int(finite.sum()):,}; "
        f"median bottleneck width "
        f"{np.median(report.properties[finite & (report.properties < np.inf)]):.0f}"
    )


if __name__ == "__main__":
    main()
