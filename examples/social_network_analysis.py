#!/usr/bin/env python3
"""Social-network analysis on the accelerator: the paper's motivating use.

Three classic analyses on the Pokec stand-in:

* **influence** — PageRank, surfacing the most influential accounts;
* **reachability** — BFS from the top influencer (how many hops to
  reach the whole network);
* **communities** — connected components on the symmetrised graph.

Each analysis runs functionally and through the ScalaGraph timing model,
reporting what the accelerator would deliver.
"""

import numpy as np

from repro import (
    BFS,
    ConnectedComponents,
    PageRank,
    ScalaGraph,
    ScalaGraphConfig,
    load_dataset,
    run_reference,
)
from repro.graph import symmetrize


def main() -> None:
    graph = load_dataset("PK")
    accel = ScalaGraph(ScalaGraphConfig())
    print(f"Analysing {graph} on {accel!r}\n")

    # ------------------------------------------------------------------
    # 1. Influence: PageRank.
    # ------------------------------------------------------------------
    pr = PageRank(max_iters=15)
    pr_ref = run_reference(pr, graph)
    pr_report = accel.run(pr, graph, reference=pr_ref)
    influencers = np.argsort(pr_report.properties)[-3:][::-1]
    print("[influence] " + pr_report.summary())
    print(
        "  top influencers: "
        + ", ".join(
            f"v{v} (rank {pr_report.properties[v]:.2e}, "
            f"{graph.in_degrees()[v]} followers)"
            for v in influencers
        )
    )

    # ------------------------------------------------------------------
    # 2. Reachability: BFS from the top influencer.
    # ------------------------------------------------------------------
    root = int(influencers[0])
    bfs = BFS(root=root)
    bfs_ref = run_reference(bfs, graph)
    bfs_report = accel.run(bfs, graph, reference=bfs_ref)
    depths = bfs_report.properties
    reached = np.isfinite(depths)
    print(f"\n[reachability] " + bfs_report.summary())
    print(
        f"  from v{root}: {reached.sum():,}/{graph.num_vertices:,} vertices "
        f"reachable, max depth {int(depths[reached].max())}, "
        f"median depth {int(np.median(depths[reached]))}"
    )

    # ------------------------------------------------------------------
    # 3. Communities: CC on the symmetrised graph.
    # ------------------------------------------------------------------
    sym = symmetrize(graph)
    cc = ConnectedComponents()
    cc_ref = run_reference(cc, sym)
    cc_report = accel.run(cc, sym, reference=cc_ref)
    labels = cc_report.properties.astype(np.int64)
    sizes = np.bincount(np.unique(labels, return_inverse=True)[1])
    print(f"\n[communities] " + cc_report.summary())
    print(
        f"  {sizes.size} components; largest covers "
        f"{sizes.max() / sym.num_vertices:.1%} of the network"
    )

    # Inter-phase pipelining mattered here: CC is monotonic.
    assert cc_report.extra["pipelining_used"] == 1.0
    total_ms = sum(
        r.seconds for r in (pr_report, bfs_report, cc_report)
    ) * 1e3
    print(f"\nAll three analyses: {total_ms:.2f} ms of accelerator time.")


if __name__ == "__main__":
    main()
