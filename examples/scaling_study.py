#!/usr/bin/env python3
"""Scalability study: why the distributed on-chip memory matters.

Sweeps the PE count for ScalaGraph (mesh) and a crossbar design
(GraphDynS-style), showing the paper's central claim: the crossbar's
O(N^2) hardware caps its clock and then fails to route entirely, while
the mesh scales to 1,024+ PEs (Sections II-B, V-E; Figures 4 and 21,
Table IV).
"""

from repro import (
    GraphDynS,
    PageRank,
    ScalaGraph,
    ScalaGraphConfig,
    SynthesisError,
    load_dataset,
    run_reference,
)
from repro.experiments import format_table
from repro.models.frequency import max_frequency_mhz, synthesizes


def main() -> None:
    graph = load_dataset("OR")
    program = PageRank(max_iters=10)
    reference = run_reference(program, graph)
    print(f"Scaling study on {graph}\n")

    rows = []
    for pes in (32, 64, 128, 256, 512, 1024):
        sg = ScalaGraph(ScalaGraphConfig().with_pes(pes)).run(
            program, graph, reference=reference
        )
        if synthesizes("crossbar", pes):
            gd = GraphDynS.with_pes(pes).run(
                program, graph, reference=reference
            )
            gd_cell = f"{gd.gteps:.2f} @ {gd.frequency_mhz:.0f} MHz"
        else:
            gd_cell = "route failure"
        rows.append(
            [
                pes,
                f"{sg.gteps:.2f} @ {sg.frequency_mhz:.0f} MHz",
                f"{sg.pe_utilization:.0%}",
                gd_cell,
            ]
        )
    print(
        format_table(
            ["PEs", "ScalaGraph (mesh)", "util", "GraphDynS (crossbar)"],
            rows,
            title="GTEPS and clock vs PE count",
        )
    )

    print("\nSynthesis model detail (Table IV):")
    for pes in (128, 256, 1024):
        mesh = max_frequency_mhz("mesh", pes)
        try:
            xbar = f"{max_frequency_mhz('crossbar', pes):.0f} MHz"
        except SynthesisError as exc:
            xbar = f"fails ({exc})"
        print(f"  {pes:5d} PEs: mesh {mesh:.0f} MHz, crossbar {xbar}")


if __name__ == "__main__":
    main()
