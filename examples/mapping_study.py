#!/usr/bin/env python3
"""Study the three workload-PE mappings (paper Section IV-A, Table II).

Places one PageRank frontier on meshes of growing size under the
source-oriented, destination-oriented, and row-oriented mappings, and
prints the communication volumes that motivate ScalaGraph's row-oriented
design — then confirms the end-to-end effect with full timing-model runs.
"""

import numpy as np

from repro import PageRank, ScalaGraph, ScalaGraphConfig, load_dataset, run_reference
from repro.algorithms.reference import gather_frontier_edges
from repro.experiments import format_table
from repro.mapping import make_mapping
from repro.noc.topology import MeshTopology


def main() -> None:
    graph = load_dataset("LJ")
    src, dst, _ = gather_frontier_edges(
        graph, np.arange(graph.num_vertices)
    )
    updated = np.unique(dst)
    print(f"One PageRank Scatter phase on {graph}: {src.size:,} edge workloads\n")

    rows = []
    for side in (4, 8, 16):
        topo = MeshTopology(side, side)
        for name in ("som", "dom", "rom"):
            mapping = make_mapping(name, topo)
            scatter = mapping.scatter_traffic(src, dst)
            apply_t = mapping.apply_traffic(updated)
            rows.append(
                [
                    f"{side}x{side}",
                    name.upper(),
                    scatter.num_messages,
                    scatter.total_hops,
                    float(scatter.average_hops),
                    apply_t.total_hops,
                    mapping.replica_storage_vertices(graph.num_vertices),
                ]
            )
    print(
        format_table(
            [
                "Mesh",
                "Mapping",
                "Scatter msgs",
                "Scatter hops",
                "avg hops",
                "Apply hops",
                "replica storage",
            ],
            rows,
            title="Table II, measured (per Scatter/Apply phase)",
        )
    )

    print("\nEnd-to-end timing-model runs (512 PEs):")
    program = PageRank(max_iters=10)
    reference = run_reference(program, graph)
    for name in ("som", "rom"):
        accel = ScalaGraph(ScalaGraphConfig(mapping=name))
        report = accel.run(program, graph, reference=reference)
        print(f"  {name.upper()}: {report.gteps:6.2f} GTEPS "
              f"({report.total_noc_hops:,} NoC hops)")
    print(
        "\nThe row-oriented mapping turns same-row remote accesses into "
        "local ones,\nhalving Scatter traffic without DOM's O(N*K) "
        "replicas — Section IV-A."
    )


if __name__ == "__main__":
    main()
