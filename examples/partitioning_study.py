#!/usr/bin/env python3
"""Graph partitioning study: what happens when vertices outgrow the SPD.

Section III-A: graphs whose vertex properties cannot reside in the
scratchpad are sliced Graphicionado-style into destination intervals and
processed round-robin.  This study shrinks the scratchpad on a fixed
graph and shows the cost: more partition passes per iteration, and the
loss of inter-phase pipelining (Section V-D: partitioned TW gains least
from pipelining).
"""

from repro import ConnectedComponents, ScalaGraph, ScalaGraphConfig, load_dataset, run_reference
from repro.experiments import format_table
from repro.graph.partition import slice_intervals
from repro.memory.spd import ScratchpadConfig


def main() -> None:
    graph = load_dataset("TW")
    program = ConnectedComponents()
    reference = run_reference(program, graph)
    print(
        f"CC on {graph}: {reference.num_iterations} iterations, "
        f"{reference.total_edges_traversed:,} edges\n"
    )

    rows = []
    full_budget = graph.num_vertices * 8  # bytes to hold everything
    for divisor in (1, 2, 4, 8, 16):
        spd = ScratchpadConfig(total_bytes=max(full_budget // divisor, 64))
        partitions = slice_intervals(graph, spd.capacity_vertices)
        config = ScalaGraphConfig(spd=spd)
        report = ScalaGraph(config).run(program, graph, reference=reference)
        no_pipe = ScalaGraph(
            ScalaGraphConfig(spd=spd, inter_phase_pipelining=False)
        ).run(program, graph, reference=reference)
        rows.append(
            [
                f"1/{divisor}",
                len(partitions),
                report.gteps,
                no_pipe.total_cycles / report.total_cycles,
            ]
        )

    print(
        format_table(
            [
                "SPD budget",
                "partitions",
                "GTEPS",
                "pipelining speedup",
            ],
            rows,
            title="Shrinking the scratchpad: partitioning cost on CC/TW",
        )
    )
    print(
        "\nOnce the graph no longer fits (partitions > 1), every Scatter "
        "pass re-streams the\nactive list, per-pass overheads multiply, "
        "and the inter-phase pipeline shuts off\n(updated properties of "
        "one partition cannot feed the next pass) — Section V-D."
    )


if __name__ == "__main__":
    main()
