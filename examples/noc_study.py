#!/usr/bin/env python3
"""Interconnect study: why ScalaGraph picked a plain 2D mesh.

Walks through the paper's Section III-A reasoning with the library's
cycle-level simulators and models:

1. hardware complexity and achievable clock per interconnect (Figure 8);
2. saturation throughput of the mesh under canonical traffic patterns,
   including the hotspot pattern a hub vertex induces;
3. what the crossbar's single-cycle routing costs at scale, and what the
   torus's shorter routes would (not) buy.
"""

from repro.experiments import bar_chart, format_table
from repro.models.frequency import Interconnect, max_frequency_mhz, synthesizes
from repro.noc.benes import BenesNetwork
from repro.noc.patterns import PATTERNS, saturation_throughput
from repro.noc.topology import MeshTopology
from repro.noc.torus import TorusTopology


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Clock vs complexity.
    # ------------------------------------------------------------------
    rows = []
    for pes in (64, 128, 256, 512, 1024):
        row = [pes]
        for kind in Interconnect:
            if synthesizes(kind, pes):
                row.append(f"{max_frequency_mhz(kind, pes):.0f}")
            else:
                row.append("fail")
        rows.append(row)
    print(
        format_table(
            ["PEs"] + [k.value for k in Interconnect],
            rows,
            title="Max clock (MHz) by interconnect — Figure 8",
        )
    )
    benes = BenesNetwork(256)
    print(
        f"\nComplexity at 256 endpoints: crossbar 256^2 = 65,536 "
        f"crosspoints; Benes {benes.num_switches} switches over "
        f"{benes.depth} stages; mesh: 256 five-port routers.\n"
    )

    # ------------------------------------------------------------------
    # 2. Mesh behaviour under canonical traffic.
    # ------------------------------------------------------------------
    topo = MeshTopology(8, 8)
    throughputs = {
        name: saturation_throughput(topo, name, packets=500, seed=1)
        for name in sorted(PATTERNS)
    }
    print("8x8 mesh saturation throughput (packets/node/cycle):")
    print(bar_chart(throughputs, value_fmt="{:.3f}"))
    print(
        "\nHotspot traffic — what a hub vertex creates — is the killer "
        "pattern; ScalaGraph's\naggregation pipeline coalesces it before "
        "it reaches the links (Section IV-B).\n"
    )

    # ------------------------------------------------------------------
    # 3. Route-length comparison: mesh vs torus.
    # ------------------------------------------------------------------
    mesh = MeshTopology(16, 16)
    torus = TorusTopology(16, 16)
    print(
        format_table(
            ["Topology", "avg hops (any pair)", "avg hops (column only)"],
            [
                ["16x16 mesh", mesh.average_distance(), mesh.average_column_distance()],
                ["16x16 torus", torus.average_distance(), torus.average_column_distance()],
            ],
            title="Route lengths: what wrap-around links would buy",
        )
    )
    print(
        "\nThe row-oriented mapping already confines traffic to columns "
        "(~5.3 hops); the torus\nwould shave ~25% more hops but costs "
        "clock margin on an FPGA and, as the ablation bench\nshows "
        "(benchmarks/bench_ablation_design.py), buys almost no end-to-end "
        "performance —\nthe mesh is simply not ScalaGraph's bottleneck. "
        "That is the paper's design point."
    )


if __name__ == "__main__":
    main()
