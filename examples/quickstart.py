#!/usr/bin/env python3
"""Quickstart: run PageRank on ScalaGraph and compare with the baselines.

Usage::

    python examples/quickstart.py [dataset]

where ``dataset`` is one of PK, LJ, OR, RM, TW (default PK).
"""

import sys

from repro import (
    GraphDynS,
    Gunrock,
    PageRank,
    ScalaGraph,
    ScalaGraphConfig,
    load_dataset,
    run_reference,
)


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "PK"
    graph = load_dataset(dataset)
    print(f"Loaded {graph}")

    program = PageRank(max_iters=10)

    # One functional execution provides gold results and the iteration
    # traces every timing model replays.
    reference = run_reference(program, graph)
    print(
        f"PageRank converged={reference.converged} after "
        f"{reference.num_iterations} iterations, "
        f"{reference.total_edges_traversed:,} edges traversed"
    )

    # The paper's flagship: two tiles x 16x16 PEs = 512 PEs @ 250 MHz.
    scalagraph = ScalaGraph(ScalaGraphConfig())
    report = scalagraph.run(program, graph, reference=reference)
    print("\n" + report.summary())
    print(
        f"  PE utilisation {report.pe_utilization:.1%}, "
        f"NoC messages {report.total_noc_messages:,}, "
        f"coalesced by aggregation {report.total_coalesced:,}, "
        f"energy {report.energy_joules * 1e3:.2f} mJ"
    )

    print("\nBaselines:")
    for baseline in (GraphDynS.with_128_pes(), GraphDynS.with_512_pes(), Gunrock()):
        b = baseline.run(program, graph, reference=reference)
        print(
            f"  {b.accelerator:>16s}: {b.gteps:6.2f} GTEPS "
            f"(ScalaGraph-512 is {report.gteps / b.gteps:.2f}x faster)"
        )

    top = report.properties.argsort()[-5:][::-1]
    print("\nTop-5 vertices by rank:", ", ".join(map(str, top)))


if __name__ == "__main__":
    main()
