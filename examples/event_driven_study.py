#!/usr/bin/env python3
"""Bulk-synchronous vs event-driven execution (GraphPulse study).

The paper's Figure 1 model is bulk-synchronous: each iteration
re-scatters every active vertex, even when most updates change nothing.
GraphPulse-style event-driven execution processes only live updates and
coalesces same-vertex events in its queue.  This study measures the
work gap on the reproduction's engines and then shows the other side of
the trade: the event design's centralised queue sits behind a
multi-stage crossbar whose clock collapses long before ScalaGraph's
mesh does.
"""

from repro import (
    BFS,
    SSSP,
    EventDrivenEngine,
    GraphPulse,
    ScalaGraph,
    ScalaGraphConfig,
    load_dataset,
    run_reference,
)
from repro.experiments import format_table
from repro.models.frequency import max_frequency_mhz, synthesizes


def main() -> None:
    engine = EventDrivenEngine()
    rows = []
    for name in ("PK", "LJ", "TW"):
        graph = load_dataset(name, weighted=True)
        program = SSSP()
        bsp = run_reference(program, graph)
        event = engine.run(program, graph)
        assert (event.properties == bsp.properties).all()
        rows.append(
            [
                name,
                bsp.total_edges_traversed,
                event.stats.events_processed,
                f"{1 - event.stats.events_processed / bsp.total_edges_traversed:.0%}",
                f"{event.stats.coalesce_rate:.0%}",
            ]
        )
    print(
        format_table(
            [
                "Graph",
                "BSP edge traversals",
                "events processed",
                "work saved",
                "queue coalesce rate",
            ],
            rows,
            title="SSSP: bulk-synchronous vs event-driven work "
            "(identical results)",
        )
    )

    graph = load_dataset("PK")
    pulse = GraphPulse().run(BFS(), graph)
    scala = ScalaGraph(ScalaGraphConfig()).run(BFS(), graph)
    print(
        f"\nBFS on PK: {pulse.accelerator} @ {pulse.frequency_mhz:.0f} MHz "
        f"-> {pulse.seconds * 1e6:.1f} us; "
        f"{scala.accelerator} @ {scala.frequency_mhz:.0f} MHz "
        f"-> {scala.seconds * 1e6:.1f} us"
    )
    print(
        "\nThe interconnect is the catch: the multi-stage crossbar "
        "clocks at "
        f"{max_frequency_mhz('multistage_crossbar', 256):.0f} MHz at 256 PEs "
        f"and fails to synthesise at 512 "
        f"(synthesizes: {synthesizes('multistage_crossbar', 512)}), while "
        f"ScalaGraph's mesh holds "
        f"{max_frequency_mhz('mesh', 512):.0f} MHz at 512 PEs — "
        "Section VI's scalability argument."
    )


if __name__ == "__main__":
    main()
