"""Small shared numpy utilities."""

from __future__ import annotations

import numpy as np


def grouped_arange(sorted_keys: np.ndarray) -> np.ndarray:
    """``0,1,2,...`` restarting whenever an ascending key array changes.

    ``sorted_keys`` must be grouped (all equal keys adjacent); the result
    gives each element its rank within its group, preserving order.
    """
    sorted_keys = np.asarray(sorted_keys)
    if sorted_keys.size == 0:
        return np.zeros(0, dtype=np.int64)
    is_start = np.empty(sorted_keys.size, dtype=bool)
    is_start[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=is_start[1:])
    idx = np.arange(sorted_keys.size, dtype=np.int64)
    start_idx = np.where(is_start, idx, 0)
    np.maximum.accumulate(start_idx, out=start_idx)
    return idx - start_idx


def grouped_arange_from_counts(counts: np.ndarray) -> np.ndarray:
    """``[0..c0-1, 0..c1-1, ...]`` for a vector of group sizes."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ids = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    idx = np.arange(total, dtype=np.int64)
    starts = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    return idx - starts[ids]
