"""Breadth-first search in the vertex-centric model.

Property = hop distance from the root.  Process emits ``depth(src) + 1``;
Reduce is ``min``; Apply keeps the smaller of old and proposed depth.
Updates are monotonically decreasing, so BFS is safe under the paper's
inter-phase pipelining (Section IV-D).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ProgramContext, VertexProgram
from repro.errors import ConfigurationError

UNREACHED = np.inf


class BFS(VertexProgram):
    """BFS from a root vertex; vertex property is the hop distance."""

    name = "bfs"
    monotonic = True
    all_active = False
    needs_weights = False

    def __init__(self, root: int = 0) -> None:
        if root < 0:
            raise ConfigurationError("BFS root must be non-negative")
        self.root = root

    def validate(self, ctx: ProgramContext) -> None:
        if self.root >= ctx.num_vertices:
            raise ConfigurationError(
                f"BFS root {self.root} outside graph with "
                f"{ctx.num_vertices} vertices"
            )

    def initial_properties(self, ctx: ProgramContext) -> np.ndarray:
        props = np.full(ctx.num_vertices, UNREACHED, dtype=np.float64)
        props[self.root] = 0.0
        return props

    def initial_active(self, ctx: ProgramContext) -> np.ndarray:
        return np.array([self.root], dtype=np.int64)

    @property
    def reduce_ufunc(self) -> np.ufunc:
        return np.minimum

    @property
    def reduce_identity(self) -> float:
        return np.inf

    def scatter_value(
        self,
        ctx: ProgramContext,
        edge_src: np.ndarray,
        edge_weight: np.ndarray,
        src_prop: np.ndarray,
    ) -> np.ndarray:
        return src_prop + 1.0

    def apply_values(
        self,
        ctx: ProgramContext,
        props: np.ndarray,
        vtemp: np.ndarray,
    ) -> np.ndarray:
        return np.minimum(props, vtemp)
