"""Single-source widest path (maximum-bottleneck path) in the VCM.

The property of a vertex is the largest minimum edge weight along any
path from the source.  Process emits ``min(width(src), weight)``; Reduce
keeps the maximum; Apply adopts wider paths.  Widths only increase, so
SSWP is monotonic and safe under the inter-phase pipelining of
Section IV-D — a useful fifth algorithm because its Reduce is ``max``
(exercising the aggregation pipeline with a different operator family
than the min-based BFS/SSSP/CC and the add-based PageRank).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ProgramContext, VertexProgram
from repro.errors import ConfigurationError


class WidestPath(VertexProgram):
    """SSWP from a source vertex; property = bottleneck width."""

    name = "sswp"
    monotonic = True
    all_active = False
    needs_weights = True

    def __init__(self, source: int = 0) -> None:
        if source < 0:
            raise ConfigurationError("source must be non-negative")
        self.source = source

    def validate(self, ctx: ProgramContext) -> None:
        if self.source >= ctx.num_vertices:
            raise ConfigurationError(
                f"source {self.source} outside graph with "
                f"{ctx.num_vertices} vertices"
            )
        if ctx.graph.weights is not None and ctx.graph.weights.size:
            if int(ctx.graph.weights.min()) < 0:
                raise ConfigurationError("SSWP requires non-negative weights")

    def initial_properties(self, ctx: ProgramContext) -> np.ndarray:
        props = np.zeros(ctx.num_vertices, dtype=np.float64)
        props[self.source] = np.inf  # the source's bottleneck is unbounded
        return props

    def initial_active(self, ctx: ProgramContext) -> np.ndarray:
        return np.array([self.source], dtype=np.int64)

    @property
    def reduce_ufunc(self) -> np.ufunc:
        return np.maximum

    @property
    def reduce_identity(self) -> float:
        return 0.0

    def scatter_value(
        self,
        ctx: ProgramContext,
        edge_src: np.ndarray,
        edge_weight: np.ndarray,
        src_prop: np.ndarray,
    ) -> np.ndarray:
        return np.minimum(src_prop, edge_weight)

    def apply_values(
        self,
        ctx: ProgramContext,
        props: np.ndarray,
        vtemp: np.ndarray,
    ) -> np.ndarray:
        return np.maximum(props, vtemp)
