"""Sparse matrix-vector multiplication in the vertex-centric model.

``y = A^T x`` over the graph's weighted adjacency matrix: Process emits
``x[src] * weight``, Reduce accumulates, Apply stores the sum.  SpMV is
a single-pass workload (one Scatter + one Apply, like one PageRank
iteration) and is the conventional microbenchmark for an accelerator's
raw streaming throughput.  Non-monotonic by nature, so inter-phase
pipelining stays off — but with one iteration there is nothing to
overlap anyway.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import ProgramContext, VertexProgram
from repro.errors import ConfigurationError


class SpMV(VertexProgram):
    """One sparse matrix-vector product over the adjacency structure.

    Args:
        x: input vector (defaults to all ones, yielding weighted
            in-degrees).
    """

    name = "spmv"
    monotonic = False
    all_active = True
    needs_weights = True

    def __init__(self, x: Optional[np.ndarray] = None) -> None:
        self.x = None if x is None else np.asarray(x, dtype=np.float64)

    def validate(self, ctx: ProgramContext) -> None:
        if self.x is not None and self.x.shape != (ctx.num_vertices,):
            raise ConfigurationError(
                f"x must have one entry per vertex "
                f"({ctx.num_vertices}), got {self.x.shape}"
            )

    def initial_properties(self, ctx: ProgramContext) -> np.ndarray:
        if self.x is None:
            return np.ones(ctx.num_vertices, dtype=np.float64)
        return self.x.copy()

    def initial_active(self, ctx: ProgramContext) -> np.ndarray:
        return np.arange(ctx.num_vertices, dtype=np.int64)

    @property
    def reduce_ufunc(self) -> np.ufunc:
        return np.add

    @property
    def reduce_identity(self) -> float:
        return 0.0

    def scatter_value(
        self,
        ctx: ProgramContext,
        edge_src: np.ndarray,
        edge_weight: np.ndarray,
        src_prop: np.ndarray,
    ) -> np.ndarray:
        return src_prop * edge_weight

    def apply_values(
        self,
        ctx: ProgramContext,
        props: np.ndarray,
        vtemp: np.ndarray,
    ) -> np.ndarray:
        return vtemp

    def is_updated(self, old: np.ndarray, new: np.ndarray) -> np.ndarray:
        # Single pass: nothing re-activates.
        return np.zeros_like(old, dtype=bool)

    def max_iterations(self, ctx: ProgramContext) -> int:
        return 1
