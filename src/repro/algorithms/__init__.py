"""Vertex-centric programming model and the paper's four algorithms.

Section V-A evaluates BFS, SSSP, CC, and PageRank written against the
Process/Reduce/Apply model of Figure 1.  :mod:`repro.algorithms.base`
defines the :class:`VertexProgram` interface, and
:mod:`repro.algorithms.reference` provides a functional engine that runs a
program to convergence, producing gold results plus the per-iteration
active-set traces that drive the accelerator timing models.
"""

from repro.algorithms.base import ProgramContext, VertexProgram
from repro.algorithms.bfs import BFS
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.pagerank import PageRank
from repro.algorithms.spmv import SpMV
from repro.algorithms.sssp import SSSP
from repro.algorithms.sswp import WidestPath
from repro.algorithms.dobfs import (
    DirectionOptimizingResult,
    DirectionStep,
    run_direction_optimizing_bfs,
)
from repro.algorithms.reference import (
    IterationTrace,
    ReferenceResult,
    run_reference,
)

#: The paper's four algorithms plus two extensions (SpMV as a raw
#: throughput microbenchmark, SSWP as a max-reduce monotonic program).
ALGORITHMS = {
    "bfs": BFS,
    "sssp": SSSP,
    "cc": ConnectedComponents,
    "pagerank": PageRank,
    "spmv": SpMV,
    "sswp": WidestPath,
}


def make_algorithm(name: str, **kwargs) -> VertexProgram:
    """Instantiate one of the paper's four algorithms by name."""
    key = name.lower()
    if key not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}")
    return ALGORITHMS[key](**kwargs)


__all__ = [
    "ProgramContext",
    "VertexProgram",
    "BFS",
    "SSSP",
    "ConnectedComponents",
    "PageRank",
    "SpMV",
    "WidestPath",
    "DirectionOptimizingResult",
    "DirectionStep",
    "run_direction_optimizing_bfs",
    "IterationTrace",
    "ReferenceResult",
    "run_reference",
    "ALGORITHMS",
    "make_algorithm",
]
