"""Connected components via label propagation in the VCM.

Every vertex starts labelled with its own ID; Process forwards the source
label, Reduce keeps the minimum, and Apply adopts smaller labels.  Labels
only decrease, so CC is monotonic (pipelining-safe, Section IV-D).  All
vertices are active in the first iteration.

Note: on a *directed* CSR graph this computes components of the directed
edge relation as seen by label propagation; to obtain classic undirected
connected components, symmetrise the graph first (each edge stored both
ways), which is what the examples do.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ProgramContext, VertexProgram


class ConnectedComponents(VertexProgram):
    """Label-propagation connected components."""

    name = "cc"
    monotonic = True
    all_active = False  # frontier shrinks after the first iteration
    needs_weights = False

    def initial_properties(self, ctx: ProgramContext) -> np.ndarray:
        return np.arange(ctx.num_vertices, dtype=np.float64)

    def initial_active(self, ctx: ProgramContext) -> np.ndarray:
        return np.arange(ctx.num_vertices, dtype=np.int64)

    @property
    def reduce_ufunc(self) -> np.ufunc:
        return np.minimum

    @property
    def reduce_identity(self) -> float:
        return np.inf

    def scatter_value(
        self,
        ctx: ProgramContext,
        edge_src: np.ndarray,
        edge_weight: np.ndarray,
        src_prop: np.ndarray,
    ) -> np.ndarray:
        return src_prop

    def apply_values(
        self,
        ctx: ProgramContext,
        props: np.ndarray,
        vtemp: np.ndarray,
    ) -> np.ndarray:
        return np.minimum(props, vtemp)
