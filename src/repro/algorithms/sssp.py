"""Single-source shortest paths (Bellman-Ford style) in the VCM.

Property = tentative distance.  Process emits ``dist(src) + weight``;
Reduce is ``min``.  Distances only decrease, so SSSP is monotonic and
safe for inter-phase pipelining (Section IV-D).  The paper runs SSSP on
graphs with random integer weights in [0, 255] (Section V-A).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ProgramContext, VertexProgram
from repro.errors import ConfigurationError

UNREACHED = np.inf


class SSSP(VertexProgram):
    """SSSP from a source vertex; vertex property is the distance."""

    name = "sssp"
    monotonic = True
    all_active = False
    needs_weights = True

    def __init__(self, source: int = 0) -> None:
        if source < 0:
            raise ConfigurationError("SSSP source must be non-negative")
        self.source = source

    def validate(self, ctx: ProgramContext) -> None:
        if self.source >= ctx.num_vertices:
            raise ConfigurationError(
                f"SSSP source {self.source} outside graph with "
                f"{ctx.num_vertices} vertices"
            )
        if ctx.graph.weights is not None and ctx.graph.weights.size:
            if int(ctx.graph.weights.min()) < 0:
                raise ConfigurationError("SSSP requires non-negative weights")

    def initial_properties(self, ctx: ProgramContext) -> np.ndarray:
        props = np.full(ctx.num_vertices, UNREACHED, dtype=np.float64)
        props[self.source] = 0.0
        return props

    def initial_active(self, ctx: ProgramContext) -> np.ndarray:
        return np.array([self.source], dtype=np.int64)

    @property
    def reduce_ufunc(self) -> np.ufunc:
        return np.minimum

    @property
    def reduce_identity(self) -> float:
        return np.inf

    def scatter_value(
        self,
        ctx: ProgramContext,
        edge_src: np.ndarray,
        edge_weight: np.ndarray,
        src_prop: np.ndarray,
    ) -> np.ndarray:
        return src_prop + edge_weight

    def apply_values(
        self,
        ctx: ProgramContext,
        props: np.ndarray,
        vtemp: np.ndarray,
    ) -> np.ndarray:
        return np.minimum(props, vtemp)
