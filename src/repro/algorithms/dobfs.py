"""Direction-optimizing BFS (Beamer et al. [4], cited in Section I).

Classic top-down BFS scatters every frontier edge; when the frontier is
a large fraction of the graph, most of those edges point at
already-visited vertices.  Direction-optimizing BFS switches to a
*bottom-up* (pull) phase: every unvisited vertex scans its in-edges and
adopts a depth as soon as it finds a visited parent, then switches back
when the frontier shrinks.  The heuristic follows Beamer's alpha/beta
rule.

This extension lives outside the push-only reference engine: it produces
both the gold depths and an explicit per-iteration workload trace (the
edges actually examined, with their processing direction) that feeds
:meth:`repro.core.ScalaGraph.run_trace`, since pull iterations process
the *transpose* graph's edges of the unvisited set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.algorithms.reference import gather_frontier_edges
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class DirectionStep:
    """One BFS iteration's examined edges and metadata.

    Attributes:
        mode: ``'push'`` (top-down) or ``'pull'`` (bottom-up).
        active_vertices: frontier (push) or unvisited set (pull).
        edge_src / edge_dst: edges examined, oriented as updates flow
            (pull edges are transposed so dst is the vertex written).
        num_updates: vertices discovered this iteration.
    """

    mode: str
    active_vertices: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray
    num_updates: int

    @property
    def num_edges(self) -> int:
        return int(self.edge_src.size)


@dataclass
class DirectionOptimizingResult:
    """Depths plus the direction-annotated workload trace."""

    depths: np.ndarray
    steps: List[DirectionStep] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.steps)

    @property
    def total_edges_examined(self) -> int:
        return sum(step.num_edges for step in self.steps)

    @property
    def pull_iterations(self) -> int:
        return sum(1 for step in self.steps if step.mode == "pull")


def run_direction_optimizing_bfs(
    graph: CSRGraph,
    root: int = 0,
    alpha: float = 15.0,
    beta: float = 18.0,
    transpose: Optional[CSRGraph] = None,
) -> DirectionOptimizingResult:
    """Run direction-optimizing BFS.

    Args:
        graph: the input graph (push direction).
        root: BFS root.
        alpha: switch push -> pull when the frontier's out-edges exceed
            ``remaining_unvisited_edges / alpha`` (Beamer's heuristic).
        beta: switch pull -> push when the frontier shrinks below
            ``num_vertices / beta``.
        transpose: pre-computed ``graph.reversed()`` (recomputed if None).

    Returns:
        Depths identical to plain BFS, plus the per-iteration trace of
        edges actually examined (pull phases examine far fewer).
    """
    if not 0 <= root < graph.num_vertices:
        raise ConfigurationError(f"root {root} out of range")
    if alpha <= 0 or beta <= 0:
        raise ConfigurationError("alpha/beta must be positive")
    rev = transpose if transpose is not None else graph.reversed()

    depths = np.full(graph.num_vertices, np.inf)
    depths[root] = 0.0
    frontier = np.array([root], dtype=np.int64)
    visited = np.zeros(graph.num_vertices, dtype=bool)
    visited[root] = True
    result = DirectionOptimizingResult(depths=depths)

    depth = 0
    mode = "push"
    unexplored_edges = int(graph.num_edges)
    prev_frontier_size = 0
    while frontier.size:
        frontier_edges = int(graph.out_degrees[frontier].sum())
        growing = frontier.size > prev_frontier_size
        if (
            mode == "push"
            and growing
            and frontier_edges > unexplored_edges / alpha
        ):
            mode = "pull"
        elif mode == "pull" and frontier.size < graph.num_vertices / beta:
            mode = "push"
        prev_frontier_size = int(frontier.size)

        if mode == "push":
            src, dst, _ = gather_frontier_edges(graph, frontier)
            discovered_mask = np.zeros(graph.num_vertices, dtype=bool)
            fresh = ~visited[dst]
            discovered_mask[dst[fresh]] = True
            discovered = np.flatnonzero(discovered_mask)
            step = DirectionStep(
                mode="push",
                active_vertices=frontier,
                edge_src=src,
                edge_dst=dst,
                num_updates=int(discovered.size),
            )
            unexplored_edges -= frontier_edges
        else:
            # Bottom-up: every unvisited vertex scans its in-edges until
            # it meets a visited parent (early exit).
            unvisited = np.flatnonzero(~visited)
            examined_src: List[int] = []
            examined_dst: List[int] = []
            discovered_list: List[int] = []
            for v in unvisited:
                parents = rev.neighbors(v)
                for u in parents:
                    examined_src.append(int(u))
                    examined_dst.append(int(v))
                    if visited[u]:
                        discovered_list.append(int(v))
                        break
            discovered = np.array(sorted(discovered_list), dtype=np.int64)
            step = DirectionStep(
                mode="pull",
                active_vertices=unvisited,
                edge_src=np.array(examined_src, dtype=np.int64),
                edge_dst=np.array(examined_dst, dtype=np.int64),
                num_updates=int(discovered.size),
            )

        depths[discovered] = depth + 1
        visited[discovered] = True
        result.steps.append(step)
        frontier = discovered
        depth += 1

    result.depths = depths
    return result


def as_workload(result: DirectionOptimizingResult):
    """Convert a DOBFS trace into :class:`WorkloadIteration` items for
    :meth:`repro.core.ScalaGraph.run_trace`."""
    from repro.core.accelerator import WorkloadIteration

    return [
        WorkloadIteration(
            active_vertices=step.active_vertices,
            edge_src=step.edge_src,
            edge_dst=step.edge_dst,
            num_updates=step.num_updates,
        )
        for step in result.steps
    ]
