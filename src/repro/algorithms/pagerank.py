"""PageRank in the vertex-centric model.

Process emits ``rank(src) / out_degree(src)``; Reduce is ``+``; Apply
computes ``(1 - d) / N + d * V_temp``.  Every vertex is active in every
iteration until ranks settle (Section V-B notes PageRank shows the highest
speedups because all edges are processed each iteration).  PageRank is
*not* monotonic, so the accelerator disables inter-phase pipelining for it
(Section IV-D, Limitation).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import ProgramContext, VertexProgram
from repro.errors import ConfigurationError


class PageRank(VertexProgram):
    """Power-iteration PageRank with damping and tolerance control.

    Args:
        damping: probability of following an edge (vs teleporting).
        tolerance: per-vertex convergence threshold.
        max_iters: iteration cap.
        personalization: optional teleport distribution (one weight per
            vertex, normalised internally) — personalised PageRank
            biases the ranking toward the given seed set.
    """

    name = "pagerank"
    monotonic = False
    all_active = True
    needs_weights = False

    def __init__(
        self,
        damping: float = 0.85,
        tolerance: float = 1e-7,
        max_iters: int = 20,
        personalization: "np.ndarray | None" = None,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise ConfigurationError("damping must be in (0, 1)")
        if tolerance < 0:
            raise ConfigurationError("tolerance must be >= 0")
        if max_iters <= 0:
            raise ConfigurationError("max_iters must be positive")
        self.damping = damping
        self.tolerance = tolerance
        self.max_iters = max_iters
        self.personalization = None
        if personalization is not None:
            p = np.asarray(personalization, dtype=np.float64)
            if p.ndim != 1 or p.size == 0:
                raise ConfigurationError(
                    "personalization must be a non-empty 1-D vector"
                )
            if np.any(p < 0) or p.sum() <= 0:
                raise ConfigurationError(
                    "personalization must be non-negative with positive mass"
                )
            self.personalization = p / p.sum()

    def validate(self, ctx: ProgramContext) -> None:
        if (
            self.personalization is not None
            and self.personalization.shape != (ctx.num_vertices,)
        ):
            raise ConfigurationError(
                "personalization must have one weight per vertex"
            )

    def _teleport(self, ctx: ProgramContext) -> np.ndarray:
        if self.personalization is not None:
            return self.personalization
        n = max(ctx.num_vertices, 1)
        return np.full(ctx.num_vertices, 1.0 / n, dtype=np.float64)

    def initial_properties(self, ctx: ProgramContext) -> np.ndarray:
        return self._teleport(ctx).copy()

    def initial_active(self, ctx: ProgramContext) -> np.ndarray:
        return np.arange(ctx.num_vertices, dtype=np.int64)

    @property
    def reduce_ufunc(self) -> np.ufunc:
        return np.add

    @property
    def reduce_identity(self) -> float:
        return 0.0

    def scatter_value(
        self,
        ctx: ProgramContext,
        edge_src: np.ndarray,
        edge_weight: np.ndarray,
        src_prop: np.ndarray,
    ) -> np.ndarray:
        degrees = ctx.out_degrees[edge_src]
        # Sources with edges always have degree >= 1; guard anyway so a
        # malformed trace cannot divide by zero.
        return src_prop / np.maximum(degrees, 1)

    def apply_values(
        self,
        ctx: ProgramContext,
        props: np.ndarray,
        vtemp: np.ndarray,
    ) -> np.ndarray:
        return (1.0 - self.damping) * self._teleport(ctx) + (
            self.damping * vtemp
        )

    def is_updated(self, old: np.ndarray, new: np.ndarray) -> np.ndarray:
        return np.abs(new - old) > self.tolerance

    def max_iterations(self, ctx: ProgramContext) -> int:
        return self.max_iters
