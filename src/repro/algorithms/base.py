"""The vertex-centric Process/Reduce/Apply interface (paper Figure 1).

A :class:`VertexProgram` supplies the three user-defined functions of the
paper's programming model, all vectorised over numpy arrays so that a whole
iteration's Scatter phase is one array expression:

* ``scatter_value`` — the *Process* function: per-edge value produced from
  the edge weight and the source vertex property.
* ``reduce_ufunc`` — the *Reduce* function as a numpy ufunc (``np.minimum``
  for BFS/SSSP/CC, ``np.add`` for PageRank), applied into ``V_temp``.
* ``apply_values`` — the *Apply* function combining old properties and
  ``V_temp`` into new properties; vertices whose property changed form the
  next active set.

Programs also declare two scheduling-relevant traits the accelerator
consults: ``monotonic`` (whether inter-phase pipelining is safe,
Section IV-D) and ``all_active`` (PageRank-style full-frontier execution).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class ProgramContext:
    """Per-run constants handed to every program callback.

    Attributes:
        graph: the input graph.
        out_degrees: cached ``graph.out_degrees`` (PageRank's Process
            divides the source rank by its out-degree).
    """

    graph: CSRGraph
    out_degrees: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "out_degrees", self.graph.out_degrees)

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices


class VertexProgram(abc.ABC):
    """A graph algorithm in the vertex-centric model of Figure 1."""

    #: Human-readable algorithm name.
    name: str = "program"
    #: True when property updates are monotonic, making the inter-phase
    #: pipelining of Section IV-D safe (BFS, SSSP, CC yes; PageRank no).
    monotonic: bool = False
    #: True when every vertex is active in every iteration (PageRank).
    all_active: bool = False
    #: True when the program reads edge weights (SSSP).
    needs_weights: bool = False

    # ------------------------------------------------------------------
    # State initialisation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def initial_properties(self, ctx: ProgramContext) -> np.ndarray:
        """The initial ``V_prop`` array (float64[num_vertices])."""

    @abc.abstractmethod
    def initial_active(self, ctx: ProgramContext) -> np.ndarray:
        """Vertex IDs active in the first iteration."""

    # ------------------------------------------------------------------
    # The three user-defined functions
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def reduce_ufunc(self) -> np.ufunc:
        """The Reduce operator as a numpy ufunc (must be commutative and
        associative; the accelerator's aggregation pipeline relies on
        this to pre-reduce in-flight updates, Section IV-B)."""

    @property
    @abc.abstractmethod
    def reduce_identity(self) -> float:
        """Identity element of :attr:`reduce_ufunc` used to reset V_temp."""

    @abc.abstractmethod
    def scatter_value(
        self,
        ctx: ProgramContext,
        edge_src: np.ndarray,
        edge_weight: np.ndarray,
        src_prop: np.ndarray,
    ) -> np.ndarray:
        """The Process function, vectorised over one iteration's edges."""

    @abc.abstractmethod
    def apply_values(
        self,
        ctx: ProgramContext,
        props: np.ndarray,
        vtemp: np.ndarray,
    ) -> np.ndarray:
        """The Apply function: new property array for all vertices."""

    # ------------------------------------------------------------------
    # Convergence hooks
    # ------------------------------------------------------------------
    def is_updated(self, old: np.ndarray, new: np.ndarray) -> np.ndarray:
        """Boolean mask of vertices whose property counts as changed.

        Figure 1 activates a vertex when ``ApplyRes != V_prop[v]``; floating
        point programs (PageRank) override this with a tolerance.
        """
        return new != old

    def max_iterations(self, ctx: ProgramContext) -> int:
        """Safety bound on iteration count (default: |V| + 1)."""
        return ctx.num_vertices + 1

    def validate(self, ctx: ProgramContext) -> None:
        """Raise if the program cannot run on this graph."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
