"""Row-oriented mapping (ROM) — the paper's contribution (Section IV-A).

An edge workload is placed at the PE whose *row* matches the source
vertex's home row and whose *column* matches the destination vertex's
home column (Figure 10d).  The dispatcher broadcasts the source property
along the row, the GU executes Process, and the resulting update routes
*only along its column* to the destination's home row.  Same-row remote
accesses become local, halving SOM's Scatter traffic; Apply stays local
as in SOM, and a single global CSR suffices (minimal off-chip traffic and
no replicas — the best of both prior mappings, Table II).
"""

from __future__ import annotations

import numpy as np

from repro.mapping.base import Mapping, MappingTraffic
from repro.noc.traffic import column_link_loads


class RowOrientedMapping(Mapping):
    """Edges execute at (row of source home, column of destination home)."""

    name = "rom"

    def execution_pe(
        self, edge_src: np.ndarray, edge_dst: np.ndarray
    ) -> np.ndarray:
        src_row = self.topology.rows_of(self.home(edge_src))
        dst_col = self.topology.cols_of(self.home(edge_dst))
        return src_row * self.topology.cols + dst_col

    def scatter_traffic(
        self, edge_src: np.ndarray, edge_dst: np.ndarray
    ) -> MappingTraffic:
        src_home = self.home(edge_src)
        dst_home = self.home(edge_dst)
        src_row = self.topology.rows_of(src_home)
        dst_row = self.topology.rows_of(dst_home)
        dst_col = self.topology.cols_of(dst_home)
        remote = src_row != dst_row  # same-row accesses became local
        report = column_link_loads(
            rows=self.topology.rows,
            column=dst_col[remote],
            src_row=src_row[remote],
            dst_row=dst_row[remote],
            num_cols=self.topology.cols,
        )
        return MappingTraffic(
            num_messages=int(np.count_nonzero(remote)),
            total_hops=report.total_flit_hops,
            link_report=report,
        )

    def apply_traffic(self, updated_vertices: np.ndarray) -> MappingTraffic:
        # As in SOM: applies are local to the home PE.
        return MappingTraffic(num_messages=0, total_hops=0)

    def average_route_distance(self) -> float:
        """ROM routes only along columns (Section V-C: 5.9-cycle average
        packet latency vs SOM's 15.6 on the 16-row matrix)."""
        return self.topology.average_column_distance()
