"""Destination-oriented mapping (DOM) — the HMC-accelerator approach.

Edges are partitioned by destination vertex, and every PE keeps a replica
of all source vertex properties it may read (Figure 10c).  Scatter then
runs entirely locally, but every newly-activated vertex must refresh its
replica in all K PEs during Apply — O(N * K) traffic and O(N * K) extra
storage, plus per-partition CSR structures off-chip (O(N * K + M)).
"""

from __future__ import annotations

import numpy as np

from repro.mapping.base import Mapping, MappingTraffic


class DestinationOrientedMapping(Mapping):
    """Edges execute at the destination vertex's home PE; sources are
    read from local replicas."""

    name = "dom"

    def execution_pe(
        self, edge_src: np.ndarray, edge_dst: np.ndarray
    ) -> np.ndarray:
        return self.home(edge_dst)

    def scatter_traffic(
        self, edge_src: np.ndarray, edge_dst: np.ndarray
    ) -> MappingTraffic:
        # Source replicas and the destination property are both local.
        return MappingTraffic(num_messages=0, total_hops=0)

    def apply_traffic(self, updated_vertices: np.ndarray) -> MappingTraffic:
        """Replica refresh: each updated vertex reaches all other PEs.

        The update is flooded along a mesh spanning tree, so K - 1 link
        traversals deliver the K - 1 remote replicas of one vertex.
        """
        count = int(np.asarray(updated_vertices).size)
        k = self.num_pes
        return MappingTraffic(
            num_messages=count * max(k - 1, 0),
            total_hops=count * max(k - 1, 0),
        )

    def offchip_bytes(
        self,
        num_active_vertices: int,
        num_active_edges: int,
        vertex_bytes: int = 8,
        edge_bytes: int = 4,
    ) -> int:
        """O(N * K + M): every partition maintains a private CSR whose
        vertex-side structures are re-streamed per iteration."""
        return (
            num_active_vertices * self.num_pes * vertex_bytes
            + num_active_edges * edge_bytes
        )

    def average_route_distance(self) -> float:
        """Scatter accesses are all local under DOM."""
        return 0.0

    def replica_storage_vertices(self, num_vertices: int) -> int:
        """One replica of every source vertex in every PE.

        Section V-C notes this 'significantly exceeds the BRAM capacity of
        the FPGA used' — the accelerator model raises
        :class:`~repro.errors.CapacityError` when it does.
        """
        return num_vertices * self.num_pes
