"""Workload-to-PE mappings (Section IV-A, Figure 10, Table II).

Three mechanisms map graph workloads onto the PE matrix:

* **Source-oriented** (`SOM`, prior accelerators): all edges of a source
  vertex go to the PE owning it; updates route both dimensions of the
  mesh — O(M * sqrt(K)) Scatter traffic.
* **Destination-oriented** (`DOM`, HMC-based accelerators): edges live
  with their destination; zero Scatter traffic but O(N * K) Apply-phase
  replica maintenance and O(N * K) extra storage.
* **Row-oriented** (`ROM`, the paper's contribution): an edge is placed
  in the row of its source's home PE and the column of its destination's
  home PE, so updates route only along columns — half of SOM's traffic
  with none of DOM's replicas.
"""

from repro.mapping.base import Mapping, MappingTraffic, vertex_home
from repro.mapping.destination_oriented import DestinationOrientedMapping
from repro.mapping.row_oriented import RowOrientedMapping
from repro.mapping.row_oriented_torus import RowOrientedTorusMapping
from repro.mapping.source_oriented import SourceOrientedMapping

MAPPINGS = {
    "som": SourceOrientedMapping,
    "dom": DestinationOrientedMapping,
    "rom": RowOrientedMapping,
    "rom-torus": RowOrientedTorusMapping,
}


def make_mapping(name: str, topology) -> Mapping:
    """Instantiate a mapping by its paper abbreviation (som/dom/rom)."""
    key = name.lower()
    if key not in MAPPINGS:
        raise KeyError(f"unknown mapping {name!r}; known: {sorted(MAPPINGS)}")
    return MAPPINGS[key](topology)


__all__ = [
    "Mapping",
    "MappingTraffic",
    "vertex_home",
    "SourceOrientedMapping",
    "DestinationOrientedMapping",
    "RowOrientedMapping",
    "RowOrientedTorusMapping",
    "MAPPINGS",
    "make_mapping",
]
