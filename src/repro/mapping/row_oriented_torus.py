"""Row-oriented mapping on a 2D torus (future-work NoC exploration).

Identical workload placement to :class:`RowOrientedMapping`, but updates
route the *shorter way around* vertical rings, roughly halving column
hop distances.  Used by the NoC-choice ablation bench; Section III-A
leaves "determining the most appropriate NoC" as future work.
"""

from __future__ import annotations

import numpy as np

from repro.mapping.base import MappingTraffic
from repro.mapping.row_oriented import RowOrientedMapping
from repro.noc.torus import TorusTopology, ring_direction, torus_column_link_loads


class RowOrientedTorusMapping(RowOrientedMapping):
    """ROM placement with shortest-ring column routing."""

    name = "rom-torus"

    def scatter_traffic(
        self, edge_src: np.ndarray, edge_dst: np.ndarray
    ) -> MappingTraffic:
        src_home = self.home(edge_src)
        dst_home = self.home(edge_dst)
        src_row = self.topology.rows_of(src_home)
        dst_row = self.topology.rows_of(dst_home)
        dst_col = self.topology.cols_of(dst_home)
        remote = src_row != dst_row
        report = torus_column_link_loads(
            rows=self.topology.rows,
            column=dst_col[remote],
            src_row=src_row[remote],
            dst_row=dst_row[remote],
            num_cols=self.topology.cols,
        )
        return MappingTraffic(
            num_messages=int(np.count_nonzero(remote)),
            total_hops=report.total_flit_hops,
            link_report=report,
        )

    def average_route_distance(self) -> float:
        return self.as_torus().average_column_distance()

    def as_torus(self) -> TorusTopology:
        """The torus view of this mapping's PE matrix."""
        return TorusTopology(self.topology.rows, self.topology.cols)

    def column_directions(
        self, src_row: np.ndarray, dst_row: np.ndarray
    ) -> np.ndarray:
        """Shortest-ring direction of each update (+1 south / -1 north)."""
        return ring_direction(src_row, dst_row, self.topology.rows)
