"""Mapping interface and shared traffic accounting."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.noc.topology import MeshTopology
from repro.noc.traffic import LinkLoadReport


def vertex_home(vertex_ids: np.ndarray, num_pes: int) -> np.ndarray:
    """Home PE of each vertex property: the simple vertex-ID hash of
    Section III-A ('evenly partitioned to all SPDs')."""
    return np.asarray(vertex_ids, dtype=np.int64) % num_pes


@dataclass(frozen=True)
class MappingTraffic:
    """On-chip traffic produced by one phase under one mapping.

    Attributes:
        num_messages: vertex updates injected into the NoC.
        total_hops: link traversals — the paper's 'amount of on-chip
            communications'.
        link_report: per-link loads when the traffic uses the mesh
            (None for crossbar/local traffic).
    """

    num_messages: int
    total_hops: int
    link_report: Optional[LinkLoadReport] = None

    @property
    def average_hops(self) -> float:
        return self.total_hops / self.num_messages if self.num_messages else 0.0

    @property
    def max_link_load(self) -> int:
        return self.link_report.max_link_load if self.link_report else 0


class Mapping(abc.ABC):
    """Places vertex properties and edge workloads on the PE matrix and
    accounts the resulting NoC traffic."""

    #: Paper abbreviation (som / dom / rom).
    name: str = "mapping"

    def __init__(self, topology: MeshTopology) -> None:
        self.topology = topology

    @property
    def num_pes(self) -> int:
        return self.topology.num_nodes

    def home(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Node ID owning each vertex's property."""
        return vertex_home(vertex_ids, self.num_pes)

    # ------------------------------------------------------------------
    # Phase traffic
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def scatter_traffic(
        self, edge_src: np.ndarray, edge_dst: np.ndarray
    ) -> MappingTraffic:
        """NoC traffic of routing one Scatter phase's updates."""

    @abc.abstractmethod
    def apply_traffic(self, updated_vertices: np.ndarray) -> MappingTraffic:
        """NoC traffic of the Apply phase for the updated vertex set."""

    # ------------------------------------------------------------------
    # Off-chip and storage accounting (Table II)
    # ------------------------------------------------------------------
    def offchip_bytes(
        self,
        num_active_vertices: int,
        num_active_edges: int,
        vertex_bytes: int = 8,
        edge_bytes: int = 4,
    ) -> int:
        """Off-chip traffic per iteration: O(N + M) for SOM/ROM."""
        return num_active_vertices * vertex_bytes + num_active_edges * edge_bytes

    def replica_storage_vertices(self, num_vertices: int) -> int:
        """Extra on-chip vertex replicas required (0 except for DOM)."""
        return 0

    def average_route_distance(self) -> float:
        """Expected hop count of one remote update under this mapping —
        the pipeline-fill latency the timing model charges per phase.
        SOM routes both dimensions; overridden by subclasses."""
        return self.topology.average_distance()

    # ------------------------------------------------------------------
    # Where work executes (consumed by the load-balance model)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def execution_pe(
        self, edge_src: np.ndarray, edge_dst: np.ndarray
    ) -> np.ndarray:
        """Node ID whose GU executes the Process function of each edge."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.topology!r})"
