"""Source-oriented mapping (SOM) — the prior-accelerator default.

All workloads of a source vertex execute at the PE owning its property
(Figure 10b).  Destination vertices are generally remote, so every edge's
update is routed across both mesh dimensions: O(M * sqrt(K)) Scatter
traffic.  Apply is free of NoC traffic because every property is local.
"""

from __future__ import annotations

import numpy as np

from repro.mapping.base import Mapping, MappingTraffic
from repro.noc.traffic import mesh_link_loads


class SourceOrientedMapping(Mapping):
    """Edges execute at the source vertex's home PE."""

    name = "som"

    def execution_pe(
        self, edge_src: np.ndarray, edge_dst: np.ndarray
    ) -> np.ndarray:
        return self.home(edge_src)

    def scatter_traffic(
        self, edge_src: np.ndarray, edge_dst: np.ndarray
    ) -> MappingTraffic:
        src_node = self.home(edge_src)
        dst_node = self.home(edge_dst)
        remote = src_node != dst_node
        report = mesh_link_loads(
            self.topology, src_node[remote], dst_node[remote]
        )
        return MappingTraffic(
            num_messages=int(np.count_nonzero(remote)),
            total_hops=report.total_flit_hops,
            link_report=report,
        )

    def apply_traffic(self, updated_vertices: np.ndarray) -> MappingTraffic:
        # Properties are applied in place at their home PE; the new active
        # list is written back off-chip (O(N)), with no NoC routing.
        return MappingTraffic(num_messages=0, total_hops=0)
