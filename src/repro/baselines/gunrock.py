"""Gunrock-on-V100 baseline (Wang et al., PPoPP 2016).

The paper runs Gunrock on an NVIDIA V100 (32 GB HBM2, 900 GB/s).  Its
deficits relative to ScalaGraph come from two mechanisms the paper
quantifies (Section V-B):

* **off-chip amplification** — random vertex accesses fetch 32-byte
  sectors to use 4-8 bytes; ScalaGraph 'reduces 52.2% memory accesses on
  average';
* **atomic stalls** — concurrent same-vertex updates 'often take more
  than 15% execution time of GPU-based graph systems'.

The model charges per-iteration bytes (frontier + CSR + amplified random
vertex traffic) against the achievable bandwidth, inflates by the atomic
stall factor, and adds a per-iteration kernel-launch overhead (which is
what erodes Gunrock's BFS performance on high-diameter frontiers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.algorithms.base import VertexProgram
from repro.algorithms.reference import (
    ReferenceResult,
    gather_frontier_edges,
    run_reference,
)
from repro.core.stats import IterationStats, SimulationReport
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.memory.request import cachelines_touched
from repro.models.energy import gpu_power_watts

GB = 1_000_000_000


@dataclass(frozen=True)
class GunrockConfig:
    """V100 execution parameters.

    Attributes:
        peak_bandwidth_gbs: HBM2 peak (V100: 900).
        bandwidth_efficiency: achieved fraction under irregular access.
        sector_bytes: memory transaction granularity (32-byte sectors).
        l2_hit_rate: fraction of random vertex reads served on-chip.
        atomic_stall_factor: execution-time inflation from atomics.
        kernel_launch_us: per-iteration launch + frontier compaction.
        sm_throughput_gteps: compute roofline in traversed edges/s.
        clock_mhz: boost clock, used only to express time in cycles.
    """

    peak_bandwidth_gbs: float = 900.0
    bandwidth_efficiency: float = 0.70
    sector_bytes: int = 32
    l2_hit_rate: float = 0.50
    atomic_stall_factor: float = 1.15
    kernel_launch_us: float = 1.0
    sm_throughput_gteps: float = 150.0
    clock_mhz: float = 1380.0

    def __post_init__(self) -> None:
        if not 0 < self.bandwidth_efficiency <= 1:
            raise ConfigurationError("bandwidth_efficiency must be in (0, 1]")
        if not 0 <= self.l2_hit_rate <= 1:
            raise ConfigurationError("l2_hit_rate must be in [0, 1]")
        if self.atomic_stall_factor < 1:
            raise ConfigurationError("atomic_stall_factor must be >= 1")

    @property
    def achieved_bandwidth_bytes_per_s(self) -> float:
        return self.peak_bandwidth_gbs * GB * self.bandwidth_efficiency


class Gunrock:
    """Analytic Gunrock/V100 model producing the same report type."""

    name = "Gunrock"

    def __init__(self, config: Optional[GunrockConfig] = None) -> None:
        self.config = config or GunrockConfig()

    def run(
        self,
        program: VertexProgram,
        graph: CSRGraph,
        max_iterations: Optional[int] = None,
        reference: Optional[ReferenceResult] = None,
    ) -> SimulationReport:
        cfg = self.config
        ref = reference or run_reference(program, graph, max_iterations)

        iteration_stats: list[IterationStats] = []
        total_seconds = 0.0
        for trace in ref.iterations:
            src, dst, _ = gather_frontier_edges(graph, trace.active_vertices)
            seconds, traffic = self._iteration_seconds(
                graph, trace.active_vertices, src, dst, trace.num_updates
            )
            total_seconds += seconds
            iteration_stats.append(
                IterationStats(
                    index=trace.index,
                    num_active=int(trace.active_vertices.size),
                    num_edges=trace.num_edges,
                    scatter_cycles=seconds * cfg.clock_mhz * 1e6,
                    apply_cycles=0.0,
                    offchip_bytes=traffic,
                )
            )

        total_cycles = total_seconds * cfg.clock_mhz * 1e6
        return SimulationReport(
            accelerator="Gunrock-V100",
            algorithm=program.name,
            graph_name=graph.name,
            num_pes=80 * 64,  # V100: 80 SMs x 64 FP32 lanes
            frequency_mhz=cfg.clock_mhz,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            total_edges_traversed=ref.total_edges_traversed,
            total_cycles=total_cycles,
            iterations=iteration_stats,
            properties=ref.properties,
            power_watts=gpu_power_watts(),
        )

    # ------------------------------------------------------------------
    # Per-iteration time
    # ------------------------------------------------------------------
    def _iteration_seconds(
        self,
        graph: CSRGraph,
        active: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        num_updates: int,
    ) -> tuple[float, float]:
        cfg = self.config
        num_edges = int(src.size)

        # Streaming traffic: frontier (8 B/vertex) + CSR edges (8 B/edge:
        # column index + offsets/weights).
        streamed = active.size * 8.0 + num_edges * 8.0
        # Random destination-vertex traffic: one sector per miss; distinct
        # lines give a cheap lower bound on reuse, the hit rate models L2.
        if num_edges:
            lines = cachelines_touched(dst * 4, cfg.sector_bytes)
            misses = lines + (num_edges - lines) * (1.0 - cfg.l2_hit_rate)
            random_bytes = misses * cfg.sector_bytes
        else:
            random_bytes = 0.0
        writeback = num_updates * 8.0
        total_bytes = streamed + random_bytes + writeback

        memory_s = total_bytes / cfg.achieved_bandwidth_bytes_per_s
        compute_s = num_edges / (cfg.sm_throughput_gteps * 1e9)
        body_s = max(memory_s, compute_s) * cfg.atomic_stall_factor
        return body_s + cfg.kernel_launch_us * 1e-6, total_bytes
