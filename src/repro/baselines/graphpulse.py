"""GraphPulse baseline (Rahman et al., MICRO 2020).

GraphPulse is the event-driven accelerator the paper cites for its
on-chip event queue and its multi-stage crossbar (Sections I, VI;
Figure 8 covers that interconnect's frequency wall).  The functional
behaviour comes from :class:`repro.engines.EventDrivenEngine`; the
timing model charges one queue-op/compute slot per processed event, an
on-demand (random) adjacency fetch per propagating vertex, and the
multi-stage crossbar's clock.

Event-driven execution often does *less total work* than the
bulk-synchronous model (no redundant re-scatters of unchanged vertices),
which is GraphPulse's advantage; its ceiling is the centralised queue
and the crossbar-family interconnect, which is ScalaGraph's opening.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.algorithms.base import VertexProgram
from repro.core.stats import IterationStats, SimulationReport
from repro.engines.event_driven import EventDrivenEngine
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.memory.hbm import HBMConfig, HBMModel
from repro.models.frequency import Interconnect, max_frequency_mhz


@dataclass(frozen=True)
class GraphPulseConfig:
    """GraphPulse model parameters.

    Attributes:
        num_pes: event processors (the MICRO'20 design uses 256 behind
            a multi-stage crossbar — its route-failure limit).
        frequency_mhz: clock; None derives it from the multi-stage
            crossbar synthesis model.
        events_per_pe_cycle: sustained event throughput per processor.
        queue_ops_per_cycle: coalescing-queue bandwidth (insert+merge).
        coalesce: enable queue coalescing (GraphPulse's core feature).
        hbm: off-chip memory.
        edge_bytes: bytes per edge record.
    """

    num_pes: int = 256
    frequency_mhz: Optional[float] = None
    events_per_pe_cycle: float = 1.0
    queue_ops_per_cycle: float = 64.0
    coalesce: bool = True
    hbm: HBMConfig = field(default_factory=HBMConfig)
    edge_bytes: int = 4

    def __post_init__(self) -> None:
        if self.num_pes <= 0:
            raise ConfigurationError("num_pes must be positive")
        if self.events_per_pe_cycle <= 0 or self.queue_ops_per_cycle <= 0:
            raise ConfigurationError("throughput parameters must be positive")

    @property
    def clock_mhz(self) -> float:
        if self.frequency_mhz is not None:
            return self.frequency_mhz
        return max_frequency_mhz(
            Interconnect.MULTISTAGE_CROSSBAR, self.num_pes
        )


class GraphPulse:
    """Event-driven accelerator model producing the common report type."""

    name = "GraphPulse"

    def __init__(self, config: Optional[GraphPulseConfig] = None) -> None:
        self.config = config or GraphPulseConfig()
        self._engine = EventDrivenEngine(coalesce=self.config.coalesce)
        self._hbm = HBMModel(self.config.hbm, self.config.clock_mhz * 1e6)

    def run(
        self,
        program: VertexProgram,
        graph: CSRGraph,
        max_iterations: Optional[int] = None,
        reference=None,
    ) -> SimulationReport:
        del max_iterations, reference  # asynchronous: no iterations
        cfg = self.config
        result = self._engine.run(program, graph)
        stats = result.stats

        # Compute bound: every processed event occupies a PE slot.
        compute = stats.events_processed / (
            cfg.num_pes * cfg.events_per_pe_cycle
        )
        # Queue bound: every generated event is one queue operation.
        queue = stats.events_generated / cfg.queue_ops_per_cycle
        # Memory: events that propagate stream their vertex's adjacency
        # on demand — sequential within a vertex, random across vertices
        # (one line of overhead per propagating vertex).
        edge_bytes = stats.events_generated * cfg.edge_bytes
        line_overheads = stats.events_processed * 8  # addr + offsets
        memory = self._hbm.stream_cycles(edge_bytes + line_overheads)

        total_cycles = max(compute, queue, memory)
        iteration = IterationStats(
            index=0,
            num_active=graph.num_vertices,
            num_edges=stats.events_generated,
            scatter_cycles=total_cycles,
            apply_cycles=0.0,
            coalesced_updates=stats.events_coalesced,
            offchip_bytes=float(edge_bytes + line_overheads),
            scatter_bottleneck=(
                "compute"
                if compute >= max(queue, memory)
                else ("noc" if queue >= memory else "memory")
            ),
        )

        from repro.models.energy import accelerator_power_watts

        power = accelerator_power_watts(
            cfg.num_pes, Interconnect.MULTISTAGE_CROSSBAR, cfg.clock_mhz
        ).total_watts

        return SimulationReport(
            accelerator=f"GraphPulse-{cfg.num_pes}",
            algorithm=program.name,
            graph_name=graph.name,
            num_pes=cfg.num_pes,
            frequency_mhz=cfg.clock_mhz,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            total_edges_traversed=stats.events_generated,
            total_cycles=total_cycles,
            iterations=[iteration],
            properties=result.properties,
            power_watts=power,
            extra={
                "events_processed": float(stats.events_processed),
                "events_coalesced": float(stats.events_coalesced),
                "peak_queue_size": float(stats.peak_queue_size),
            },
        )
