"""Shared model for centralised-crossbar graph accelerators.

Prior accelerators (Figure 3) connect every PE to every on-chip memory
partition through a VOQ crossbar: routing takes one cycle, conflicting
updates to the same partition serialise at the output port (softened by
vectorised/accumulator designs), and the O(N^2) hardware caps the clock
(:mod:`repro.models.frequency`).  Designs wider than one crossbar's
route-failure limit instantiate several crossbar tiles joined by a small
tile-level mesh — the GraphDynS-512 construction of Section V-A — and
pay for the inter-tile traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.algorithms.base import VertexProgram
from repro.algorithms.reference import (
    ReferenceResult,
    gather_frontier_edges,
    run_reference,
)
from repro.core.stats import IterationStats, PhaseCycles, SimulationReport
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.graph.partition import slice_intervals
from repro.memory.hbm import HBMConfig, HBMModel
from repro.memory.spd import ScratchpadConfig
from repro.models.frequency import Interconnect, max_frequency_mhz

#: Average tile-to-tile hops of crossing traffic on the 2x2 tile mesh
#: (8 of 12 ordered tile pairs are adjacent, 4 are diagonal).
_INTER_TILE_AVG_HOPS = 4.0 / 3.0
#: Directed links of a 2x2 mesh.
_INTER_TILE_LINKS = 8


@dataclass(frozen=True)
class CrossbarAcceleratorConfig:
    """Configuration of a crossbar-based baseline.

    Attributes:
        name: display name ('GraphDynS', 'AccuGraph').
        num_pes: total PEs.
        num_tiles: crossbar tiles; >1 adds the tile-level mesh.
        frequency_mhz: explicit clock; None derives it from the crossbar
            synthesis model at the per-tile radix.
        with_crossbar: False models the Figure 4 'crossbar removed
            without ensuring accuracy' variant — full 300 MHz clock and
            no conflict serialisation.
        vector_width: same-partition updates absorbed per cycle
            (GraphDynS's vectorised vertex access / AccuGraph's parallel
            accumulator).
        dispatch_efficiency: dispatcher slot utilisation.
        inter_tile_link_updates_per_cycle: width of each tile-to-tile
            channel in updates per cycle.
        phase_overhead_cycles: fixed per-phase overhead (the crossbar's
            single-cycle routing keeps this small).
        hbm / spd: memory parameters (4 MB BRAM in the Figure 4 study,
            Section II-B).
        edge_bytes / vertex_bytes: record sizes.
    """

    name: str = "CrossbarAccel"
    num_pes: int = 128
    num_tiles: int = 1
    frequency_mhz: Optional[float] = None
    with_crossbar: bool = True
    vector_width: int = 8
    dispatch_efficiency: float = 0.95
    inter_tile_link_updates_per_cycle: float = 32.0
    phase_overhead_cycles: float = 12.0
    hbm: HBMConfig = field(default_factory=HBMConfig)
    spd: ScratchpadConfig = field(default_factory=ScratchpadConfig)
    edge_bytes: int = 4
    vertex_bytes: int = 8

    def __post_init__(self) -> None:
        if self.num_pes <= 0 or self.num_tiles <= 0:
            raise ConfigurationError("num_pes/num_tiles must be positive")
        if self.num_pes % self.num_tiles:
            raise ConfigurationError("num_pes must divide into tiles")
        if self.vector_width <= 0:
            raise ConfigurationError("vector_width must be positive")

    @property
    def pes_per_tile(self) -> int:
        return self.num_pes // self.num_tiles

    @property
    def clock_mhz(self) -> float:
        if self.frequency_mhz is not None:
            return self.frequency_mhz
        if not self.with_crossbar:
            # Figure 4: the crossbar-free variants hold ~300 MHz.
            return 300.0
        # The clock is set by the largest crossbar instance (the tile).
        return max_frequency_mhz(Interconnect.CROSSBAR, self.pes_per_tile)

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6


class CrossbarAccelerator:
    """Cycle-approximate model of a crossbar-based accelerator."""

    def __init__(self, config: CrossbarAcceleratorConfig) -> None:
        self.config = config
        self._hbm = HBMModel(config.hbm, config.clock_hz)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        program: VertexProgram,
        graph: CSRGraph,
        max_iterations: Optional[int] = None,
        reference: Optional[ReferenceResult] = None,
    ) -> SimulationReport:
        cfg = self.config
        ref = reference or run_reference(program, graph, max_iterations)
        partitions = slice_intervals(graph, cfg.spd.capacity_vertices)

        iteration_stats: list[IterationStats] = []
        total_cycles = 0.0
        compute_cycle_total = 0.0
        for trace in ref.iterations:
            active = trace.active_vertices
            src, dst, _ = gather_frontier_edges(graph, active)
            scatter = apply = offchip = 0.0
            bottleneck = "compute"
            for part in partitions:
                if len(partitions) == 1:
                    src_p, dst_p = src, dst
                else:
                    mask = part.mask(dst)
                    src_p, dst_p = src[mask], dst[mask]
                phase = self._scatter_phase(active, src_p, dst_p)
                scatter += phase.total
                compute_cycle_total += phase.compute
                bottleneck = phase.bottleneck
                apply_cycles, apply_bytes = self._apply_phase(
                    dst_p, trace.num_updates
                )
                apply += apply_cycles
                offchip += (
                    src_p.size * cfg.edge_bytes
                    + active.size * cfg.vertex_bytes
                    + apply_bytes
                )
            total_cycles += scatter + apply
            iteration_stats.append(
                IterationStats(
                    index=trace.index,
                    num_active=int(active.size),
                    num_edges=trace.num_edges,
                    scatter_cycles=scatter,
                    apply_cycles=apply,
                    offchip_bytes=offchip,
                    scatter_bottleneck=bottleneck,
                )
            )

        from repro.models.energy import accelerator_power_watts

        power = accelerator_power_watts(
            cfg.num_pes,
            Interconnect.CROSSBAR if cfg.with_crossbar else Interconnect.MESH,
            cfg.clock_mhz,
        ).total_watts

        return SimulationReport(
            accelerator=f"{cfg.name}-{cfg.num_pes}",
            algorithm=program.name,
            graph_name=graph.name,
            num_pes=cfg.num_pes,
            frequency_mhz=cfg.clock_mhz,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            total_edges_traversed=ref.total_edges_traversed,
            total_cycles=total_cycles,
            iterations=iteration_stats,
            properties=ref.properties,
            num_partitions=len(partitions),
            power_watts=power,
            extra={"scatter_compute_cycles": compute_cycle_total},
        )

    # ------------------------------------------------------------------
    # Phase models
    # ------------------------------------------------------------------
    def _scatter_phase(
        self, active: np.ndarray, src: np.ndarray, dst: np.ndarray
    ) -> PhaseCycles:
        cfg = self.config
        if src.size == 0:
            return PhaseCycles(0, 0, 0, 0, cfg.phase_overhead_cycles)

        # Dynamic edge scheduling spreads edges over all PEs.
        compute = src.size / cfg.num_pes / cfg.dispatch_efficiency

        # Same-partition updates serialise at the crossbar output; the
        # vectorised access path absorbs `vector_width` per cycle.
        conflict = 0.0
        if cfg.with_crossbar:
            mp_loads = np.bincount(dst % cfg.num_pes, minlength=cfg.num_pes)
            conflict = float(mp_loads.max()) / cfg.vector_width

        inter_tile = self._inter_tile_cycles(src, dst)
        memory = self._hbm.stream_cycles(
            src.size * cfg.edge_bytes + active.size * cfg.vertex_bytes
        )
        return PhaseCycles(
            compute=compute,
            noc=inter_tile,
            spd=conflict,
            memory=memory,
            overhead=cfg.phase_overhead_cycles,
        )

    def _apply_phase(
        self, dst: np.ndarray, num_updates: int
    ) -> tuple[float, float]:
        cfg = self.config
        touched = np.unique(dst) if dst.size else dst
        loads = (
            np.bincount(touched % cfg.num_pes, minlength=cfg.num_pes)
            if touched.size
            else np.zeros(1)
        )
        writeback = num_updates * cfg.vertex_bytes
        cycles = max(
            float(loads.max()), self._hbm.stream_cycles(writeback)
        ) + cfg.phase_overhead_cycles
        return cycles, float(writeback)

    def _inter_tile_cycles(self, src: np.ndarray, dst: np.ndarray) -> float:
        """Tile-level mesh service for multi-tile designs (GraphDynS-512).

        Source-oriented execution places each edge at its source's home
        tile; updates whose destination lives in another tile cross the
        2x2 mesh, whose per-link width bounds throughput.
        """
        cfg = self.config
        if cfg.num_tiles <= 1:
            return 0.0
        src_tile = (src % cfg.num_pes) // cfg.pes_per_tile
        dst_tile = (dst % cfg.num_pes) // cfg.pes_per_tile
        crossing = int(np.count_nonzero(src_tile != dst_tile))
        link_cycles = crossing * _INTER_TILE_AVG_HOPS / (
            _INTER_TILE_LINKS * cfg.inter_tile_link_updates_per_cycle
        )
        return link_cycles
