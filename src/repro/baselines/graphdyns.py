"""GraphDynS baseline (Yan et al., MICRO 2019) as prototyped in the paper.

GraphDynS extracts data dependencies dynamically and couples a
load-balanced edge scheduler, a precise edge prefetcher, and vectorised
on-chip vertex access behind a centralised crossbar.  The paper
prototypes it on the U280 (Section V-A): the best configuration is 128
PEs behind a 128-radix crossbar at its highest achievable 100 MHz
(**GraphDynS-128**); the apples-to-apples 512-PE extension is four
mesh-connected 128-PE crossbar tiles (**GraphDynS-512**).
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import CrossbarAccelerator, CrossbarAcceleratorConfig


def _graphdyns_config(
    num_pes: int,
    num_tiles: int,
    frequency_mhz: Optional[float],
) -> CrossbarAcceleratorConfig:
    return CrossbarAcceleratorConfig(
        name="GraphDynS",
        num_pes=num_pes,
        num_tiles=num_tiles,
        frequency_mhz=frequency_mhz,
        vector_width=8,
        dispatch_efficiency=0.95,
    )


class GraphDynS(CrossbarAccelerator):
    """GraphDynS with the paper's prototype parameters.

    The default instance is GraphDynS-128 — Section V-A: 'we implement
    GraphDyns with 128 PEs connected via a 128-radix crossbar running at
    its highest frequency of 100MHz'.
    """

    def __init__(self, config: Optional[CrossbarAcceleratorConfig] = None) -> None:
        super().__init__(config or _graphdyns_config(128, 1, 100.0))

    @classmethod
    def with_128_pes(cls) -> "GraphDynS":
        """The paper's GraphDynS-128 reference point."""
        return cls()

    @classmethod
    def with_512_pes(cls) -> "GraphDynS":
        """GraphDynS-512: four mesh-connected 128-PE crossbar tiles.

        Section V-A: simply replacing the crossbar with a mesh slows
        GraphDynS down (~1.98x against ScalaGraph-128) because of the
        increased NoC communications, so the paper — and this model —
        keeps the crossbars inside tiles and meshes the tiles together.
        """
        return cls(_graphdyns_config(512, 4, 100.0))

    @classmethod
    def with_pes(
        cls,
        num_pes: int,
        frequency_mhz: Optional[float] = None,
        with_crossbar: bool = True,
    ) -> "GraphDynS":
        """An arbitrary-size single-tile variant (Figure 4 study).

        With ``frequency_mhz=None`` the clock comes from the crossbar
        synthesis model and raises
        :class:`~repro.errors.SynthesisError` beyond 128 PEs (the
        Figure 4 route failures).  ``with_crossbar=False`` builds the
        crossbar-removed control variant.
        """
        from dataclasses import replace

        cfg = replace(
            _graphdyns_config(num_pes, 1, frequency_mhz),
            with_crossbar=with_crossbar,
        )
        return cls(cfg)
