"""AccuGraph baseline (Yao et al., PACT 2018).

AccuGraph is the FPGA accelerator with a *parallel accumulator* that
merges multiple same-vertex memory operations in one cycle, plus an
out-of-order on-chip memory.  It still rides a centralised crossbar, so
it shares the O(N^2) frequency wall; Section V-A drops it from the main
comparison because it 'is consistently inferior to GraphDyns in both
performance and scalability' — it appears in the Figure 4 crossbar study.

Model: the accumulator matches GraphDynS's same-partition absorption
(``vector_width``) but the static scheduler packs dispatch slots less
efficiently than GraphDynS's dynamic one, which is what makes AccuGraph
consistently the slower of the two.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import CrossbarAccelerator, CrossbarAcceleratorConfig


def _accugraph_config(
    num_pes: int,
    frequency_mhz: Optional[float],
    with_crossbar: bool = True,
) -> CrossbarAcceleratorConfig:
    return CrossbarAcceleratorConfig(
        name="AccuGraph",
        num_pes=num_pes,
        num_tiles=1,
        frequency_mhz=frequency_mhz,
        with_crossbar=with_crossbar,
        vector_width=8,  # the parallel accumulator's merge width
        dispatch_efficiency=0.85,  # static scheduling packs worse
    )


class AccuGraph(CrossbarAccelerator):
    """AccuGraph with its paper-described parameters."""

    def __init__(self, config: Optional[CrossbarAcceleratorConfig] = None) -> None:
        super().__init__(config or _accugraph_config(128, None))

    @classmethod
    def with_pes(
        cls,
        num_pes: int,
        frequency_mhz: Optional[float] = None,
        with_crossbar: bool = True,
    ) -> "AccuGraph":
        """Arbitrary-size variant for the Figure 4 scaling study."""
        return cls(_accugraph_config(num_pes, frequency_mhz, with_crossbar))
