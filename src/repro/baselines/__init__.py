"""Baseline systems the paper compares against (Section V-A).

* :class:`GraphDynS` — the state-of-the-art centralised-crossbar ASIC
  prototyped on FPGA; ``GraphDynS.with_512_pes()`` builds the four-tile
  mesh-of-crossbars extension (GraphDynS-512).
* :class:`AccuGraph` — the FPGA accelerator with a parallel accumulator,
  used in the Figure 4 crossbar study.
* :class:`Gunrock` — the GPU graph system on an NVIDIA V100, modelled
  analytically (memory-transaction amplification + atomic stalls).
* :class:`GraphPulse` — the event-driven accelerator with a coalescing
  event queue behind a multi-stage crossbar (related work, Section VI).
"""

from repro.baselines.base import (
    CrossbarAccelerator,
    CrossbarAcceleratorConfig,
)
from repro.baselines.accugraph import AccuGraph
from repro.baselines.graphdyns import GraphDynS
from repro.baselines.graphpulse import GraphPulse, GraphPulseConfig
from repro.baselines.gunrock import Gunrock, GunrockConfig

__all__ = [
    "CrossbarAccelerator",
    "CrossbarAcceleratorConfig",
    "AccuGraph",
    "GraphDynS",
    "GraphPulse",
    "GraphPulseConfig",
    "Gunrock",
    "GunrockConfig",
]
