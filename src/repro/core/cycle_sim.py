"""Cycle-accurate single-tile simulator.

Where :class:`~repro.core.accelerator.ScalaGraph` computes analytic
bounds and :class:`~repro.core.functional.FunctionalScalaGraph` checks
functional equivalence, this simulator advances a whole tile **cycle by
cycle**: every cycle each row's dispatching unit issues one line of edge
workloads (degree-aware packing, Section IV-C), every GU processes one
workload, every RU offers its update to its aggregation pipeline and
injects at most one surviving update into the mesh (Section IV-B), the
routers move flits under XY routing with backpressure, and every SPD
slice retires one Reduce per cycle.

It exists to validate the analytic timing model: tests check that on
small graphs the two models' Scatter-phase cycle counts agree within a
small factor, and that the architecture still computes exactly the
Figure 1 result.  Two independently selectable engines cover the
per-cycle work: the mesh-NoC step is delegated to
:attr:`~repro.core.config.ScalaGraphConfig.noc_engine` (vectorised
struct-of-arrays at 16x16 and beyond; see :mod:`repro.noc.fastmesh`),
and the scatter-phase loops around it — dispatch, aggregation, RU
egress, SPD retire — to
:attr:`~repro.core.config.ScalaGraphConfig.cycle_engine` (the
behaviourally identical :mod:`repro.core.fastsim` engine at the same
threshold; this class's ``_scatter_phase`` is the auditable
reference).  Fully idle cycles fast-forward to the mesh's next
scheduled event under either engine.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import ProgramContext, VertexProgram
from repro.algorithms.reference import gather_frontier_edges
from repro.analysis.sanitizer import SimSanitizer, maybe_sanitizer
from repro.core.config import ScalaGraphConfig
from repro.core.fastsim import resolve_cycle_engine, scatter_phase_fast
from repro.core.profiling import NULL_PROFILER, Profiler
from repro.errors import (
    ConfigurationError,
    EngineFallbackWarning,
    SanitizerError,
    SimulationError,
)
from repro.faults import FaultSchedule
from repro.graph.csr import CSRGraph
from repro.mapping import make_mapping
from repro.noc.aggregation import AggregationPipeline, aggregation_geometry
from repro.noc.fastmesh import make_mesh_network, resolve_engine
from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology


@dataclass
class CycleStats:
    """Cycle-level accounting of one run.

    The ``phase_*`` lists hold one entry per Scatter phase (parallel to
    :attr:`scatter_cycles`); per phase the invariant
    ``phase_updates[i] - phase_coalesced[i] == phase_spd_reduces[i]``
    holds — every dispatched update either coalesces in an aggregation
    pipeline or retires as exactly one SPD Reduce.
    """

    total_cycles: int = 0
    scatter_cycles: List[int] = field(default_factory=list)
    apply_cycles: List[int] = field(default_factory=list)
    updates_processed: int = 0
    updates_coalesced: int = 0
    noc_hops: int = 0
    spd_reduces: int = 0
    dispatch_lines: int = 0
    iterations: int = 0
    phase_updates: List[int] = field(default_factory=list)
    phase_coalesced: List[int] = field(default_factory=list)
    phase_spd_reduces: List[int] = field(default_factory=list)
    #: Scatter cycles in which an armed fault schedule degraded progress
    #: (a mesh fault touched live traffic, or a stalled PE sat on
    #: pending work).  Zero without faults.
    degraded_cycles: int = 0
    #: Committed mesh traversals that detoured around a dead link.
    rerouted_packets: int = 0


@dataclass
class CycleResult:
    properties: np.ndarray
    stats: CycleStats
    converged: bool
    #: Wall-clock profiling breakdown, set when the simulator was
    #: constructed with a :class:`~repro.core.profiling.Profiler`.
    profile: Optional[Dict] = None


class _RowDispatcher:
    """One DU: packs a row's edge workloads into per-cycle lines.

    Workloads arrive grouped by vertex; each cycle the DU emits at most
    ``line_width`` edges drawn from at most ``window`` distinct vertices
    at the head of its queue (Section IV-C's degree-aware packing).
    """

    def __init__(self, line_width: int, window: int) -> None:
        self.line_width = line_width
        self.window = window
        # Queue of per-vertex edge lists: (vertex, deque of edge indices).
        self.queue: Deque[Tuple[int, Deque[int]]] = deque()

    def push_vertex(self, vertex: int, edge_indices: np.ndarray) -> None:
        if edge_indices.size:
            self.queue.append((vertex, deque(int(e) for e in edge_indices)))

    @property
    def busy(self) -> bool:
        return bool(self.queue)

    def issue_line(self) -> List[int]:
        """Edges dispatched this cycle (possibly empty)."""
        line: List[int] = []
        vertices_used = 0
        while (
            self.queue
            and len(line) < self.line_width
            and vertices_used < self.window
        ):
            vertex, edges = self.queue[0]
            while edges and len(line) < self.line_width:
                line.append(edges.popleft())
            if edges:
                break  # line full mid-vertex; resume next cycle
            self.queue.popleft()
            vertices_used += 1
        return line


class CycleAccurateScalaGraph:
    """A single-tile, cycle-driven ScalaGraph model.

    Args:
        config: hardware configuration (defaults to a 4x4 single tile).
        noc_buffer_depth: per-port router buffer depth of the simulated
            mesh; shallow buffers (1) stress backpressure handling.
        profiler: optional wall-clock profiler; when given, the run's
            per-phase host-time breakdown lands on
            :attr:`CycleResult.profile`.
        sanitize: arm the :class:`~repro.analysis.sanitizer.SimSanitizer`
            runtime invariant checks (update conservation, FIFO depths,
            cycle monotonicity, SPD accounting).  None defers to the
            ``REPRO_SANITIZE`` environment variable.
        faults: optional :class:`~repro.faults.FaultSchedule` built for
            this simulator's topology.  Mesh faults and PE stall
            windows replay from cycle 0 of *every* Scatter phase (each
            phase builds a fresh mesh), which keeps fault replay
            deterministic regardless of how many phases a run needs.
    """

    def __init__(
        self,
        config: Optional[ScalaGraphConfig] = None,
        noc_buffer_depth: int = 4,
        profiler: Optional[Profiler] = None,
        sanitize: Optional[bool] = None,
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        self.config = config or ScalaGraphConfig(
            num_tiles=1, pe_rows=4, pe_cols=4
        )
        self.noc_buffer_depth = noc_buffer_depth
        self.profiler = profiler
        self.sanitizer: Optional[SimSanitizer] = maybe_sanitizer(
            sanitize, context="cycle_sim"
        )
        self.topology = MeshTopology(
            rows=self.config.pe_rows, cols=self.config.total_cols
        )
        self.mapping = make_mapping(self.config.mapping, self.topology)
        if faults is not None and (
            faults.topology.rows != self.topology.rows
            or faults.topology.cols != self.topology.cols
        ):
            raise ConfigurationError(
                f"fault schedule was built for a "
                f"{faults.topology.rows}x{faults.topology.cols} mesh; "
                f"this simulator is "
                f"{self.topology.rows}x{self.topology.cols}"
            )
        self.faults = faults

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        program: VertexProgram,
        graph: CSRGraph,
        max_iterations: Optional[int] = None,
        max_cycles_per_phase: int = 2_000_000,
    ) -> CycleResult:
        """Simulate ``program`` over ``graph`` cycle by cycle.

        Graceful engine degradation: when a *vectorized* engine (the
        mesh NoC or the fastsim scatter phase) raises a
        :class:`~repro.errors.SanitizerError` mid-run, the run is
        retried once with both engines on reference and an
        :class:`~repro.errors.EngineFallbackWarning` instead of killing
        the experiment (a run is a pure function of its inputs, so the
        retry is exact; an attached profiler accrues both attempts).
        Disable via ``config.noc_engine_fallback=False``; an
        all-reference failure always propagates.
        """
        engine = resolve_engine(self.config.noc_engine, self.topology)
        cycle_engine = resolve_cycle_engine(
            self.config.cycle_engine, self.topology
        )
        try:
            return self._run(
                program,
                graph,
                max_iterations,
                max_cycles_per_phase,
                engine,
                cycle_engine,
            )
        except SanitizerError as exc:
            vectorized = [
                f"{name}:vectorized"
                for name, eng in (("noc", engine), ("cycle", cycle_engine))
                if eng == "vectorized"
            ]
            if not vectorized or not self.config.noc_engine_fallback:
                raise
            warnings.warn(
                EngineFallbackWarning("+".join(vectorized), exc),
                stacklevel=2,
            )
            return self._run(
                program,
                graph,
                max_iterations,
                max_cycles_per_phase,
                "reference",
                "reference",
            )

    def _run(
        self,
        program: VertexProgram,
        graph: CSRGraph,
        max_iterations: Optional[int],
        max_cycles_per_phase: int,
        engine: str,
        cycle_engine: str = "reference",
    ) -> CycleResult:
        ctx = ProgramContext(graph=graph)
        program.validate(ctx)
        props = program.initial_properties(ctx)
        active = np.asarray(program.initial_active(ctx), dtype=np.int64)
        limit = (
            max_iterations
            if max_iterations is not None
            else program.max_iterations(ctx)
        )
        stats = CycleStats()
        prof = self.profiler or NULL_PROFILER

        iteration = 0
        while active.size and iteration < limit:
            vtemp = np.full(
                graph.num_vertices, program.reduce_identity, dtype=np.float64
            )
            # Which vertices actually received an SPD Reduce this phase.
            # Comparing vtemp against the reduce identity is not enough:
            # an aggregated value can legitimately *equal* the identity
            # (a zero-valued contribution under a + reduce) and must
            # still be charged an Apply slot.
            touched_mask = np.zeros(graph.num_vertices, dtype=bool)
            with prof.timer("cycle_sim.scatter"):
                if cycle_engine == "vectorized":
                    cycles = scatter_phase_fast(
                        self, program, ctx, graph, active, props, vtemp,
                        touched_mask, stats, max_cycles_per_phase, engine,
                    )
                else:
                    cycles = self._scatter_phase(
                        program, ctx, graph, active, props, vtemp,
                        touched_mask, stats, max_cycles_per_phase, engine,
                    )
            stats.scatter_cycles.append(cycles)

            # Apply: every touched slice applies one vertex per cycle.
            with prof.timer("cycle_sim.apply"):
                touched = np.flatnonzero(touched_mask)
                if program.all_active:
                    touched = np.arange(graph.num_vertices, dtype=np.int64)
                apply_cycles = self._apply_cycles(touched)
                stats.apply_cycles.append(apply_cycles)

                new_props = program.apply_values(ctx, props, vtemp)
                updated = program.is_updated(props, new_props)
            props = new_props
            active = (
                np.arange(graph.num_vertices, dtype=np.int64)
                if (program.all_active and np.any(updated))
                else np.flatnonzero(updated).astype(np.int64)
            )
            iteration += 1

        stats.iterations = iteration
        stats.total_cycles = sum(stats.scatter_cycles) + sum(
            stats.apply_cycles
        )
        if self.sanitizer is not None:
            self._check_run_totals(stats)
        prof.count("cycle_sim.iterations", iteration)
        prof.count("cycle_sim.scatter_cycles", sum(stats.scatter_cycles))
        prof.count("cycle_sim.apply_cycles", sum(stats.apply_cycles))
        prof.count("cycle_sim.spd_reduces", stats.spd_reduces)
        prof.count("cycle_sim.updates_coalesced", stats.updates_coalesced)
        prof.count("cycle_sim.noc_hops", stats.noc_hops)
        return CycleResult(
            properties=props,
            stats=stats,
            converged=active.size == 0,
            profile=(
                self.profiler.to_dict() if self.profiler is not None else None
            ),
        )

    def _check_run_totals(self, stats: CycleStats) -> None:
        """End-of-run audit: the per-phase ledgers must sum to the run
        totals, and the run totals must balance."""
        san = self.sanitizer
        assert san is not None
        san.begin_epoch("run-totals")
        san.check_conservation(
            injected=stats.updates_processed,
            delivered=stats.spd_reduces,
            coalesced=stats.updates_coalesced,
            in_flight=0,
            where="run totals",
        )
        san.check_spd_accounting(
            spd_reduces=stats.spd_reduces,
            updates=stats.updates_processed,
            coalesced=stats.updates_coalesced,
        )
        if sum(stats.phase_updates) != stats.updates_processed:
            san.fail(
                "update-conservation",
                f"per-phase updates {sum(stats.phase_updates)} != run "
                f"total {stats.updates_processed}",
            )

    # ------------------------------------------------------------------
    # Scatter: the cycle loop
    # ------------------------------------------------------------------
    def _scatter_phase(
        self,
        program: VertexProgram,
        ctx: ProgramContext,
        graph: CSRGraph,
        active: np.ndarray,
        props: np.ndarray,
        vtemp: np.ndarray,
        touched_mask: np.ndarray,
        stats: CycleStats,
        max_cycles: int,
        engine: str,
    ) -> int:
        cfg = self.config
        prof = self.profiler
        coalesced_before = stats.updates_coalesced
        spd_reduces_before = stats.spd_reduces
        src, dst, weights = gather_frontier_edges(graph, active)
        if src.size == 0:
            stats.phase_updates.append(0)
            stats.phase_coalesced.append(0)
            stats.phase_spd_reduces.append(0)
            return 0
        values = program.scatter_value(ctx, src, weights, props[src])
        exec_pe = self.mapping.execution_pe(src, dst)
        home_pe = self.mapping.home(dst)
        reduce_ufunc = program.reduce_ufunc
        reduce_fn = lambda a, b: float(reduce_ufunc(a, b))

        # Fill each row's dispatcher with its vertices' edge groups:
        # ROM/SOM stream a vertex's out-edges to its home row; DOM's
        # per-partition CSR groups edges by destination instead.
        from repro.mapping.destination_oriented import (
            DestinationOrientedMapping,
        )

        dispatchers = [
            _RowDispatcher(self.topology.cols, cfg.degree_aware_window)
            for _ in range(self.topology.rows)
        ]
        group = (
            dst
            if isinstance(self.mapping, DestinationOrientedMapping)
            else src
        )
        order = np.argsort(group, kind="stable")
        sorted_group = group[order]
        boundaries = np.flatnonzero(
            np.diff(np.concatenate([[-1], sorted_group]))
        )
        for i, start in enumerate(boundaries):
            stop = (
                boundaries[i + 1] if i + 1 < len(boundaries) else order.size
            )
            vertex = int(sorted_group[start])
            row = int(
                self.topology.rows_of(self.mapping.home(np.int64(vertex)))
            )
            dispatchers[row].push_vertex(vertex, order[start:stop])

        # Per-PE aggregation pipelines and outgoing FIFOs.
        registers = cfg.aggregation_registers
        pipelines: Dict[int, AggregationPipeline] = {}
        out_fifos: List[Deque[Tuple[int, float]]] = [
            deque() for _ in range(self.topology.num_nodes)
        ]
        spd_fifos: List[Deque[Tuple[int, float]]] = [
            deque() for _ in range(self.topology.num_nodes)
        ]
        if self.sanitizer is not None:
            self.sanitizer.begin_epoch(
                f"scatter[{len(stats.scatter_cycles)}]"
            )
        network = make_mesh_network(
            self.topology,
            buffer_depth=self.noc_buffer_depth,
            sanitizer=self.sanitizer,
            engine=engine,
            faults=self.faults,
        )
        # One reusable timer object: entered every loop iteration, so it
        # must not allocate per cycle (see Profiler.block_timer).
        noc_timer = (prof or NULL_PROFILER).block_timer("cycle_sim.noc_step")

        def pipeline_for(pe: int) -> Optional[AggregationPipeline]:
            if registers <= 0:
                return None
            pipe = pipelines.get(pe)
            if pipe is None:
                stages, cols = aggregation_geometry(registers)
                pipe = AggregationPipeline(
                    num_stages=stages,
                    num_columns=cols,
                    reduce_fn=reduce_fn,
                    sanitizer=self.sanitizer,
                )
                pipelines[pe] = pipe
            return pipe

        faults = self.faults
        cycle = 0
        edges_remaining = int(src.size)
        while True:
            progressed = False
            # A stalled PE (fault injection) emits no update and retires
            # no SPD reduce this cycle; the flag records whether a stall
            # actually blocked pending work (feeds degraded_cycles).
            pe_stall_hit = False
            net_degraded_before = network.stats.degraded_cycles

            # 1. Dispatch: one line per row per cycle; each edge's GU
            #    produces its update in the same cycle (pipelined).
            for dispatcher in dispatchers:
                line = dispatcher.issue_line()
                if not line:
                    continue
                progressed = True
                stats.dispatch_lines += 1
                edges_remaining -= len(line)
                for edge in line:
                    pe = int(exec_pe[edge])
                    vertex = int(dst[edge])
                    value = float(values[edge])
                    pipe = pipeline_for(pe)
                    if pipe is None:
                        out_fifos[pe].append((vertex, value))
                        continue
                    outcome = pipe.offer(vertex, value)
                    if outcome == "coalesced":
                        stats.updates_coalesced += 1
                    elif outcome == "rejected":
                        evicted = pipe.emit(column=pipe.column_of(vertex))
                        if evicted is not None:
                            out_fifos[pe].append(evicted)
                        if pipe.offer(vertex, value) == "rejected":
                            raise SimulationError("aggregation stuck")

            # 2. RU egress: each PE emits one update per cycle — from its
            #    FIFO first, then by draining its pipeline once dispatch
            #    for the phase is done.  An update whose injection the
            #    mesh refuses (backpressure) goes back to the *head* of
            #    its FIFO — it keeps its place in the stream and retries
            #    next cycle; the phase-exit test below reads the FIFOs
            #    directly, so a requeued update can never be dropped or
            #    double-counted by a shadow counter.
            drain_pipelines = all(not d.busy for d in dispatchers)
            for pe in range(self.topology.num_nodes):
                if faults is not None and faults.pe_stalled(pe, cycle):
                    if out_fifos[pe] or (
                        drain_pipelines
                        and pe in pipelines
                        and pipelines[pe].occupancy()
                    ):
                        pe_stall_hit = True
                    continue
                item = None
                if out_fifos[pe]:
                    item = out_fifos[pe].popleft()
                elif drain_pipelines and pe in pipelines:
                    item = pipelines[pe].emit()
                if item is None:
                    continue
                progressed = True
                vertex, value = item
                target = int(self.mapping.home(np.int64(vertex)))
                if target == pe:
                    spd_fifos[pe].append((vertex, value))
                else:
                    if not network.inject(
                        Packet(src=pe, dst=target, vertex=vertex, value=value)
                    ):
                        # Backpressure: requeue and retry next cycle.
                        out_fifos[pe].appendleft((vertex, value))

            # 3. NoC: one router cycle; deliveries feed the SPD FIFOs.
            before = len(network.delivered)
            with noc_timer:
                network.step()
            for packet in network.delivered[before:]:
                spd_fifos[packet.dst].append((packet.vertex, packet.value))
            if len(network.delivered) != before or network.total_occupancy():
                progressed = True

            # 4. SPD: one Reduce per slice per cycle.
            for pe in range(self.topology.num_nodes):
                if spd_fifos[pe]:
                    if faults is not None and faults.pe_stalled(pe, cycle):
                        pe_stall_hit = True
                        continue
                    vertex, value = spd_fifos[pe].popleft()
                    vtemp[vertex] = reduce_ufunc(vtemp[vertex], value)
                    touched_mask[vertex] = True
                    stats.spd_reduces += 1
                    progressed = True

            if faults is not None and (
                pe_stall_hit
                or network.stats.degraded_cycles > net_degraded_before
            ):
                stats.degraded_cycles += 1

            cycle += 1
            if cycle > max_cycles:
                raise SimulationError(
                    f"scatter phase did not drain in {max_cycles} cycles"
                )

            if (
                not progressed
                and edges_remaining == 0
                and not any(out_fifos)
                and not any(pipelines[p].occupancy() for p in pipelines)
                and not any(spd_fifos)
                and not network.total_occupancy()
                and not network.in_flight_packets()
            ):
                break

            # Idle-cycle fast-forward: nothing moved this cycle and the
            # mesh is quiescent, so jump straight to its next scheduled
            # event (an in-flight landing) instead of spinning.  The
            # jump is stats-neutral; idle cycles only tick counters.  A
            # stalled PE holding work is *not* idle — fast-forwarding
            # would skip the rest of its stall window, so hold the jump
            # until the window has visibly passed cycle by cycle.
            if not progressed and not pe_stall_hit:
                target = network.next_event_cycle()
                if target is not None and target > network.cycle:
                    cycle += network.fast_forward(target)

        stats.updates_processed += int(src.size)
        stats.noc_hops += network.stats.total_hops
        stats.rerouted_packets += network.stats.rerouted_packets
        phase_coalesced = stats.updates_coalesced - coalesced_before
        phase_spd = stats.spd_reduces - spd_reduces_before
        stats.phase_updates.append(int(src.size))
        stats.phase_coalesced.append(phase_coalesced)
        stats.phase_spd_reduces.append(phase_spd)
        if self.sanitizer is not None:
            in_flight = (
                edges_remaining
                + sum(len(f) for f in out_fifos)
                + sum(len(f) for f in spd_fifos)
                + sum(p.occupancy() for p in pipelines.values())
                + network.total_occupancy()
                + network.in_flight_packets()
            )
            self.sanitizer.check_conservation(
                injected=int(src.size),
                delivered=phase_spd,
                coalesced=phase_coalesced,
                in_flight=in_flight,
                where="scatter phase",
                cycle=cycle,
            )
            self.sanitizer.check_spd_accounting(
                spd_reduces=phase_spd,
                updates=int(src.size),
                coalesced=phase_coalesced,
                cycle=cycle,
            )
        return cycle

    def _apply_cycles(self, touched: np.ndarray) -> int:
        if touched.size == 0:
            return 0
        loads = np.bincount(
            self.mapping.home(touched), minlength=self.topology.num_nodes
        )
        return int(loads.max())
