"""Dispatcher models: degree-aware scheduling and inter-phase pipelining.

**Degree-aware scheduling (Section IV-C).**  Each dispatching unit feeds
one row of PEs with a 64-byte line of edges per cycle.  Scheduling one
vertex at a time starves the row on low-degree vertices (a degree-3
vertex fills 3 of 16 slots); ScalaGraph packs up to ``window`` low-degree
active vertices whose edges share the fetched line into one dispatch.
The model: a vertex of degree ``d`` emits ``floor(d / line)`` full lines,
and the remainders are packed into lines holding at most ``line`` edges
*and* at most ``window`` distinct vertices — so ``window = 1`` recovers
the one-vertex-per-line baseline of Figure 19(a) and ``window = 16`` the
paper's default.

**Inter-phase pipelining (Section IV-D).**  For monotonic algorithms the
Apply phase of iteration *i* overlaps the Scatter phase of iteration
*i+1*; the Apply of an iteration can only start after that iteration's
Scatter fully finishes, so the overlap is bounded by
``min(apply_i, scatter_{i+1})``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def pack_lines(
    degrees: np.ndarray,
    groups: np.ndarray,
    num_groups: int,
    line_width: int,
    window: int,
) -> np.ndarray:
    """Dispatch lines needed per group (row) of the PE matrix.

    Args:
        degrees: edges of each scheduled vertex (this pass).
        groups: dispatch row of each vertex, aligned with ``degrees``.
        num_groups: number of rows.
        line_width: edges per 64-byte line (== PEs per row).
        window: max vertices packable into one line (degree-aware
            scheduling knob; 1 disables packing).

    Returns:
        ``float64[num_groups]`` line counts; the Scatter compute bound is
        the max (rows dispatch in parallel).
    """
    if line_width <= 0 or window <= 0:
        raise ConfigurationError("line_width and window must be positive")
    degrees = np.asarray(degrees, dtype=np.int64)
    groups = np.asarray(groups, dtype=np.int64)
    if degrees.shape != groups.shape:
        raise ConfigurationError("degrees/groups must align")

    full_lines = np.bincount(
        groups, weights=degrees // line_width, minlength=num_groups
    )
    remainders = degrees % line_width
    rem_edges = np.bincount(
        groups, weights=remainders, minlength=num_groups
    )
    rem_vertices = np.bincount(
        groups, weights=(remainders > 0).astype(np.float64), minlength=num_groups
    )
    rem_lines = np.maximum(
        np.ceil(rem_edges / line_width), np.ceil(rem_vertices / window)
    )
    return full_lines + rem_lines


def scatter_compute_cycles(
    degrees: np.ndarray,
    rows: np.ndarray,
    num_rows: int,
    line_width: int,
    window: int,
    dispatch_efficiency: float = 1.0,
) -> float:
    """Scatter compute bound: the slowest row's dispatch-line count."""
    lines = pack_lines(degrees, rows, num_rows, line_width, window)
    peak = float(lines.max()) if lines.size else 0.0
    return peak / dispatch_efficiency


def apply_compute_cycles(
    touched_pe: np.ndarray, num_pes: int
) -> float:
    """Apply compute bound: the busiest PE's touched-vertex count.

    Each PE applies only vertices resident in its SPD slice
    (Section IV-C), so the phase lasts as long as its most loaded PE.
    """
    touched_pe = np.asarray(touched_pe, dtype=np.int64)
    if touched_pe.size == 0:
        return 0.0
    return float(np.bincount(touched_pe, minlength=num_pes).max())


def pipeline_schedule(
    scatter_cycles: Sequence[float],
    apply_cycles: Sequence[float],
    enabled: bool,
    efficiency: float = 0.9,
) -> Tuple[float, List[float]]:
    """Total cycles across iterations with optional inter-phase overlap.

    Without pipelining the iterations serialise:
    ``sum(scatter_i + apply_i)``.  With it, Apply *i* runs concurrently
    with Scatter *i+1* (the dispatcher starts refetching as soon as
    individual vertices finish Apply, Figure 13), hiding
    ``efficiency * min(apply_i, scatter_{i+1})`` cycles.  The last Apply
    has nothing to overlap with.

    Returns:
        ``(total_cycles, per_iteration_overlaps)``.
    """
    scatter = list(scatter_cycles)
    apply = list(apply_cycles)
    if len(scatter) != len(apply):
        raise ConfigurationError("scatter/apply sequences must align")
    total = sum(scatter) + sum(apply)
    overlaps = [0.0] * len(scatter)
    if not enabled or len(scatter) < 2:
        return total, overlaps
    for i in range(len(scatter) - 1):
        overlaps[i] = efficiency * min(apply[i], scatter[i + 1])
    return total - sum(overlaps), overlaps
