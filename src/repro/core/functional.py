"""Detailed functional ScalaGraph: real routing, aggregation, and SPDs.

Where :class:`~repro.core.accelerator.ScalaGraph` replays a functional
trace through analytic bounds, this simulator actually *executes* the
architecture on small graphs: every Scatter update is processed at the PE
chosen by the mapping, coalesced in that PE's aggregation pipeline,
routed hop by hop through the cycle-level mesh, and reduced into the
destination PE's scratchpad slice.  Integration tests use it to show the
architecture computes exactly what the Figure 1 reference engine does,
and to cross-check the analytic NoC model's hop accounting.

It is O(edges x hops) pure Python — use it on graphs with up to a few
thousand edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.algorithms.base import ProgramContext, VertexProgram
from repro.core.config import ScalaGraphConfig
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.mapping import make_mapping
from repro.noc.aggregation import AggregationPipeline, aggregation_geometry
from repro.noc.fastmesh import make_mesh_network
from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology


@dataclass
class FunctionalRunStats:
    """Cycle-level observations of a functional run."""

    iterations: int = 0
    updates_generated: int = 0
    updates_injected: int = 0
    updates_coalesced: int = 0
    noc_hops: int = 0
    noc_cycles: int = 0
    spd_reduces: int = 0
    per_iteration_hops: list = field(default_factory=list)


@dataclass
class FunctionalResult:
    """Functional outcome plus NoC statistics."""

    properties: np.ndarray
    stats: FunctionalRunStats
    converged: bool


class FunctionalScalaGraph:
    """Executes a vertex program through the real architecture pieces."""

    def __init__(self, config: Optional[ScalaGraphConfig] = None) -> None:
        self.config = config or ScalaGraphConfig(
            num_tiles=1, pe_rows=4, pe_cols=4
        )
        self.topology = MeshTopology(
            rows=self.config.pe_rows, cols=self.config.total_cols
        )
        self.mapping = make_mapping(self.config.mapping, self.topology)

    def run(
        self,
        program: VertexProgram,
        graph: CSRGraph,
        max_iterations: Optional[int] = None,
    ) -> FunctionalResult:
        ctx = ProgramContext(graph=graph)
        program.validate(ctx)
        props = program.initial_properties(ctx)
        active = np.asarray(program.initial_active(ctx), dtype=np.int64)
        limit = (
            max_iterations
            if max_iterations is not None
            else program.max_iterations(ctx)
        )
        stats = FunctionalRunStats()

        iteration = 0
        while active.size and iteration < limit:
            vtemp = np.full(
                graph.num_vertices, program.reduce_identity, dtype=np.float64
            )
            hops_before = stats.noc_hops
            self._scatter(program, ctx, graph, active, props, vtemp, stats)
            stats.per_iteration_hops.append(stats.noc_hops - hops_before)

            new_props = program.apply_values(ctx, props, vtemp)
            updated = program.is_updated(props, new_props)
            props = new_props
            active = (
                np.arange(graph.num_vertices, dtype=np.int64)
                if (program.all_active and np.any(updated))
                else np.flatnonzero(updated).astype(np.int64)
            )
            iteration += 1
            stats.iterations = iteration

        return FunctionalResult(
            properties=props,
            stats=stats,
            converged=active.size == 0,
        )

    # ------------------------------------------------------------------
    # Scatter through the real components
    # ------------------------------------------------------------------
    def _scatter(
        self,
        program: VertexProgram,
        ctx: ProgramContext,
        graph: CSRGraph,
        active: np.ndarray,
        props: np.ndarray,
        vtemp: np.ndarray,
        stats: FunctionalRunStats,
    ) -> None:
        from repro.algorithms.reference import gather_frontier_edges

        src, dst, weights = gather_frontier_edges(graph, active)
        if src.size == 0:
            return
        values = program.scatter_value(ctx, src, weights, props[src])
        exec_pe = self.mapping.execution_pe(src, dst)
        home_pe = self.mapping.home(dst)
        stats.updates_generated += int(src.size)

        # Per-PE aggregation pipelines coalesce same-vertex updates
        # before they enter the network (Section IV-B).
        reduce_fn = lambda a, b: float(program.reduce_ufunc(a, b))
        registers = self.config.aggregation_registers
        pipelines: Dict[int, AggregationPipeline] = {}
        outgoing: Dict[int, list] = {pe: [] for pe in range(self.topology.num_nodes)}
        for pe, vertex, value in zip(exec_pe, dst, values):
            pe = int(pe)
            if registers > 0:
                pipe = pipelines.get(pe)
                if pipe is None:
                    stages, cols = aggregation_geometry(registers)
                    pipe = AggregationPipeline(
                        num_stages=stages,
                        num_columns=cols,
                        reduce_fn=reduce_fn,
                    )
                    pipelines[pe] = pipe
                outcome = pipe.offer(int(vertex), float(value))
                if outcome == "rejected":
                    # Register column full: make room by forwarding the
                    # oldest resident update of that column, then store.
                    evicted = pipe.emit(column=pipe.column_of(int(vertex)))
                    if evicted is not None:
                        outgoing[pe].append(evicted)
                    if pipe.offer(int(vertex), float(value)) == "rejected":
                        raise SimulationError("aggregation pipeline stuck")
            else:
                outgoing[pe].append((int(vertex), float(value)))
        for pe, pipe in pipelines.items():
            outgoing[pe].extend(pipe.drain())
            stats.updates_coalesced += pipe.stats.coalesced

        # Route surviving updates; local ones bypass the network.
        network = make_mesh_network(
            self.topology, buffer_depth=8, engine=self.config.noc_engine
        )
        reduce_ufunc = program.reduce_ufunc
        injected = 0
        for pe, items in outgoing.items():
            for slot, (vertex, value) in enumerate(items):
                target = int(self.mapping.home(np.int64(vertex)))
                if target == pe:
                    vtemp[vertex] = reduce_ufunc(vtemp[vertex], value)
                    stats.spd_reduces += 1
                    continue
                packet = Packet(
                    src=pe,
                    dst=target,
                    vertex=int(vertex),
                    value=float(value),
                    injected_cycle=slot,  # one injection per PE per cycle
                )
                network.schedule(packet)
                injected += 1
        stats.updates_injected += injected
        if injected:
            mesh_stats = network.run_until_drained()
            stats.noc_hops += mesh_stats.total_hops
            stats.noc_cycles += mesh_stats.cycles
            for packet in network.delivered:
                vtemp[packet.vertex] = reduce_ufunc(
                    vtemp[packet.vertex], packet.value
                )
                stats.spd_reduces += 1
