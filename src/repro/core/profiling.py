"""Lightweight named timers and counters for the simulation models.

The experiment sweeps need to know where wall-clock goes — reference
execution, the analytic Scatter/Apply models, the cycle simulator's
phases, NoC stepping — without perturbing the timing *results* (the
profilers measure host time, never simulated cycles).  A
:class:`Profiler` is handed to a model at construction time; the model
wraps its phases in :meth:`Profiler.timer` blocks and bumps named
counters, and the accumulated breakdown is surfaced on
``SimulationReport.to_dict()`` (the ``profile`` key, present only when a
profiler was attached, so unprofiled runs serialise unchanged) and on
the ``repro bench --json`` CLI output.

Profiling is strictly opt-in: models default to the shared
:data:`NULL_PROFILER`, whose methods are no-ops, so the hot paths pay
one attribute check when profiling is off.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class _BlockTimer:
    """Reusable context manager accumulating into one named timer.

    Unlike :meth:`Profiler.timer`, which builds a fresh generator per
    ``with`` statement, a block timer is created once (outside the hot
    loop) and re-entered every iteration — the sanctioned way for model
    code to wall-clock an inner-loop block without a raw
    ``time.perf_counter()`` pair.
    """

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_BlockTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._profiler.add_time(
            self._name, time.perf_counter() - self._start
        )
        return False


class _NullBlockTimer(_BlockTimer):
    """Shared no-op block timer returned by :class:`NullProfiler`."""

    __slots__ = ()

    def __init__(self) -> None:  # no state to initialise
        pass

    def __enter__(self) -> "_BlockTimer":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_BLOCK_TIMER = _NullBlockTimer()


class Profiler:
    """Accumulates named wall-clock timers and integer counters.

    Timers record (call count, total seconds); counters are plain
    accumulators.  Not thread-safe — use one profiler per worker and
    :meth:`merge` the results.
    """

    __slots__ = ("_timers", "_counters")

    def __init__(self) -> None:
        # name -> [calls, total_seconds]
        self._timers: Dict[str, list] = {}
        self._counters: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing one block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def add_time(self, name: str, seconds: float, calls: int = 1) -> None:
        """Accumulate ``seconds`` (from ``calls`` invocations) under
        ``name`` — the non-context-manager path for tight loops."""
        entry = self._timers.get(name)
        if entry is None:
            self._timers[name] = [calls, seconds]
        else:
            entry[0] += calls
            entry[1] += seconds

    def block_timer(self, name: str) -> _BlockTimer:
        """A reusable ``with``-able timer for ``name``: create once,
        re-enter per iteration (cheaper than :meth:`timer` in loops)."""
        return _BlockTimer(self, name)

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_counter(self, name: str, value: float) -> None:
        self._counters[name] = value

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return True

    def timer_seconds(self, name: str) -> float:
        entry = self._timers.get(name)
        return entry[1] if entry else 0.0

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's accumulations into this one."""
        for name, (calls, seconds) in other._timers.items():
            self.add_time(name, seconds, calls=calls)
        for name, value in other._counters.items():
            self.count(name, value)

    def to_dict(self) -> Dict:
        """JSON-serialisable breakdown: per-timer calls/seconds plus the
        counters."""
        return {
            "timers": {
                name: {"calls": calls, "total_seconds": seconds}
                for name, (calls, seconds) in sorted(self._timers.items())
            },
            "counters": dict(sorted(self._counters.items())),
        }


class NullProfiler(Profiler):
    """A no-op profiler: every method returns immediately.

    Models hold ``profiler or NULL_PROFILER`` so instrumentation sites
    need no ``if`` guards.
    """

    __slots__ = ()

    def timer(self, name: str) -> _BlockTimer:
        # The shared no-op block timer doubles as a context manager, so
        # ``with NULL_PROFILER.timer(...)`` costs one method call and
        # allocates nothing — unlike the generator the real profiler's
        # @contextmanager builds per ``with`` statement.
        return _NULL_BLOCK_TIMER

    def add_time(self, name: str, seconds: float, calls: int = 1) -> None:
        pass

    def block_timer(self, name: str) -> _BlockTimer:
        return _NULL_BLOCK_TIMER

    def count(self, name: str, amount: float = 1) -> None:
        pass

    def set_counter(self, name: str, value: float) -> None:
        pass

    @property
    def enabled(self) -> bool:
        return False


#: Shared no-op instance used as the default by all instrumented models.
NULL_PROFILER = NullProfiler()


def resolve(profiler: Optional[Profiler]) -> Profiler:
    """``profiler`` itself, or the shared null profiler when None."""
    return profiler if profiler is not None else NULL_PROFILER
