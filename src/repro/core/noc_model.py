"""Vectorised NoC service model for one Scatter/Apply phase.

The timing model never routes individual packets at scale; it computes
(1) exactly which updates the aggregation pipelines coalesce away — an
update dies when the previous update to the same vertex is still
resident in the register window of its column stream (Section IV-B) —
(2) the per-link loads of the *surviving* updates under the active
mapping (Section IV-A), and (3) the service-time bound from the busiest
directed link and the busiest SPD slice.

The cycle-level :mod:`repro.noc.mesh` simulator and the register-array
:class:`~repro.noc.aggregation.AggregationPipeline` validate this model
on small instances (see the integration tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.mapping.base import Mapping
from repro.mapping.destination_oriented import DestinationOrientedMapping
from repro.mapping.row_oriented import RowOrientedMapping
from repro.mapping.row_oriented_torus import RowOrientedTorusMapping
from repro.noc.topology import MeshTopology
from repro.noc.torus import torus_column_link_loads
from repro.noc.traffic import column_link_loads, mesh_link_loads
from repro.util import grouped_arange

#: How much of the ideal window coalescing SOM retains: under SOM the
#: updates to one vertex converge only on the destination column's final
#: segment, so the register arrays see them later than under ROM.
SOM_AGGREGATION_EFFECTIVENESS = 0.5


@dataclass(frozen=True)
class ScatterNocStats:
    """NoC accounting of one Scatter phase.

    Attributes:
        messages: surviving updates injected into the NoC (remote
            destinations, after aggregation).
        total_hops: link traversals of the surviving updates.
        coalesced: updates eliminated by the aggregation pipelines.
        service_cycles: busiest-link load in updates.
        spd_service_cycles: busiest SPD slice's surviving reduce count.
    """

    messages: int
    total_hops: float
    coalesced: int
    service_cycles: float
    spd_service_cycles: float


def survivor_mask(
    edge_dst: np.ndarray,
    dst_col: np.ndarray,
    window: float,
) -> np.ndarray:
    """Which updates survive window-coalescing in their column stream.

    An update is coalesced into a resident predecessor when the previous
    update to the same destination vertex lies at most ``window``
    positions earlier within the same column's stream; the first
    occurrence (and any occurrence after a longer gap) survives.  This is
    the statistical counterpart of the Figure 11 register array, with
    ``window`` proportional to the register count.

    Window semantics for fractional windows (which arise when a caller
    scales an integer register window by an effectiveness factor, e.g.
    :data:`SOM_AGGREGATION_EFFECTIVENESS`) are **floor**: the register
    window holds a whole number of slots, so ``window`` is floored
    before use.  Positional gaps are integers, hence ``window=1.5``
    behaves exactly like ``window=1.0``, and any ``window < 1``
    (``0.5`` floors to ``0``) disables coalescing entirely — no update
    can be resident for a fraction of a slot.
    """
    n = int(edge_dst.size)
    mask = np.ones(n, dtype=bool)
    window = math.floor(window)
    if n == 0 or window < 1:
        return mask
    # Group by column, preserving stream order within each column.
    col_order = np.argsort(dst_col, kind="stable")
    col_sorted = dst_col[col_order]
    pos_in_col = grouped_arange(col_sorted)
    dst_sorted = edge_dst[col_order]
    # Within each column, group occurrences of each vertex in order.
    occ_order = np.lexsort((pos_in_col, dst_sorted, col_sorted))
    k_col = col_sorted[occ_order]
    k_dst = dst_sorted[occ_order]
    k_pos = pos_in_col[occ_order]
    same = (k_col[1:] == k_col[:-1]) & (k_dst[1:] == k_dst[:-1])
    gaps = k_pos[1:] - k_pos[:-1]
    survives = np.ones(n, dtype=bool)
    survives[1:] = ~(same & (gaps <= window))
    mask[col_order[occ_order]] = survives
    return mask


def scatter_noc_stats(
    mapping: Mapping,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    aggregation_window: float,
    spd_forwarding_window: float = 0.0,
) -> ScatterNocStats:
    """NoC statistics of routing one Scatter phase's updates.

    ``spd_forwarding_window`` models the SPD port's read-modify-write
    forwarding registers: back-to-back same-vertex reduces are absorbed
    there even without the aggregation pipeline, so the SPD service
    bound uses ``max(aggregation_window, spd_forwarding_window)``.
    """
    topology = mapping.topology
    edge_src = np.asarray(edge_src, dtype=np.int64)
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    if edge_src.size == 0:
        return ScatterNocStats(0, 0.0, 0, 0.0, 0.0)

    dst_home = mapping.home(edge_dst)

    if isinstance(mapping, DestinationOrientedMapping):
        # Source replicas make every Scatter access local; same-vertex
        # reduces serialise at the owning PE but need no aggregation
        # hardware (they are already grouped per partition).
        spd = _max_load(dst_home, topology.num_nodes)
        return ScatterNocStats(0, 0.0, 0, 0.0, spd)

    src_home = mapping.home(edge_src)
    dst_col = topology.cols_of(dst_home)

    effectiveness = 1.0
    if not isinstance(mapping, RowOrientedMapping):
        effectiveness = SOM_AGGREGATION_EFFECTIVENESS
    keep = survivor_mask(edge_dst, dst_col, aggregation_window * effectiveness)
    coalesced = int(edge_dst.size - np.count_nonzero(keep))

    spd_window = max(aggregation_window * effectiveness, spd_forwarding_window)
    if spd_window > aggregation_window * effectiveness:
        spd_keep = survivor_mask(edge_dst, dst_col, spd_window)
    else:
        spd_keep = keep
    spd = _max_load(dst_home[spd_keep], topology.num_nodes)

    if isinstance(mapping, RowOrientedMapping):
        src_row = topology.rows_of(src_home)
        dst_row = topology.rows_of(dst_home)
        remote = (src_row != dst_row) & keep
        loads_fn = (
            torus_column_link_loads
            if isinstance(mapping, RowOrientedTorusMapping)
            else column_link_loads
        )
        report = loads_fn(
            rows=topology.rows,
            column=dst_col[remote],
            src_row=src_row[remote],
            dst_row=dst_row[remote],
            num_cols=topology.cols,
        )
        return ScatterNocStats(
            messages=int(np.count_nonzero(remote)),
            total_hops=float(report.total_flit_hops),
            coalesced=coalesced,
            service_cycles=float(report.max_link_load),
            spd_service_cycles=spd,
        )

    # Source-oriented: updates traverse their source row horizontally
    # before turning into the destination column, so only the vertical
    # segment benefits from aggregation.
    remote = src_home != dst_home
    full = mesh_link_loads(topology, src_home[remote], dst_home[remote])
    kept = remote & keep
    survivors = mesh_link_loads(topology, src_home[kept], dst_home[kept])
    max_link = max(
        full.east.max() if full.east.size else 0,
        full.west.max() if full.west.size else 0,
        survivors.south.max() if survivors.south.size else 0,
        survivors.north.max() if survivors.north.size else 0,
    )
    hops = float(
        full.east.sum()
        + full.west.sum()
        + survivors.south.sum()
        + survivors.north.sum()
    )
    return ScatterNocStats(
        messages=int(np.count_nonzero(remote)),
        total_hops=hops,
        coalesced=coalesced,
        service_cycles=float(max_link),
        spd_service_cycles=spd,
    )


def apply_noc_service_cycles(
    mapping: Mapping, num_updates: int
) -> float:
    """Apply-phase NoC service bound.

    Zero for SOM/ROM (properties are local).  DOM floods each update to
    every PE's replica: each PE must ingest all ``num_updates`` writes
    (one per cycle), and the flood traffic also occupies links.
    """
    if not isinstance(mapping, DestinationOrientedMapping):
        return 0.0
    if num_updates <= 0:
        return 0.0
    topology = mapping.topology
    hops = num_updates * max(mapping.num_pes - 1, 0)
    ingest_bound = float(num_updates)  # every replica store writes them all
    link_bound = hops / max(_num_directed_links(topology), 1)
    return max(ingest_bound, link_bound)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _max_load(nodes: np.ndarray, num_nodes: int) -> float:
    if nodes.size == 0:
        return 0.0
    return float(np.bincount(nodes, minlength=num_nodes).max())


def _num_directed_links(topology: MeshTopology) -> int:
    horizontal = topology.rows * (topology.cols - 1) * 2
    vertical = topology.cols * (topology.rows - 1) * 2
    return horizontal + vertical
