"""Vectorised scatter-phase engine for the cycle-accurate simulator.

The reference :meth:`~repro.core.cycle_sim.CycleAccurateScalaGraph.
_scatter_phase` walks every dispatcher, PE, FIFO entry, and SPD slot in
Python objects each cycle — O(cycles x PEs) interpreter work that caps
real cycle-accurate runs at 16x16 meshes.  This module applies the
fastmesh recipe (PR 3) to everything *around* the NoC step: dispatcher
schedules, per-PE aggregation register arrays, out/SPD FIFOs, and
PE-stall state live in struct-of-arrays NumPy buffers, and each cycle's
dispatch -> RU egress -> SPD retire runs as whole-cycle batched array
operations.  The mesh step itself is delegated to the engine selected
by :attr:`~repro.core.config.ScalaGraphConfig.noc_engine`, unchanged.

The engine is **behaviourally identical** to the reference, not merely
statistically similar: every per-cycle decision (dispatch order, offer
order per register column, eviction order, egress/injection order per
PE, SPD retire order, stall handling, idle fast-forwarding) reproduces
the reference exactly, so stats are equal integer for integer and the
computed properties bit for bit.  Two structural facts make this
possible without simulating objects:

* **Dispatch is unconditional** — dispatchers never experience
  backpressure, so each row's whole line schedule is a pure function of
  its queue and can be precomputed once per phase
  (:func:`dispatch_schedule`); the cycle loop then just slices a
  flat edge array.
* **Within a cycle, same-column offers are the only ordered
  interaction** — ranking offers within their ``(pe, column)`` group
  and processing rank rounds in order preserves the reference's
  register-array evolution while each round is one conflict-free
  fancy-indexed pass (see
  :class:`~repro.noc.aggregation.BatchedAggregationArray`).

Selection follows the ``noc_engine`` pattern:
``config.cycle_engine='auto'`` picks the vectorised engine at or above
:data:`AUTO_CYCLE_ENGINE_MIN_NODES` nodes, and a SanitizerError raised
mid-run falls back to the reference engines once (see
:meth:`~repro.core.cycle_sim.CycleAccurateScalaGraph.run`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.profiling import NULL_PROFILER
from repro.errors import ConfigurationError, SimulationError
from repro.noc.aggregation import (
    BatchedAggregationArray,
    aggregation_geometry,
    run_ranks,
)
from repro.noc.fastmesh import make_mesh_network
from repro.noc.topology import MeshTopology

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.algorithms.base import ProgramContext, VertexProgram
    from repro.core.cycle_sim import CycleAccurateScalaGraph, CycleStats
    from repro.graph.csr import CSRGraph

__all__ = [
    "AUTO_CYCLE_ENGINE_MIN_NODES",
    "dispatch_schedule",
    "resolve_cycle_engine",
    "scatter_phase_fast",
]

#: Mesh size at which ``cycle_engine='auto'`` switches to the
#: vectorised engine.  Same threshold as the mesh engines: below it the
#: fixed cost of whole-array operations outweighs the loop savings.
AUTO_CYCLE_ENGINE_MIN_NODES = 64

#: Shared empty PE-index array for scalar-total fast paths.
_EMPTY_PES = np.zeros(0, dtype=np.int64)

#: Engine-twin declaration consumed by the whole-program analyzer
#: (:mod:`repro.analysis.project`).  The reference scatter phase lives
#: inside ``CycleAccurateScalaGraph``, which also owns the
#: engine-agnostic driver loop (iteration control, apply phase, report
#: assembly) — ``reference_scope`` restricts the SIM601 comparison to
#: the parts this module actually replaces.
ENGINE_TWIN = {
    "pair": "cycle-engine",
    "reference": "repro.core.cycle_sim",
    "reference_scope": [
        "CycleAccurateScalaGraph._scatter_phase",
        "_RowDispatcher",
    ],
}

#: Declared dtype contract for the struct-of-arrays PE FIFO state
#: (:class:`_PEFifoArray`).  Audited by SIM604 at every allocation
#: call site, including the reallocation in ``_grow_to``.
BUFFER_DTYPES = {
    "vid": "int64",
    "val": "float64",
    "head": "int64",
    "count": "int64",
}


def resolve_cycle_engine(engine: str, topology: MeshTopology) -> str:
    """Resolve a scatter-engine name (``auto``/``reference``/
    ``vectorized``) to a concrete one, choosing by mesh size for
    ``auto``."""
    name = engine.lower()
    if name == "auto":
        return (
            "vectorized"
            if topology.num_nodes >= AUTO_CYCLE_ENGINE_MIN_NODES
            else "reference"
        )
    if name not in ("reference", "vectorized"):
        raise ConfigurationError(
            f"unknown cycle_engine {engine!r} (auto/reference/vectorized)"
        )
    return name


# ----------------------------------------------------------------------
# Dispatch schedule: the whole phase's line issue, precomputed
# ----------------------------------------------------------------------
def _row_line_counts(
    sizes: Sequence[int], line_width: int, window: int
) -> List[int]:
    """Edges issued per cycle by one row's DU over its vertex queue.

    Replays :meth:`~repro.core.cycle_sim._RowDispatcher.issue_line`
    exactly: each cycle packs up to ``line_width`` edges from up to
    ``window`` distinct vertices; a vertex split by a full line resumes
    at the head next cycle without counting against that line's window.
    """
    counts: List[int] = []
    i = 0
    n = len(sizes)
    rem = int(sizes[0]) if n else 0
    while i < n:
        line = 0
        used = 0
        while i < n and line < line_width and used < window:
            take = min(rem, line_width - line)
            line += take
            rem -= take
            if rem:
                break  # line full mid-vertex; resume next cycle
            i += 1
            used += 1
            if i < n:
                rem = int(sizes[i])
        counts.append(line)
    return counts


def dispatch_schedule(
    sim: "CycleAccurateScalaGraph",
    src: np.ndarray,
    dst: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precompute the phase's entire dispatch as flat arrays.

    Returns ``(edge_order, cycle_offsets, lines_per_cycle)``:
    ``edge_order[cycle_offsets[c]:cycle_offsets[c + 1]]`` are the edge
    indices every row's DU issues in cycle ``c``, in exactly the order
    the reference dispatch loop visits them (rows ascending, each row's
    line in stream order), and ``lines_per_cycle[c]`` counts the
    non-empty lines (one per still-busy row).

    Valid because dispatch is unconditional: lines never stall, so the
    schedule is a pure function of the per-row vertex queues.
    """
    topology = sim.topology
    mapping = sim.mapping
    from repro.mapping.destination_oriented import DestinationOrientedMapping

    group = dst if isinstance(mapping, DestinationOrientedMapping) else src
    order = np.argsort(group, kind="stable")
    sorted_group = group[order]
    boundary = np.concatenate(([True], sorted_group[1:] != sorted_group[:-1]))
    starts = np.flatnonzero(boundary)
    stops = np.concatenate([starts[1:], [order.size]])
    verts = sorted_group[starts]
    vrows = np.asarray(
        topology.rows_of(mapping.home(verts)), dtype=np.int64
    )
    # Group the vertex queues by row, keeping ascending-vertex order
    # within each row (the order the reference fills its dispatchers).
    rorder = np.argsort(vrows, kind="stable")
    row_sorted = vrows[rorder]
    row_boundary = np.concatenate(
        ([True], row_sorted[1:] != row_sorted[:-1])
    )
    row_starts = np.flatnonzero(row_boundary)
    row_stops = np.concatenate([row_starts[1:], [rorder.size]])

    line_width = topology.cols
    window = sim.config.degree_aware_window
    edge_parts: List[np.ndarray] = []
    cycle_parts: List[np.ndarray] = []
    row_parts: List[np.ndarray] = []
    row_lengths: List[int] = []
    for lo, hi in zip(row_starts, row_stops):
        groups = rorder[lo:hi]
        row = int(row_sorted[lo])
        sizes = (stops - starts)[groups]
        counts = np.asarray(
            _row_line_counts(sizes.tolist(), line_width, window),
            dtype=np.int64,
        )
        edge_parts.append(
            np.concatenate([order[starts[g]:stops[g]] for g in groups])
        )
        cycle_parts.append(np.repeat(np.arange(counts.size), counts))
        row_parts.append(np.full(int(sizes.sum()), row, dtype=np.int64))
        row_lengths.append(int(counts.size))

    if not edge_parts:
        empty = np.zeros(0, dtype=np.int64)
        return empty, np.zeros(1, dtype=np.int64), empty
    all_e = np.concatenate(edge_parts)
    all_c = np.concatenate(cycle_parts)
    all_r = np.concatenate(row_parts)
    # Stable by (cycle, row): within one cycle rows dispatch in
    # ascending order, each row's line in stream order.
    perm = np.lexsort((all_r, all_c))
    edge_order = all_e[perm]
    n_cycles = max(row_lengths)
    per_cycle = np.bincount(all_c, minlength=n_cycles)
    cycle_offsets = np.concatenate(
        ([0], np.cumsum(per_cycle))
    ).astype(np.int64)
    lines_per_cycle = np.zeros(n_cycles, dtype=np.int64)
    for length in row_lengths:
        lines_per_cycle[:length] += 1
    return edge_order, cycle_offsets, lines_per_cycle


# ----------------------------------------------------------------------
# Growable per-PE FIFO ring buffers
# ----------------------------------------------------------------------
class _PEFifoArray:
    """One FIFO per PE, stored as shared ring buffers.

    ``vid``/``val`` are ``(num_pes, cap)`` rings with per-PE ``head``
    and ``count``; ``cap`` doubles on demand (compacting every ring to
    offset 0).  All operations are batched over PE index arrays;
    ``append`` preserves the argument order for repeated PEs.
    """

    __slots__ = (
        "num_pes",
        "cap",
        "vid",
        "val",
        "head",
        "count",
        "_vid_flat",
        "_val_flat",
        "_total",
    )

    def __init__(self, num_pes: int, capacity: int = 16) -> None:
        self.num_pes = num_pes
        self.cap = capacity
        self.vid = np.zeros((num_pes, capacity), dtype=np.int64)
        self.val = np.zeros((num_pes, capacity))
        self.head = np.zeros(num_pes, dtype=np.int64)
        self.count = np.zeros(num_pes, dtype=np.int64)
        # Flat views for single-array gathers/scatters (row pe, slot s
        # lives at pe * cap + s); rebuilt on every reallocation.
        self._vid_flat = self.vid.reshape(-1)
        self._val_flat = self.val.reshape(-1)
        # Scalar occupancy mirror of count.sum(), maintained by
        # append/drop so per-cycle emptiness checks cost no reduction.
        self._total = 0

    def total(self) -> int:
        return self._total

    def _grow_to(self, needed: int) -> None:
        # Geometric growth straight from the needed size (next power of
        # two, but never less than one doubling) — no re-loop from the
        # current cap.
        new_cap = max(self.cap * 2, 1 << (int(needed) - 1).bit_length())
        vid = np.zeros((self.num_pes, new_cap), dtype=np.int64)
        val = np.zeros((self.num_pes, new_cap))
        if self.head.any():
            rows = np.arange(self.num_pes)[:, None]
            idx = (
                self.head[:, None] + np.arange(self.cap)[None, :]
            ) % self.cap
            vid[:, : self.cap] = self.vid[rows, idx]
            val[:, : self.cap] = self.val[rows, idx]
            self.head[:] = 0
        else:
            # Every ring already starts at offset 0 (the common growth
            # path: capacity outgrown before any pop) — plain copy, no
            # modular gather.
            vid[:, : self.cap] = self.vid
            val[:, : self.cap] = self.val
        self.vid, self.val = vid, val
        self._vid_flat = vid.reshape(-1)
        self._val_flat = val.reshape(-1)
        self.cap = new_cap

    def append(
        self,
        pes: np.ndarray,
        vids: np.ndarray,
        vals: np.ndarray,
        assume_unique: bool = False,
    ) -> None:
        if pes.size == 0:
            return
        if assume_unique:
            # Caller asserts no repeated PEs (e.g. flatnonzero-derived
            # index sets): touch only the listed rows.
            cnt = self.count.take(pes)
            if int(cnt.max()) >= self.cap:
                self._grow_to(int(cnt.max()) + 1)
                cnt = self.count.take(pes)
            pos = self.head.take(pes)
            pos += cnt
            pos %= self.cap
            idx = pes * self.cap
            idx += pos
            self._vid_flat[idx] = vids
            self._val_flat[idx] = vals
            self.count[pes] = cnt + 1
            self._total += int(pes.size)
            return
        mult = np.bincount(pes, minlength=self.num_pes)
        deepest = int((self.count + mult).max())
        if deepest > self.cap:
            self._grow_to(deepest)
        if pes.size == 1 or int(mult.max()) <= 1:
            # All-unique fast path: no intra-call ordering to resolve.
            pos = (self.head.take(pes) + self.count.take(pes)) % self.cap
            idx = pes * self.cap + pos
            self._vid_flat[idx] = vids
            self._val_flat[idx] = vals
        else:
            order = np.argsort(pes, kind="stable")
            sp = pes[order]
            rank = run_ranks(sp)
            pos = (self.head.take(sp) + self.count.take(sp) + rank) % self.cap
            idx = sp * self.cap + pos
            self._vid_flat[idx] = vids[order]
            self._val_flat[idx] = vals[order]
        self.count += mult
        self._total += int(pes.size)

    def peek(self, pes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        idx = pes * self.cap
        idx += self.head.take(pes)
        return self._vid_flat.take(idx), self._val_flat.take(idx)

    def pop(self, pes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Pop the head of each listed FIFO (PEs must be unique)."""
        v, x = self.peek(pes)
        self.drop(pes)
        return v, x

    def drop(self, pes: np.ndarray) -> None:
        """Advance the head of each listed FIFO without gathering the
        values — for callers that already hold them from :meth:`peek`
        (PEs must be unique)."""
        h = self.head.take(pes)
        h += 1
        h %= self.cap
        self.head[pes] = h
        self.count[pes] -= 1
        self._total -= int(pes.size)


# ----------------------------------------------------------------------
# The vectorised scatter phase
# ----------------------------------------------------------------------
def scatter_phase_fast(
    sim: "CycleAccurateScalaGraph",
    program: "VertexProgram",
    ctx: "ProgramContext",
    graph: "CSRGraph",
    active: np.ndarray,
    props: np.ndarray,
    vtemp: np.ndarray,
    touched_mask: np.ndarray,
    stats: "CycleStats",
    max_cycles: int,
    noc_engine: str,
) -> int:
    """Drop-in replacement for the reference ``_scatter_phase`` —
    identical stats and properties, whole-cycle array operations."""
    from repro.algorithms.reference import gather_frontier_edges

    cfg = sim.config
    topology = sim.topology
    mapping = sim.mapping
    sanitizer = sim.sanitizer
    faults = sim.faults
    num_pes = topology.num_nodes
    coalesced_before = stats.updates_coalesced
    spd_reduces_before = stats.spd_reduces

    src, dst, weights = gather_frontier_edges(graph, active)
    if src.size == 0:
        stats.phase_updates.append(0)
        stats.phase_coalesced.append(0)
        stats.phase_spd_reduces.append(0)
        return 0
    values = np.asarray(
        program.scatter_value(ctx, src, weights, props[src]),
        dtype=np.float64,
    )
    exec_pe = np.asarray(mapping.execution_pe(src, dst), dtype=np.int64)
    reduce_ufunc = program.reduce_ufunc

    edge_order, cycle_offsets, lines_per_cycle = dispatch_schedule(
        sim, src, dst
    )
    d_pe = exec_pe[edge_order]
    d_vtx = np.asarray(dst, dtype=np.int64)[edge_order]
    d_val = values[edge_order]
    n_dispatch_cycles = lines_per_cycle.size

    registers = cfg.aggregation_registers
    agg: Optional[BatchedAggregationArray] = None
    if registers > 0:
        stages, columns = aggregation_geometry(registers)
        agg = BatchedAggregationArray(
            num_pes, stages, columns, reduce_ufunc, sanitizer=sanitizer
        )
    out = _PEFifoArray(num_pes)
    spd = _PEFifoArray(num_pes)
    if sanitizer is not None:
        sanitizer.begin_epoch(f"scatter[{len(stats.scatter_cycles)}]")
    network = make_mesh_network(
        topology,
        buffer_depth=sim.noc_buffer_depth,
        sanitizer=sanitizer,
        engine=noc_engine,
        faults=faults,
        # This engine reads deliveries via delivered_arrays and never
        # touches Packet objects; skip materialising them (fastmesh
        # only — the reference mesh ignores the flag).
        lean_packets=True,
    )
    noc_timer = (sim.profiler or NULL_PROFILER).block_timer(
        "cycle_sim.noc_step"
    )
    # Array-form delivery drain (fastmesh only; the reference mesh
    # falls back to reading Packet attributes).
    delivered_arrays = getattr(network, "delivered_arrays", None)
    delivered_count = (
        network.delivered_count
        if delivered_arrays is not None
        else lambda: len(network.delivered)
    )
    fast_net = delivered_arrays is not None

    # Vertex-home lookup table: one mapping call up front turns the two
    # per-cycle ``mapping.home`` calls into plain array gathers.
    home_all = np.asarray(
        mapping.home(np.arange(graph.num_vertices, dtype=np.int64)),
        dtype=np.int64,
    )
    # Preallocated per-cycle occupancy masks (steady-state cycles reuse
    # these instead of allocating fresh boolean temporaries).
    fifo_has = np.empty(num_pes, dtype=bool)
    pipe_has = np.empty(num_pes, dtype=bool) if agg is not None else None
    spd_has = np.empty(num_pes, dtype=bool)
    emit_sel = np.empty(num_pes, dtype=bool)

    total_edges = int(src.size)
    cycle = 0
    edges_remaining = total_edges
    drained_early = False
    while True:
        # Drain-mode hand-off: once the dispatcher schedule is done and
        # both the egress FIFOs and aggregation registers are empty,
        # stages 1-2 can never act again — nothing refills `out`
        # (dispatch is exhausted, the registers are empty, and SPD
        # traffic never re-enters the egress path) — so the rest of the
        # phase is mesh traffic landing and retiring.  The batched loop
        # below the main one runs exactly stages 3-4 per cycle,
        # cycle-for-cycle identical, freed of the dispatch/egress glue.
        if (
            cycle >= n_dispatch_cycles
            and out.total() == 0
            and (agg is None or agg.total_occupancy() == 0)
        ):
            drained_early = True
            break
        progressed = False
        pe_stall_hit = False
        net_degraded_before = network.stats.degraded_cycles
        stall = faults.pe_stall_mask(cycle) if faults is not None else None

        # 1. Dispatch: every row's line for this cycle, one batch.
        if cycle < n_dispatch_cycles:
            lo = int(cycle_offsets[cycle])
            hi = int(cycle_offsets[cycle + 1])
            if hi > lo:
                progressed = True
                stats.dispatch_lines += int(lines_per_cycle[cycle])
                b_pe = d_pe[lo:hi]
                b_vtx = d_vtx[lo:hi]
                b_val = d_val[lo:hi]
                if agg is None:
                    out.append(b_pe, b_vtx, b_val)
                else:
                    ncoal, ev_pe, ev_vid, ev_val = agg.offer_batch(
                        b_pe, b_vtx, b_val
                    )
                    stats.updates_coalesced += ncoal
                    out.append(ev_pe, ev_vid, ev_val)

        # 2. RU egress: each PE emits one update — FIFO head first,
        #    then pipeline drain once dispatch for the phase is done.
        #    FIFO pops only commit when the mesh accepts the injection,
        #    which is the batched equivalent of the reference's
        #    requeue-at-head on backpressure.
        drain_pipelines = cycle >= n_dispatch_cycles - 1
        out_any = out.total() > 0
        if out_any:
            np.greater(out.count, 0, out=fifo_has)
        else:
            # Scalar-total fast path: every egress FIFO is empty, so
            # the mask compute and nonzero scan below are skipped.
            fifo_has.fill(False)
        if agg is not None:
            np.greater(agg.occ, 0, out=pipe_has)
        if stall is None:
            can_act = None  # all PEs act
            fifo_sel = fifo_has
        else:
            held = fifo_has
            if drain_pipelines and pipe_has is not None:
                held = held | pipe_has
            if bool((stall & held).any()):
                pe_stall_hit = True
            can_act = ~stall
            fifo_sel = fifo_has & can_act
        fifo_pes = fifo_sel.nonzero()[0] if out_any else _EMPTY_PES
        if fifo_pes.size:
            progressed = True
            v_f, x_f = out.peek(fifo_pes)
            t_f = home_all.take(v_f)
            local = t_f == fifo_pes
            if local.any():
                li = local.nonzero()[0]
                local_pes = fifo_pes.take(li)
                out.drop(local_pes)
                spd.append(
                    local_pes,
                    v_f.take(li),
                    x_f.take(li),
                    assume_unique=True,
                )
                ri = np.logical_not(local, out=local).nonzero()[0]
                r_pes = fifo_pes.take(ri)
                t_r, v_r, x_r = t_f.take(ri), v_f.take(ri), x_f.take(ri)
            else:
                r_pes, t_r, v_r, x_r = fifo_pes, t_f, v_f, x_f
            if r_pes.size:
                ok = network.inject_batch(
                    r_pes,
                    t_r,
                    v_r,
                    x_r,
                    assume_unique=True,
                    checked=False,
                )
                if ok.all():
                    out.drop(r_pes)
                elif ok.any():
                    out.drop(r_pes[ok])
        if drain_pipelines and agg is not None:
            np.logical_not(fifo_has, out=emit_sel)
            emit_sel &= pipe_has
            if stall is not None:
                emit_sel &= can_act
            emit_pes = emit_sel.nonzero()[0]
            if emit_pes.size:
                progressed = True
                v_e, x_e = agg.emit_round_robin(emit_pes)
                t_e = home_all.take(v_e)
                local = t_e == emit_pes
                if local.any():
                    li = local.nonzero()[0]
                    spd.append(
                        emit_pes.take(li),
                        v_e.take(li),
                        x_e.take(li),
                        assume_unique=True,
                    )
                    ri = np.logical_not(local, out=local).nonzero()[0]
                    r_pes = emit_pes.take(ri)
                    t_r, v_r, x_r = (
                        t_e.take(ri),
                        v_e.take(ri),
                        x_e.take(ri),
                    )
                else:
                    r_pes, t_r, v_r, x_r = emit_pes, t_e, v_e, x_e
                if r_pes.size:
                    ok = network.inject_batch(
                        r_pes,
                        t_r,
                        v_r,
                        x_r,
                        assume_unique=True,
                        checked=False,
                    )
                    if not ok.all():
                        # Backpressure: the PE's FIFO is empty (that is
                        # what allowed the drain emit), so appending
                        # equals the reference's requeue-at-head.
                        bad = ~ok
                        out.append(
                            r_pes[bad],
                            v_r[bad],
                            x_r[bad],
                            assume_unique=True,
                        )

        # 3. NoC: one router cycle; deliveries feed the SPD FIFOs.
        before = delivered_count()
        with noc_timer:
            network.step()
        n_landed = delivered_count() - before
        if n_landed:
            if delivered_arrays is not None:
                # Each router ejects at most one packet per cycle, so
                # the landed destinations are unique.
                spd.append(*delivered_arrays(before), assume_unique=True)
            else:
                landed = network.delivered[before:]
                spd.append(
                    np.fromiter(
                        (p.dst for p in landed),
                        dtype=np.int64,
                        count=n_landed,
                    ),
                    np.fromiter(
                        (p.vertex for p in landed),
                        dtype=np.int64,
                        count=n_landed,
                    ),
                    np.fromiter(
                        (p.value for p in landed),
                        dtype=np.float64,
                        count=n_landed,
                    ),
                )
        occ_now = (
            network.last_occupancy
            if fast_net
            else network.total_occupancy()
        )
        if n_landed or occ_now:
            progressed = True

        # 4. SPD: one Reduce per slice per cycle.  The popped vertices
        #    are distinct across PEs (each vertex retires only at its
        #    home), so the scatter-reduce below is exact.
        if spd.total():
            np.greater(spd.count, 0, out=spd_has)
            if stall is None:
                retire = spd_has
            else:
                if bool((spd_has & stall).any()):
                    pe_stall_hit = True
                retire = spd_has & ~stall
            retire_pes = retire.nonzero()[0]
        else:
            retire_pes = _EMPTY_PES
        if retire_pes.size:
            rv, rx = spd.pop(retire_pes)
            vtemp[rv] = reduce_ufunc(vtemp.take(rv), rx)
            touched_mask[rv] = True
            stats.spd_reduces += int(retire_pes.size)
            progressed = True

        if faults is not None and (
            pe_stall_hit
            or network.stats.degraded_cycles > net_degraded_before
        ):
            stats.degraded_cycles += 1
        if sanitizer is not None and agg is not None:
            sanitizer.check_aggregation_ledger_arrays(agg, cycle=cycle)

        cycle += 1
        if cycle > max_cycles:
            raise SimulationError(
                f"scatter phase did not drain in {max_cycles} cycles"
            )

        edges_remaining = total_edges - int(
            cycle_offsets[min(cycle, n_dispatch_cycles)]
        )
        if (
            not progressed
            and edges_remaining == 0
            and out.total() == 0
            and (agg is None or agg.total_occupancy() == 0)
            and spd.total() == 0
            and not occ_now
            and not network.in_flight_packets()
        ):
            break

        # Idle-cycle fast-forward (same conditions as the reference: a
        # stalled PE holding work pins the clock to real cycles).
        if not progressed and not pe_stall_hit:
            target = network.next_event_cycle()
            if target is not None and target > network.cycle:
                cycle += network.fast_forward(target)

    # ------------------------------------------------------------------
    # Drain mode: dispatch and egress are provably inert, so each cycle
    # is exactly stage 3 (mesh step + landings) and stage 4 (SPD
    # retire), with the same fault accounting, sanitizer hooks, cycle
    # bookkeeping, and exit condition as the main loop — stats are
    # cycle-for-cycle identical, minus the dead glue.
    # ------------------------------------------------------------------
    while drained_early:
        progressed = False
        pe_stall_hit = False
        net_degraded_before = network.stats.degraded_cycles
        stall = faults.pe_stall_mask(cycle) if faults is not None else None

        before = delivered_count()
        with noc_timer:
            network.step()
        n_landed = delivered_count() - before
        if n_landed:
            if delivered_arrays is not None:
                spd.append(*delivered_arrays(before), assume_unique=True)
            else:
                landed = network.delivered[before:]
                spd.append(
                    np.fromiter(
                        (p.dst for p in landed),
                        dtype=np.int64,
                        count=n_landed,
                    ),
                    np.fromiter(
                        (p.vertex for p in landed),
                        dtype=np.int64,
                        count=n_landed,
                    ),
                    np.fromiter(
                        (p.value for p in landed),
                        dtype=np.float64,
                        count=n_landed,
                    ),
                )
        occ_now = (
            network.last_occupancy
            if fast_net
            else network.total_occupancy()
        )
        if n_landed or occ_now:
            progressed = True

        if spd.total():
            np.greater(spd.count, 0, out=spd_has)
            if stall is None:
                retire = spd_has
            else:
                if bool((spd_has & stall).any()):
                    pe_stall_hit = True
                retire = spd_has & ~stall
            retire_pes = retire.nonzero()[0]
        else:
            retire_pes = _EMPTY_PES
        if retire_pes.size:
            rv, rx = spd.pop(retire_pes)
            vtemp[rv] = reduce_ufunc(vtemp.take(rv), rx)
            touched_mask[rv] = True
            stats.spd_reduces += int(retire_pes.size)
            progressed = True

        if faults is not None and (
            pe_stall_hit
            or network.stats.degraded_cycles > net_degraded_before
        ):
            stats.degraded_cycles += 1
        if sanitizer is not None and agg is not None:
            sanitizer.check_aggregation_ledger_arrays(agg, cycle=cycle)

        cycle += 1
        if cycle > max_cycles:
            raise SimulationError(
                f"scatter phase did not drain in {max_cycles} cycles"
            )
        if (
            not progressed
            and spd.total() == 0
            and not occ_now
            and not network.in_flight_packets()
        ):
            break

        if not progressed and not pe_stall_hit:
            # Idle gap: jump to the mesh's next scheduled event.
            target = network.next_event_cycle()
            if target is not None and target > network.cycle:
                cycle += network.fast_forward(target)
        elif (
            pe_stall_hit
            and faults is not None
            and retire_pes.size == 0
            and occ_now == 0
            and not network.in_flight_packets()
            and network.next_event_cycle() is None
        ):
            # Stall-window fast-forward: the mesh is fully inert (no
            # buffered, in-flight, or pending packets) and every
            # SPD-holding PE sits in a stall window.  All fault masks
            # are constant until the next window boundary, so each
            # intervening cycle would replay exactly this one: no
            # retire, one degraded cycle (stepping an *empty* mesh can
            # never raise fault_seen, so the mesh's own degraded count
            # cannot move).  Jump straight to the boundary.
            boundary = faults.next_boundary_cycle(cycle - 1)
            if boundary is not None and boundary > cycle:
                skipped = boundary - cycle
                cycle = boundary
                stats.degraded_cycles += skipped
                network.fast_forward(network.cycle + skipped)

    stats.updates_processed += total_edges
    stats.noc_hops += network.stats.total_hops
    stats.rerouted_packets += network.stats.rerouted_packets
    phase_coalesced = stats.updates_coalesced - coalesced_before
    phase_spd = stats.spd_reduces - spd_reduces_before
    stats.phase_updates.append(total_edges)
    stats.phase_coalesced.append(phase_coalesced)
    stats.phase_spd_reduces.append(phase_spd)
    if sanitizer is not None:
        in_flight = (
            edges_remaining
            + out.total()
            + spd.total()
            + (agg.total_occupancy() if agg is not None else 0)
            + network.total_occupancy()
            + network.in_flight_packets()
        )
        sanitizer.check_conservation(
            injected=total_edges,
            delivered=phase_spd,
            coalesced=phase_coalesced,
            in_flight=in_flight,
            where="scatter phase",
            cycle=cycle,
        )
        sanitizer.check_spd_accounting(
            spd_reduces=phase_spd,
            updates=total_edges,
            coalesced=phase_coalesced,
            cycle=cycle,
        )
    return cycle
