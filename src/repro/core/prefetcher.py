"""Prefetcher model: off-chip traffic accounting (Section III-A).

Each tile's prefetcher module binds vertex and edge prefetchers to HBM
pseudo channels and streams (a) the active-vertex records (vertex ID +
edge memory address) and (b) the associated edge lists.  Because
ScalaGraph keeps vertex properties on-chip, its off-chip traffic per
iteration is the sequential O(N + M) stream of Table II; the model
converts those bytes to cycles through :class:`~repro.memory.hbm.HBMModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.hbm import HBMModel


@dataclass(frozen=True)
class PhaseTraffic:
    """Off-chip bytes moved during one phase."""

    vertex_bytes: float = 0.0
    edge_bytes: float = 0.0
    writeback_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.vertex_bytes + self.edge_bytes + self.writeback_bytes


class Prefetcher:
    """Streams graph data from HBM and accounts the cycles it takes."""

    def __init__(
        self,
        hbm: HBMModel,
        edge_bytes: int,
        vertex_bytes: int,
    ) -> None:
        self.hbm = hbm
        self.edge_bytes = edge_bytes
        self.vertex_bytes = vertex_bytes

    def scatter_traffic(
        self, num_active: int, num_edges: int, offchip_multiplier: float = 1.0
    ) -> PhaseTraffic:
        """Scatter phase: active-vertex records plus edge stream.

        ``offchip_multiplier`` folds in mapping-specific amplification
        (DOM re-streams per-partition vertex structures: O(N*K + M)).
        """
        return PhaseTraffic(
            vertex_bytes=num_active * self.vertex_bytes * offchip_multiplier,
            edge_bytes=num_edges * self.edge_bytes,
        )

    def apply_traffic(self, num_updates: int) -> PhaseTraffic:
        """Apply phase: write-back of the new active-vertex list."""
        return PhaseTraffic(writeback_bytes=num_updates * self.vertex_bytes)

    def cycles(self, traffic: PhaseTraffic) -> float:
        """Cycles the stream occupies the HBM channels.

        Prefetching hides latency in steady state (explicit prefetching,
        Section III-A), so only bandwidth occupancy is charged; the
        first-access latency is part of the per-phase overhead constant.
        """
        return self.hbm.stream_cycles(traffic.total_bytes)
