"""Tile composition (Section III-A, Figure 7).

A ScalaGraph instance is a set of tiles; each tile owns one private HBM
stack, a prefetcher module (one prefetcher per pseudo channel), a
dispatcher module (one dispatching unit per PE row), and a PE matrix.
The row-oriented mapping treats the tiles' matrices as one logical mesh
with the tiles laid side by side (Section V-C: ROM dispatches edge
workloads to the rows of both tiles), which is how
:class:`~repro.core.config.ScalaGraphConfig.total_cols` is derived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import ScalaGraphConfig
from repro.noc.topology import MeshTopology


@dataclass(frozen=True)
class Tile:
    """One tile's geometry and bindings.

    Attributes:
        index: tile position.
        rows: PE-matrix rows (16 in the paper).
        cols: PE-matrix columns.
        hbm_stack: index of the private HBM stack.
        num_dispatch_units: one DU (VDU + EDU pair) per row.
        num_prefetchers: one per HBM pseudo channel of the stack.
        col_offset: first column of this tile in the logical mesh.
    """

    index: int
    rows: int
    cols: int
    hbm_stack: int
    num_dispatch_units: int
    num_prefetchers: int
    col_offset: int

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def topology(self) -> MeshTopology:
        """The tile's private mesh."""
        return MeshTopology(rows=self.rows, cols=self.cols)


def build_tiles(config: ScalaGraphConfig) -> List[Tile]:
    """Instantiate the tile layout of a configuration."""
    channels_per_stack = config.hbm.pseudo_channels_per_stack
    return [
        Tile(
            index=i,
            rows=config.pe_rows,
            cols=config.pe_cols,
            hbm_stack=i % config.hbm.num_stacks,
            num_dispatch_units=config.pe_rows,
            num_prefetchers=channels_per_stack,
            col_offset=i * config.pe_cols,
        )
        for i in range(config.num_tiles)
    ]
