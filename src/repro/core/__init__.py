"""ScalaGraph core: the paper's accelerator (Sections III and IV).

The top-level entry point is :class:`~repro.core.accelerator.ScalaGraph`:

>>> from repro.core import ScalaGraph, ScalaGraphConfig
>>> from repro.algorithms import PageRank
>>> from repro.graph import load_dataset
>>> accel = ScalaGraph(ScalaGraphConfig(pe_cols=16))   # doctest: +SKIP
>>> report = accel.run(PageRank(), load_dataset("PK")) # doctest: +SKIP
>>> report.gteps                                       # doctest: +SKIP

``ScalaGraph.run`` first executes the program on the functional reference
engine (gold results) and then replays each iteration through the
cycle-approximate timing model: degree-aware dispatch (Section IV-C),
row-oriented mapping with column-link contention (Section IV-A), update
aggregation (Section IV-B), SPD serialisation, HBM bandwidth, and
inter-phase pipelining (Section IV-D).  A detailed cycle-level functional
simulator (:mod:`repro.core.functional`) cross-validates the architecture
on small graphs.
"""

from repro.core.config import ScalaGraphConfig, TimingParams
from repro.core.accelerator import ScalaGraph
from repro.core.profiling import NULL_PROFILER, NullProfiler, Profiler
from repro.core.stats import IterationStats, PhaseCycles, SimulationReport
from repro.core.functional import FunctionalScalaGraph
from repro.core.cycle_sim import CycleAccurateScalaGraph

__all__ = [
    "ScalaGraph",
    "ScalaGraphConfig",
    "TimingParams",
    "IterationStats",
    "PhaseCycles",
    "SimulationReport",
    "FunctionalScalaGraph",
    "CycleAccurateScalaGraph",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
]
