"""ScalaGraph configuration (Sections III-A and V-A).

The paper's flagship configuration is two tiles, each a 16x16 PE matrix
(512 PEs total), each tile owning one private HBM stack, a 6 MB BRAM
scratchpad evenly sliced over all PEs, a 16-register aggregation
pipeline, degree-aware scheduling of up to 16 vertices per dispatch, and
a conservative 250 MHz clock.  Scaling studies vary ``pe_cols`` (32 PEs =
16x1 per tile ... 1,024 PEs = 16x32 per tile, Section V-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.memory.hbm import HBMConfig
from repro.memory.spd import ScratchpadConfig
from repro.models.frequency import Interconnect, max_frequency_mhz


@dataclass(frozen=True)
class TimingParams:
    """Tunable constants of the cycle-approximate timing model.

    These capture second-order effects the paper reports qualitatively;
    each is documented with its source.

    Attributes:
        agg_window_per_register: statistical-coalescing window slots per
            aggregation register.  An update traverses several RUs along
            its column (ROM averages ~5 hops on a 16-row column) and can
            coalesce in each one's register array, so the effective
            residency is a few times the per-RU register count; 4.0
            reproduces the paper's ~50% communication reduction at 16
            registers (Figure 18a).
        noc_link_updates_per_cycle: vertex updates one mesh link moves
            per cycle.  The O(N) wiring budget of the mesh affords wide
            (256-bit, four 8-byte updates) links — this is where the
            mesh spends the area the crossbar spends on N^2 wiring.
            Calibrated so that the row-oriented mapping's NoC is not the
            bottleneck (Figure 20's high utilisation) while the
            source-oriented mapping's is (Figure 17's 2.6x ROM speedup).
        noc_pipeline_latency: extra queueing/turnaround cycles added to
            the average hop latency when charging the per-phase NoC fill
            (Section V-B: ROM averages 5.9-cycle packet latency on a
            16-row column, which is its mean hop count plus ~1).
        phase_overhead_cycles: fixed per-phase control overhead: draining
            the in-flight updates of a 16-row mesh through multi-hop
            routes, the first-access HBM latency (~128 cycles), and
            active-list turnaround.  This is the 'high routing latency'
            cost of the distributed hierarchy the paper cites as the
            reason ScalaGraph-128 gains only 1.2x over GraphDynS-128
            (Section V-B) — it bites exactly when frontiers are small.
        pipelining_efficiency: fraction of the ideal Apply/Scatter
            overlap the inter-phase pipeline achieves (Section IV-D).
        dispatch_efficiency: fraction of dispatcher slots usable in
            steady state (FIFO bubbles, line-boundary effects).
        spd_forwarding_window: back-to-back same-vertex reduces absorbed
            by the SPD port's read-modify-write forwarding registers
            (standard BRAM RMW hazard forwarding) even when the
            aggregation pipeline is disabled — without it a FIFO-only
            design would be implausibly crushed by hot vertices.
    """

    agg_window_per_register: float = 4.0
    noc_link_updates_per_cycle: float = 4.0
    spd_forwarding_window: float = 4.0
    noc_pipeline_latency: float = 2.0
    phase_overhead_cycles: float = 128.0
    pipelining_efficiency: float = 0.9
    dispatch_efficiency: float = 0.95

    def __post_init__(self) -> None:
        if not 0 < self.dispatch_efficiency <= 1:
            raise ConfigurationError("dispatch_efficiency must be in (0, 1]")
        if not 0 <= self.pipelining_efficiency <= 1:
            raise ConfigurationError("pipelining_efficiency must be in [0, 1]")


@dataclass(frozen=True)
class ScalaGraphConfig:
    """Full configuration of one ScalaGraph instance.

    Attributes:
        num_tiles: tiles, each with a private HBM stack (paper: 2).
        pe_rows: rows per tile's PE matrix (fixed at 16 in the paper).
        pe_cols: columns per tile (16 => the 512-PE flagship; scaling
            adds or removes columns, Section V-E).
        frequency_mhz: operating clock; None selects the conservative
            250 MHz the paper uses, capped by the synthesis model.
        mapping: workload-PE mapping ('rom', 'som', or 'dom').
        aggregation_registers: registers in each RU's aggregation
            pipeline (paper default 16; 0 degrades to a FIFO).
        degree_aware_window: max low-degree vertices packed into one
            dispatch line (paper default 16; 1 = baseline scheduler).
        inter_phase_pipelining: overlap Apply with the next Scatter for
            monotonic algorithms (Section IV-D).
        noc_engine: cycle-level mesh simulator implementation —
            'reference' (one Router object per node, the auditable
            golden model), 'vectorized' (struct-of-arrays NumPy engine,
            behaviourally identical), or 'auto' (vectorized at or above
            repro.noc.fastmesh.AUTO_VECTORIZE_MIN_NODES nodes).
        noc_engine_fallback: when a vectorized engine (mesh or scatter)
            trips a SanitizerError mid-run, transparently retry the
            whole run on the reference engines with an
            EngineFallbackWarning instead of killing the experiment
            (graceful degradation; set False to let the error
            propagate, e.g. in engine debugging sessions).
        cycle_engine: scatter-phase implementation of the cycle-accurate
            simulator — 'reference' (per-object Python loops, the
            auditable golden model), 'vectorized' (struct-of-arrays
            NumPy engine over dispatch/aggregation/egress/SPD,
            behaviourally identical; see repro.core.fastsim), or
            'auto' (vectorized at or above
            repro.core.fastsim.AUTO_CYCLE_ENGINE_MIN_NODES nodes).
        hbm: off-chip memory parameters.
        spd: scratchpad parameters.
        edge_bytes: stored bytes per edge (4, Section I).
        vertex_bytes: stored bytes per vertex record.
        timing: second-order timing constants.
    """

    num_tiles: int = 2
    pe_rows: int = 16
    pe_cols: int = 16
    frequency_mhz: Optional[float] = None
    mapping: str = "rom"
    aggregation_registers: int = 16
    degree_aware_window: int = 16
    inter_phase_pipelining: bool = True
    noc_engine: str = "auto"
    noc_engine_fallback: bool = True
    cycle_engine: str = "auto"
    hbm: HBMConfig = field(default_factory=HBMConfig)
    spd: ScratchpadConfig = field(default_factory=ScratchpadConfig)
    edge_bytes: int = 4
    vertex_bytes: int = 8
    timing: TimingParams = field(default_factory=TimingParams)

    def __post_init__(self) -> None:
        if self.num_tiles <= 0:
            raise ConfigurationError("num_tiles must be positive")
        if self.pe_rows <= 0 or self.pe_cols <= 0:
            raise ConfigurationError("PE matrix dimensions must be positive")
        if self.mapping.lower() not in ("rom", "som", "dom", "rom-torus"):
            raise ConfigurationError(
                f"unknown mapping {self.mapping!r} "
                "(rom/som/dom/rom-torus)"
            )
        if self.noc_engine.lower() not in ("auto", "reference", "vectorized"):
            raise ConfigurationError(
                f"unknown noc_engine {self.noc_engine!r} "
                "(auto/reference/vectorized)"
            )
        if self.cycle_engine.lower() not in (
            "auto",
            "reference",
            "vectorized",
        ):
            raise ConfigurationError(
                f"unknown cycle_engine {self.cycle_engine!r} "
                "(auto/reference/vectorized)"
            )
        if self.aggregation_registers < 0:
            raise ConfigurationError("aggregation_registers must be >= 0")
        if self.degree_aware_window <= 0:
            raise ConfigurationError("degree_aware_window must be positive")
        if self.edge_bytes <= 0 or self.vertex_bytes <= 0:
            raise ConfigurationError("record sizes must be positive")
        if self.frequency_mhz is not None and self.frequency_mhz <= 0:
            raise ConfigurationError("frequency must be positive")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def pes_per_tile(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def num_pes(self) -> int:
        return self.num_tiles * self.pes_per_tile

    @property
    def total_cols(self) -> int:
        """Columns of the logical PE matrix with tiles laid side by side
        (the geometry the row-oriented mapping dispatches across:
        Section V-C notes ROM uses the rows of both tiles)."""
        return self.num_tiles * self.pe_cols

    @property
    def interconnect(self) -> Interconnect:
        """The NoC implied by the mapping (torus for 'rom-torus')."""
        if self.mapping.lower() == "rom-torus":
            return Interconnect.TORUS
        return Interconnect.MESH

    @property
    def clock_mhz(self) -> float:
        """Operating clock: the requested one, else the paper's
        conservative 250 MHz bounded by the synthesis model."""
        if self.frequency_mhz is not None:
            return self.frequency_mhz
        return min(250.0, max_frequency_mhz(self.interconnect, self.num_pes))

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6

    def with_pes(self, num_pes: int) -> "ScalaGraphConfig":
        """A copy resized to ``num_pes`` following the paper's scaling
        recipe: 16 rows per tile, columns added one at a time
        (Section V-E: 32 PEs => 16x1 per tile)."""
        per_tile = num_pes // self.num_tiles
        if per_tile * self.num_tiles != num_pes:
            raise ConfigurationError(
                f"{num_pes} PEs do not divide into {self.num_tiles} tiles"
            )
        cols = per_tile // self.pe_rows
        if cols * self.pe_rows != per_tile or cols <= 0:
            raise ConfigurationError(
                f"{per_tile} PEs/tile is not a whole number of "
                f"{self.pe_rows}-PE columns"
            )
        return replace(self, pe_cols=cols)
