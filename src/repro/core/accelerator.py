"""ScalaGraph: the top-level cycle-approximate accelerator model.

``ScalaGraph.run`` executes a vertex program functionally (gold results)
and replays every iteration through the timing model.  Each Scatter
phase's duration is the maximum of four bounds — dispatch/compute
(degree-aware scheduling, Section IV-C), NoC link contention after
aggregation (Sections IV-A/IV-B), SPD reduce serialisation, and HBM
bandwidth — plus fixed pipeline-fill overheads; each Apply phase is
bounded by the busiest SPD slice and the active-list write-back.
Inter-phase pipelining (Section IV-D) overlaps Apply with the next
Scatter for monotonic algorithms on graphs that fit in one partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.algorithms.base import VertexProgram
from repro.algorithms.reference import (
    ReferenceResult,
    gather_frontier_edges,
    run_reference,
)
from repro.core.config import ScalaGraphConfig
from repro.core.dispatcher import (
    apply_compute_cycles,
    pipeline_schedule,
    scatter_compute_cycles,
)
from repro.core.noc_model import apply_noc_service_cycles, scatter_noc_stats
from repro.core.prefetcher import Prefetcher
from repro.core.profiling import NULL_PROFILER, Profiler
from repro.core.stats import IterationStats, PhaseCycles, SimulationReport
from repro.errors import CapacityError
from repro.graph.csr import CSRGraph
from repro.graph.partition import slice_intervals
from repro.mapping import make_mapping
from repro.mapping.destination_oriented import DestinationOrientedMapping
from repro.memory.hbm import HBMModel
from repro.noc.topology import MeshTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultSchedule


@dataclass(frozen=True)
class WorkloadIteration:
    """One iteration's explicit workload for :meth:`ScalaGraph.run_trace`.

    Lets callers drive the timing model with workloads the standard
    push-based reference engine cannot express (e.g. the pull phases of
    direction-optimizing BFS, where the edge set is not the frontier's
    out-edges).

    Attributes:
        active_vertices: vertices whose records stream from HBM.
        edge_src / edge_dst: the edge workloads processed this iteration.
        num_updates: vertices whose property changes (next frontier size).
    """

    active_vertices: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray
    num_updates: int


class ScalaGraph:
    """The ScalaGraph accelerator (Sections III-IV).

    Args:
        config: hardware configuration; defaults to the paper's flagship
            two-tile, 512-PE instance.
        enforce_capacity: raise :class:`~repro.errors.CapacityError` when
            a mapping needs more on-chip storage than the scratchpad has
            (the paper relaxes this only for the Figure 17 DOM study,
            which used 'a cycle-accurate accelerator with a large
            on-chip memory').
        profiler: optional wall-clock profiler; when given, per-phase
            host-time timers and counters are accumulated and attached
            to the report's ``profile`` field.
        faults: optional :class:`~repro.faults.FaultSchedule`.  The
            analytic model has no per-cycle state to fault, so the
            schedule degrades its *resource budgets* instead — HBM
            bandwidth loses the disabled channels and the NoC link
            bandwidth is scaled by the schedule's link availability
            (:meth:`~repro.faults.FaultSchedule.apply_to_config`).  The
            report gains ``degraded_cycles`` (slowdown versus a clean
            twin run), ``fault_seed``, ``hbm_bandwidth_fraction`` and
            ``link_availability`` entries in ``extra``.
    """

    name = "ScalaGraph"

    def __init__(
        self,
        config: Optional[ScalaGraphConfig] = None,
        enforce_capacity: bool = True,
        profiler: Optional[Profiler] = None,
        faults: Optional["FaultSchedule"] = None,
    ) -> None:
        self._clean_config = config or ScalaGraphConfig()
        self.faults = faults
        self.config = (
            faults.apply_to_config(self._clean_config)
            if faults is not None
            else self._clean_config
        )
        self.enforce_capacity = enforce_capacity
        self.profiler = profiler
        self.topology = MeshTopology(
            rows=self.config.pe_rows, cols=self.config.total_cols
        )
        self.mapping = make_mapping(self.config.mapping, self.topology)
        hbm_model = HBMModel(self.config.hbm, self.config.clock_hz)
        self.prefetcher = Prefetcher(
            hbm_model,
            edge_bytes=self.config.edge_bytes,
            vertex_bytes=self.config.vertex_bytes,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        program: VertexProgram,
        graph: CSRGraph,
        max_iterations: Optional[int] = None,
        reference: Optional[ReferenceResult] = None,
    ) -> SimulationReport:
        """Simulate one algorithm run.

        Args:
            program: the vertex program.
            graph: the input graph.
            max_iterations: optional iteration cap.
            reference: a pre-computed functional run to replay (lets
                sweeps share one reference execution).

        Returns:
            A :class:`SimulationReport` carrying the gold properties and
            the timing accounting.
        """
        prof = self.profiler or NULL_PROFILER
        with prof.timer("analytic.reference"):
            ref = reference or run_reference(program, graph, max_iterations)
        with prof.timer("analytic.workload_build"):
            workload = [
                WorkloadIteration(
                    active_vertices=trace.active_vertices,
                    edge_src=(edges := gather_frontier_edges(
                        graph, trace.active_vertices
                    ))[0],
                    edge_dst=edges[1],
                    num_updates=trace.num_updates,
                )
                for trace in ref.iterations
            ]
        return self.run_trace(
            graph,
            workload,
            algorithm=program.name,
            monotonic=program.monotonic,
            properties=ref.properties,
        )

    def run_trace(
        self,
        graph: CSRGraph,
        workload: Sequence[WorkloadIteration],
        algorithm: str = "trace",
        monotonic: bool = False,
        properties: Optional[np.ndarray] = None,
    ) -> SimulationReport:
        """Simulate an explicit per-iteration workload.

        The standard :meth:`run` path derives the workload from a
        reference execution; this entry point accepts arbitrary
        iteration traces (pull-mode BFS phases, replayed logs, synthetic
        stress patterns).

        Args:
            graph: the graph the workload runs over (for partitioning
                and report metadata).
            workload: per-iteration explicit edge sets.
            algorithm: label for the report.
            monotonic: whether inter-phase pipelining is allowed.
            properties: optional gold results to attach.
        """
        cfg = self.config
        prof = self.profiler or NULL_PROFILER
        partitions = self._partitions(graph)

        use_pipelining = (
            cfg.inter_phase_pipelining
            and monotonic
            and len(partitions) == 1
        )
        window = cfg.aggregation_registers * cfg.timing.agg_window_per_register

        scatter_totals: list[float] = []
        apply_totals: list[float] = []
        iteration_stats: list[IterationStats] = []
        compute_cycle_total = 0.0

        for index, item in enumerate(workload):
            active = np.asarray(item.active_vertices, dtype=np.int64)
            src = np.asarray(item.edge_src, dtype=np.int64)
            dst = np.asarray(item.edge_dst, dtype=np.int64)
            scatter_cycles = 0.0
            apply_cycles = 0.0
            messages = hops = coalesced = 0
            offchip = 0.0
            bottleneck = "compute"

            for part in partitions:
                if len(partitions) == 1:
                    src_p, dst_p = src, dst
                else:
                    mask = part.mask(dst)
                    src_p, dst_p = src[mask], dst[mask]
                with prof.timer("analytic.scatter_model"):
                    phase = self._scatter_phase(
                        active, src_p, dst_p, window
                    )
                scatter_cycles += phase["cycles"].total
                compute_cycle_total += phase["cycles"].compute
                messages += phase["noc"].messages
                hops += int(phase["noc"].total_hops)
                coalesced += phase["noc"].coalesced
                offchip += phase["offchip_bytes"]
                bottleneck = phase["cycles"].bottleneck

                with prof.timer("analytic.apply_model"):
                    apply_phase = self._apply_phase(dst_p, item.num_updates)
                apply_cycles += apply_phase["cycles"]
                offchip += apply_phase["offchip_bytes"]

            scatter_totals.append(scatter_cycles)
            apply_totals.append(apply_cycles)
            iteration_stats.append(
                IterationStats(
                    index=index,
                    num_active=int(active.size),
                    num_edges=int(src.size),
                    scatter_cycles=scatter_cycles,
                    apply_cycles=apply_cycles,
                    noc_messages=messages,
                    noc_hops=hops,
                    coalesced_updates=coalesced,
                    offchip_bytes=offchip,
                    scatter_bottleneck=bottleneck,
                )
            )

        total_cycles, overlaps = pipeline_schedule(
            scatter_totals,
            apply_totals,
            enabled=use_pipelining,
            efficiency=cfg.timing.pipelining_efficiency,
        )
        for stats, overlap in zip(iteration_stats, overlaps):
            stats.overlap_cycles = overlap

        from repro.models.energy import accelerator_power_watts

        power = accelerator_power_watts(
            cfg.num_pes, cfg.interconnect, cfg.clock_mhz
        ).total_watts

        extra = {
            "pipelining_used": float(use_pipelining),
            "aggregation_window": float(window),
            "scatter_compute_cycles": compute_cycle_total,
        }
        if self.faults is not None:
            # Slowdown attributable to the faults: re-run the (cheap,
            # analytic) timing model on an identical clean twin and take
            # the cycle delta.  The twin shares this instance's workload
            # so the comparison is exact.
            clean = ScalaGraph(
                self._clean_config, enforce_capacity=self.enforce_capacity
            ).run_trace(
                graph, workload, algorithm=algorithm, monotonic=monotonic
            )
            extra["degraded_cycles"] = max(
                0.0, total_cycles - clean.total_cycles
            )
            extra["fault_seed"] = float(self.faults.seed)
            extra["hbm_bandwidth_fraction"] = (
                self.faults.hbm_bandwidth_fraction
            )
            extra["link_availability"] = self.faults.link_availability

        prof.count("analytic.iterations", len(workload))
        prof.count(
            "analytic.scatter_phases", len(workload) * len(partitions)
        )
        prof.count("analytic.partitions", len(partitions))
        prof.count(
            "analytic.edges_traversed",
            sum(int(np.asarray(w.edge_src).size) for w in workload),
        )

        return SimulationReport(
            accelerator=f"{self.name}-{cfg.num_pes}",
            algorithm=algorithm,
            graph_name=graph.name,
            num_pes=cfg.num_pes,
            frequency_mhz=cfg.clock_mhz,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            total_edges_traversed=sum(
                int(np.asarray(w.edge_src).size) for w in workload
            ),
            total_cycles=total_cycles,
            iterations=iteration_stats,
            properties=properties,
            num_partitions=len(partitions),
            power_watts=power,
            extra=extra,
            profile=(
                self.profiler.to_dict() if self.profiler is not None else None
            ),
        )

    # ------------------------------------------------------------------
    # Phase models
    # ------------------------------------------------------------------
    def _scatter_phase(
        self,
        active: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        window: float,
    ) -> dict:
        cfg = self.config
        timing = cfg.timing
        if src.size == 0:
            from repro.core.noc_model import ScatterNocStats

            return {
                "cycles": PhaseCycles(0, 0, 0, 0, timing.phase_overhead_cycles),
                "noc": ScatterNocStats(0, 0.0, 0, 0.0, 0.0),
                "offchip_bytes": 0.0,
            }

        # Dispatch grouping: ROM/SOM group edges by source vertex (each
        # vertex's edges stream to its home row); DOM groups by
        # destination (per-partition CSR).
        group = (
            dst if isinstance(self.mapping, DestinationOrientedMapping) else src
        )
        vertices, degrees = np.unique(group, return_counts=True)
        rows = self.topology.rows_of(self.mapping.home(vertices))
        compute = scatter_compute_cycles(
            degrees,
            rows,
            num_rows=self.topology.rows,
            line_width=self.topology.cols,
            window=cfg.degree_aware_window,
            dispatch_efficiency=timing.dispatch_efficiency,
        )

        noc = scatter_noc_stats(
            self.mapping,
            src,
            dst,
            window,
            spd_forwarding_window=timing.spd_forwarding_window,
        )
        # Service: the busiest link moves `noc_link_updates_per_cycle`
        # updates per cycle; the phase additionally pays the mapping's
        # average routing latency once (pipeline fill — a property of the
        # route geometry, independent of how much traffic coalesced).
        noc_service = noc.service_cycles / timing.noc_link_updates_per_cycle
        noc_fill = (
            self.mapping.average_route_distance()
            + timing.noc_pipeline_latency
        )

        traffic = self.prefetcher.scatter_traffic(
            num_active=int(active.size),
            num_edges=int(src.size),
            offchip_multiplier=self._offchip_vertex_multiplier(),
        )
        memory = self.prefetcher.cycles(traffic)

        cycles = PhaseCycles(
            compute=compute,
            noc=noc_service + noc_fill,
            spd=noc.spd_service_cycles / cfg.spd.ports_per_slice,
            memory=memory,
            overhead=timing.phase_overhead_cycles,
        )
        return {
            "cycles": cycles,
            "noc": noc,
            "offchip_bytes": traffic.total_bytes,
        }

    def _apply_phase(self, dst: np.ndarray, num_updates: int) -> dict:
        cfg = self.config
        touched = np.unique(dst) if dst.size else dst
        compute = apply_compute_cycles(
            self.mapping.home(touched), self.topology.num_nodes
        )
        noc = apply_noc_service_cycles(self.mapping, num_updates)
        traffic = self.prefetcher.apply_traffic(num_updates)
        memory = self.prefetcher.cycles(traffic)
        cycles = max(compute, noc, memory) + cfg.timing.phase_overhead_cycles
        return {"cycles": cycles, "offchip_bytes": traffic.total_bytes}

    # ------------------------------------------------------------------
    # Capacity / partitioning
    # ------------------------------------------------------------------
    def _partitions(self, graph: CSRGraph):
        cfg = self.config
        if self.enforce_capacity:
            replicas = self.mapping.replica_storage_vertices(graph.num_vertices)
            if replicas and replicas > cfg.spd.capacity_vertices:
                raise CapacityError(
                    f"{self.mapping.name} needs {replicas:,} on-chip vertex "
                    f"replicas but the scratchpad holds "
                    f"{cfg.spd.capacity_vertices:,} (Section IV-A: DOM's "
                    "O(N*K) storage)"
                )
            footprint = (
                graph.num_vertices * cfg.vertex_bytes
                + graph.num_edges * cfg.edge_bytes
            )
            if footprint > cfg.hbm.total_capacity_bytes:
                raise CapacityError(
                    f"graph footprint {footprint:,} B exceeds the "
                    f"{cfg.hbm.total_capacity_bytes:,} B of HBM on the "
                    f"card (Section V-A: two 4 GB stacks)"
                )
        return slice_intervals(graph, cfg.spd.capacity_vertices)

    def _offchip_vertex_multiplier(self) -> float:
        """DOM re-streams per-partition vertex structures: O(N*K)."""
        if isinstance(self.mapping, DestinationOrientedMapping):
            return float(self.mapping.num_pes)
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScalaGraph(pes={self.config.num_pes}, "
            f"mapping={self.config.mapping}, "
            f"clock={self.config.clock_mhz:.0f}MHz)"
        )
