"""Simulation statistics and the run report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class PhaseCycles:
    """Cycle breakdown of one Scatter phase, one bound per mechanism.

    The phase's cycle count is the maximum of the four bounds plus fixed
    overheads — the timing model mirrors the paper's bottleneck analysis
    (Section II-C: on-chip scalability vs off-chip bandwidth).

    Attributes:
        compute: dispatch/GU bound — cycles to issue every edge workload.
        noc: interconnect bound — cycles to move surviving updates over
            the busiest links.
        spd: scratchpad bound — cycles to retire the serialised Reduces
            of the busiest slice.
        memory: off-chip bound — cycles to stream the phase's HBM bytes.
        overhead: fixed per-phase control cost added on top of the
            binding bound (drain, first-access latency, turnaround).
    """

    compute: float
    noc: float
    spd: float
    memory: float
    overhead: float = 0.0

    @property
    def total(self) -> float:
        return max(self.compute, self.noc, self.spd, self.memory) + self.overhead

    @property
    def bottleneck(self) -> str:
        bounds = {
            "compute": self.compute,
            "noc": self.noc,
            "spd": self.spd,
            "memory": self.memory,
        }
        return max(bounds, key=bounds.get)


@dataclass
class IterationStats:
    """Per-iteration accounting."""

    index: int
    num_active: int
    num_edges: int
    scatter_cycles: float
    apply_cycles: float
    overlap_cycles: float = 0.0  # hidden by inter-phase pipelining
    noc_messages: int = 0
    noc_hops: int = 0
    coalesced_updates: int = 0
    offchip_bytes: float = 0.0
    scatter_bottleneck: str = "compute"

    @property
    def cycles(self) -> float:
        return self.scatter_cycles + self.apply_cycles - self.overlap_cycles


@dataclass
class SimulationReport:
    """Result of running one algorithm on one accelerator model.

    The functional outcome (``properties``) comes from the reference
    engine; everything else is the timing model's accounting.
    """

    accelerator: str
    algorithm: str
    graph_name: str
    num_pes: int
    frequency_mhz: float
    num_vertices: int
    num_edges: int
    total_edges_traversed: int
    total_cycles: float
    iterations: List[IterationStats] = field(default_factory=list)
    properties: Optional[np.ndarray] = None
    num_partitions: int = 1
    power_watts: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)
    #: Wall-clock profiling breakdown (``Profiler.to_dict()``); attached
    #: only when the model ran with a profiler, never by default — so
    #: profiled and unprofiled runs of the same cell serialise the same
    #: timing results.
    profile: Optional[Dict] = None
    #: ``properties_summary`` carried over from a serialised report when
    #: the full gold array was not persisted (the result cache path);
    #: ignored whenever ``properties`` is present.
    properties_digest: Optional[Dict] = None

    # ------------------------------------------------------------------
    # Headline metrics
    # ------------------------------------------------------------------
    @property
    def seconds(self) -> float:
        return self.total_cycles / (self.frequency_mhz * 1e6)

    @property
    def gteps(self) -> float:
        """Giga-traversed-edges per second (the Figure 14 metric)."""
        if self.total_cycles == 0:
            return 0.0
        return self.total_edges_traversed / self.seconds / 1e9

    @property
    def pe_utilization(self) -> float:
        """Ideal compute cycles over actual cycles (the Figure 20
        metric): 1.0 means every PE processed an edge every cycle."""
        if self.total_cycles == 0:
            return 0.0
        ideal = self.total_edges_traversed / self.num_pes
        return min(ideal / self.total_cycles, 1.0)

    @property
    def scatter_utilization(self) -> float:
        """PE busy fraction during Scatter compute (the Figure 20
        metric): ideal edge-processing cycles over the cycles the
        dispatch/compute path actually took, excluding memory and NoC
        stall time.  Falls back to :attr:`pe_utilization` when the model
        did not record compute-bound cycles."""
        compute = self.extra.get("scatter_compute_cycles", 0.0)
        if compute <= 0:
            return self.pe_utilization
        ideal = self.total_edges_traversed / self.num_pes
        return min(ideal / compute, 1.0)

    @property
    def energy_joules(self) -> Optional[float]:
        if self.power_watts is None:
            return None
        return self.power_watts * self.seconds

    @property
    def total_noc_messages(self) -> int:
        return sum(i.noc_messages for i in self.iterations)

    @property
    def total_noc_hops(self) -> int:
        return sum(i.noc_hops for i in self.iterations)

    @property
    def total_coalesced(self) -> int:
        return sum(i.coalesced_updates for i in self.iterations)

    @property
    def total_offchip_bytes(self) -> float:
        return sum(i.offchip_bytes for i in self.iterations)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.accelerator} | {self.algorithm} on {self.graph_name}: "
            f"{self.gteps:.2f} GTEPS, {self.total_cycles:,.0f} cycles "
            f"@ {self.frequency_mhz:.0f} MHz, "
            f"util {self.pe_utilization:.1%}, "
            f"{len(self.iterations)} iterations"
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self, include_iterations: bool = True) -> Dict:
        """A JSON-serialisable view of this report.

        Gold properties are summarised (count + checksum) rather than
        embedded; re-run the reference engine to regenerate them.
        """
        data = {
            "accelerator": self.accelerator,
            "algorithm": self.algorithm,
            "graph": self.graph_name,
            "num_pes": self.num_pes,
            "frequency_mhz": self.frequency_mhz,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "total_edges_traversed": self.total_edges_traversed,
            "total_cycles": self.total_cycles,
            "seconds": self.seconds,
            "gteps": self.gteps,
            "pe_utilization": self.pe_utilization,
            "scatter_utilization": self.scatter_utilization,
            "num_partitions": self.num_partitions,
            "power_watts": self.power_watts,
            "energy_joules": self.energy_joules,
            "noc_messages": self.total_noc_messages,
            "noc_hops": self.total_noc_hops,
            "coalesced_updates": self.total_coalesced,
            "offchip_bytes": self.total_offchip_bytes,
            "extra": dict(self.extra),
        }
        if self.profile is not None:
            data["profile"] = self.profile
        if self.properties is not None:
            data["properties_summary"] = {
                "count": int(self.properties.size),
                "finite_sum": float(
                    np.sum(self.properties[np.isfinite(self.properties)])
                ),
            }
        elif self.properties_digest is not None:
            data["properties_summary"] = dict(self.properties_digest)
        if include_iterations:
            data["iterations"] = [
                {
                    "index": it.index,
                    "active": it.num_active,
                    "edges": it.num_edges,
                    "scatter_cycles": it.scatter_cycles,
                    "apply_cycles": it.apply_cycles,
                    "overlap_cycles": it.overlap_cycles,
                    "noc_messages": it.noc_messages,
                    "noc_hops": it.noc_hops,
                    "coalesced": it.coalesced_updates,
                    "offchip_bytes": it.offchip_bytes,
                    "bottleneck": it.scatter_bottleneck,
                }
                for it in self.iterations
            ]
        return data

    def to_json(self, include_iterations: bool = True, **dumps_kwargs) -> str:
        """JSON string of :meth:`to_dict`."""
        import json

        return json.dumps(
            self.to_dict(include_iterations=include_iterations),
            **dumps_kwargs,
        )

    @classmethod
    def from_dict(cls, data: Dict) -> "SimulationReport":
        """Rebuild a report from :meth:`to_dict` output.

        The inverse of :meth:`to_dict` up to the gold ``properties``
        array, which is summarised rather than persisted: the summary is
        kept in :attr:`properties_digest` so a round-tripped report's
        :meth:`to_dict` output matches the original exactly.  Derived
        metrics (``gteps``, ``seconds``, utilisations) are recomputed
        from the stored fields, not trusted from the dict.
        """
        iterations = [
            IterationStats(
                index=int(it["index"]),
                num_active=int(it["active"]),
                num_edges=int(it["edges"]),
                scatter_cycles=it["scatter_cycles"],
                apply_cycles=it["apply_cycles"],
                overlap_cycles=it.get("overlap_cycles", 0.0),
                noc_messages=int(it.get("noc_messages", 0)),
                noc_hops=int(it.get("noc_hops", 0)),
                coalesced_updates=int(it.get("coalesced", 0)),
                offchip_bytes=it.get("offchip_bytes", 0.0),
                scatter_bottleneck=it.get("bottleneck", "compute"),
            )
            for it in data.get("iterations", [])
        ]
        return cls(
            accelerator=data["accelerator"],
            algorithm=data["algorithm"],
            graph_name=data["graph"],
            num_pes=int(data["num_pes"]),
            frequency_mhz=data["frequency_mhz"],
            num_vertices=int(data["num_vertices"]),
            num_edges=int(data["num_edges"]),
            total_edges_traversed=int(data["total_edges_traversed"]),
            total_cycles=data["total_cycles"],
            iterations=iterations,
            num_partitions=int(data.get("num_partitions", 1)),
            power_watts=data.get("power_watts"),
            extra=dict(data.get("extra", {})),
            profile=data.get("profile"),
            properties_digest=data.get("properties_summary"),
        )
