"""Command-line interface: run, compare, sweep, and bench without
writing code.

Examples::

    python -m repro datasets
    python -m repro run -d PK -a pagerank --pes 512
    python -m repro compare -d TW -a bfs
    python -m repro sweep -d OR -a pagerank --pes 32 64 128 256 512
    python -m repro bench -d PK -a bfs --scale-shift -4 --workers 4 --json
    python -m repro lint --format json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.algorithms import ALGORITHMS, make_algorithm, run_reference
from repro.core import (
    CycleAccurateScalaGraph,
    Profiler,
    ScalaGraph,
    ScalaGraphConfig,
)
from repro.experiments import format_table
from repro.experiments.parallel import RetryPolicy, run_matrix_parallel
from repro.experiments.runner import (
    SYSTEM_BUILDERS,
    build_system,
    load_benchmark_graph,
)
from repro.experiments.store import ResultCache
from repro.graph.datasets import DATASETS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ScalaGraph (HPCA 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "-d",
            "--dataset",
            default="PK",
            help=f"dataset code ({', '.join(DATASETS)})",
        )
        p.add_argument(
            "-a",
            "--algorithm",
            default="pagerank",
            choices=sorted(ALGORITHMS),
        )
        p.add_argument(
            "--scale-shift",
            type=int,
            default=0,
            help="log2 size adjustment of the dataset stand-in",
        )
        p.add_argument(
            "--max-iterations", type=int, default=None, metavar="N"
        )

    run_p = sub.add_parser("run", help="run one algorithm on ScalaGraph")
    add_workload_args(run_p)
    run_p.add_argument("--pes", type=int, default=512)
    run_p.add_argument(
        "--mapping",
        default="rom",
        choices=["rom", "som", "dom", "rom-torus"],
    )
    run_p.add_argument("--registers", type=int, default=16,
                       help="aggregation pipeline registers")
    run_p.add_argument("--window", type=int, default=16,
                       help="degree-aware scheduling window")
    run_p.add_argument("--no-pipelining", action="store_true")
    run_p.add_argument("--verbose", "-v", action="store_true",
                       help="per-iteration breakdown")
    run_p.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")

    cmp_p = sub.add_parser(
        "compare", help="run every compared system on one workload"
    )
    add_workload_args(cmp_p)

    sweep_p = sub.add_parser("sweep", help="PE-count scaling sweep")
    add_workload_args(sweep_p)
    sweep_p.add_argument(
        "--pes",
        type=int,
        nargs="+",
        default=[32, 64, 128, 256, 512, 1024],
    )

    bench_p = sub.add_parser(
        "bench",
        help="cached parallel sweep + per-phase profiling of both models",
    )
    bench_p.add_argument(
        "-d",
        "--datasets",
        nargs="+",
        default=["PK"],
        metavar="CODE",
        help=f"dataset codes ({', '.join(DATASETS)})",
    )
    bench_p.add_argument(
        "-a",
        "--algorithms",
        nargs="+",
        default=["bfs"],
        choices=sorted(ALGORITHMS),
    )
    bench_p.add_argument(
        "--systems",
        nargs="+",
        default=list(SYSTEM_BUILDERS),
        choices=list(SYSTEM_BUILDERS),
        metavar="SYSTEM",
    )
    bench_p.add_argument("--scale-shift", type=int, default=0)
    bench_p.add_argument("--max-iterations", type=int, default=None)
    bench_p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sweep (1 = serial, default auto)",
    )
    bench_p.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="result cache directory (default: %(default)s)",
    )
    bench_p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache entirely",
    )
    bench_p.add_argument(
        "--refresh",
        action="store_true",
        help="recompute cached cells and overwrite them",
    )
    bench_p.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per sweep cell; an overdue cell is "
        "cancelled and retried (default: no timeout)",
    )
    bench_p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries for a crashed or timed-out cell (default: "
        "%(default)s)",
    )
    bench_p.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="sweep checkpoint journal; an interrupted sweep re-run "
        "with the same FILE resumes instead of recomputing",
    )
    bench_p.add_argument(
        "--cycle-sim-shift",
        type=int,
        default=-5,
        metavar="N",
        help="extra scale shift for the profiled cycle-sim run "
        "(the cycle-level tile simulator needs small graphs)",
    )
    bench_p.add_argument(
        "--profile-top",
        type=int,
        default=None,
        metavar="N",
        help="print only the N most expensive profiler blocks per "
        "model (sorted by total wall-clock, default: all, in name "
        "order)",
    )
    bench_p.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable summary (timers, counters, "
        "cache stats, per-cell metrics) as JSON",
    )
    bench_p.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the JSON summary to FILE",
    )

    faults_p = sub.add_parser(
        "faults",
        help="replay a seeded fault schedule on both mesh engines",
        description="Build a deterministic fault schedule "
        "(repro.faults), drain the same traffic through the reference "
        "and vectorized mesh engines twice each, and verify that the "
        "fault replay is bit-identical across repetitions and engines. "
        "Exits 1 on any divergence.",
    )
    faults_p.add_argument("--rows", type=int, default=8)
    faults_p.add_argument("--cols", type=int, default=8)
    faults_p.add_argument("--packets", type=int, default=512)
    faults_p.add_argument(
        "--seed", type=int, default=0, help="fault schedule seed"
    )
    faults_p.add_argument("--link-outages", type=int, default=3)
    faults_p.add_argument("--fifo-stalls", type=int, default=3)
    faults_p.add_argument(
        "--horizon",
        type=int,
        default=32,
        help="cycle window fault start times are drawn from; keep it "
        "within the drain time so outages overlap live traffic "
        "(default: %(default)s)",
    )
    faults_p.add_argument(
        "--json",
        action="store_true",
        help="emit the replay summary as JSON",
    )

    lint_p = sub.add_parser(
        "lint",
        help="repo-specific static analysis (simlint)",
        description="Run the simlint rules (determinism, unit "
        "discipline, accounting hygiene) over Python sources; with "
        "--project, also the SIM6xx whole-program rules (engine-twin "
        "parity, config-knob flow, dtype contracts). Exits 2 when any "
        "error-severity finding survives, 1 for warnings only, 0 when "
        "clean.",
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=None,
        metavar="PATH",
        help="files/directories to lint (default: the repro package)",
    )
    lint_p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="format_",
        help="report format (default: text)",
    )
    lint_p.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    lint_p.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    lint_p.add_argument(
        "--project",
        action="store_true",
        help="also run the whole-program SIM6xx analysis over the "
        "package (engine twins, config knobs, stats conservation, "
        "dtype contracts)",
    )
    lint_p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="accepted-findings baseline for --project (default: "
        "./analysis-baseline.json when present)",
    )
    lint_p.add_argument(
        "--tests-dir",
        default=None,
        metavar="DIR",
        help="assertion roots for the SIM603 conservation rule "
        "(default: ./tests when present)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the sweep service daemon",
        description="Start the long-lived sweep daemon: a local "
        "HTTP/JSON service that content-addresses submissions against "
        "the shared result cache, schedules them over a crash-isolated "
        "worker pool with SLO deadlines and jittered retries, sheds "
        "load explicitly when its admission queue fills, degrades "
        "broken config families via per-family circuit breakers, and "
        "drains gracefully on SIGTERM. See docs/SERVICE.md.",
    )
    serve_p.add_argument(
        "--state-dir",
        required=True,
        metavar="DIR",
        help="durable state root (journal, result cache, endpoint file)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (0 = ephemeral, published in the endpoint file)",
    )
    serve_p.add_argument("--workers", type=int, default=2)
    serve_p.add_argument(
        "--cell-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="wall-clock budget per cell attempt",
    )
    serve_p.add_argument("--max-attempts", type=int, default=3)
    serve_p.add_argument(
        "--backoff-base", type=float, default=0.05, metavar="SECONDS"
    )
    serve_p.add_argument(
        "--backoff-cap", type=float, default=1.0, metavar="SECONDS"
    )
    serve_p.add_argument("--queue-capacity", type=int, default=64)
    serve_p.add_argument("--max-clients", type=int, default=16)
    serve_p.add_argument("--breaker-threshold", type=int, default=3)
    serve_p.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS"
    )
    serve_p.add_argument("--seed", type=int, default=0)

    submit_p = sub.add_parser(
        "submit",
        help="submit a sweep to a running daemon",
        description="Submit one sweep request to a daemon started with "
        "`repro serve` (discovered through the state dir's endpoint "
        "file), then wait, stream, or detach.",
    )
    submit_p.add_argument(
        "--state-dir",
        required=True,
        metavar="DIR",
        help="the daemon's state dir (endpoint discovery)",
    )
    submit_p.add_argument("--client", default="cli", help="client id")
    submit_p.add_argument(
        "-d", "--datasets", nargs="+", default=["PK"], metavar="NAME"
    )
    submit_p.add_argument(
        "-a", "--algorithms", nargs="+", default=["bfs"], metavar="NAME"
    )
    submit_p.add_argument(
        "-s",
        "--systems",
        nargs="+",
        default=["ScalaGraph-512"],
        metavar="NAME",
    )
    submit_p.add_argument("--scale-shift", type=int, default=0)
    submit_p.add_argument("--max-iterations", type=int, default=None)
    submit_p.add_argument(
        "--fidelity", choices=["analytic", "cycle"], default="analytic"
    )
    submit_p.add_argument("--fault-seed", type=int, default=None)
    submit_p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="SLO budget; past it remaining cells degrade",
    )
    submit_p.add_argument("--tag", default="")
    submit_p.add_argument(
        "--stream",
        action="store_true",
        help="stream results as JSONL instead of waiting for the "
        "final status",
    )
    submit_p.add_argument(
        "--no-wait",
        action="store_true",
        help="print the admission status and detach",
    )

    soak_p = sub.add_parser(
        "soak",
        help="chaos soak a daemon (boots its own)",
        description="Boot a daemon with chaos hooks armed, replay a "
        "fault-seeded workload with a worker SIGKILL, a breaker trip, "
        "a blown deadline, and (by default) a SIGKILL+restart of the "
        "daemon itself, then audit the journal for zero lost or "
        "duplicated requests and a clean SIGTERM drain. Exits 0 only "
        "when every property holds.",
    )
    soak_p.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="state dir for the soak daemon (default: a fresh tempdir)",
    )
    soak_p.add_argument("--seed", type=int, default=0)
    soak_p.add_argument(
        "--no-kill",
        action="store_true",
        help="skip the daemon SIGKILL + restart phase",
    )
    soak_p.add_argument("--extra-requests", type=int, default=3)
    soak_p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the full audit report as JSON",
    )

    sub.add_parser("datasets", help="list the dataset registry")
    return parser


def cmd_run(args: argparse.Namespace, out) -> int:
    graph = load_benchmark_graph(
        args.dataset, args.algorithm, args.scale_shift
    )
    program = make_algorithm(args.algorithm)
    config = ScalaGraphConfig(
        mapping=args.mapping,
        aggregation_registers=args.registers,
        degree_aware_window=args.window,
        inter_phase_pipelining=not args.no_pipelining,
    ).with_pes(args.pes)
    report = ScalaGraph(config, enforce_capacity=(args.mapping != "dom")).run(
        program, graph, max_iterations=args.max_iterations
    )
    if args.json:
        print(report.to_json(indent=2), file=out)
        return 0
    print(report.summary(), file=out)
    print(
        f"  partitions={report.num_partitions} "
        f"noc_messages={report.total_noc_messages:,} "
        f"coalesced={report.total_coalesced:,} "
        f"offchip={report.total_offchip_bytes / 1e6:.1f} MB "
        f"power={report.power_watts:.1f} W "
        f"energy={report.energy_joules * 1e3:.2f} mJ",
        file=out,
    )
    if args.verbose:
        rows = [
            [
                it.index,
                it.num_active,
                it.num_edges,
                it.scatter_cycles,
                it.apply_cycles,
                it.overlap_cycles,
                it.scatter_bottleneck,
            ]
            for it in report.iterations
        ]
        print(
            format_table(
                [
                    "iter",
                    "active",
                    "edges",
                    "scatter cyc",
                    "apply cyc",
                    "overlap",
                    "bottleneck",
                ],
                rows,
                float_fmt="{:.0f}",
            ),
            file=out,
        )
    return 0


def cmd_compare(args: argparse.Namespace, out) -> int:
    graph = load_benchmark_graph(
        args.dataset, args.algorithm, args.scale_shift
    )
    program = make_algorithm(args.algorithm)
    reference = run_reference(program, graph, args.max_iterations)
    rows = []
    for label in SYSTEM_BUILDERS:
        report = build_system(label).run(
            program, graph, reference=reference
        )
        rows.append(
            [
                label,
                report.gteps,
                f"{report.frequency_mhz:.0f}",
                f"{report.pe_utilization:.1%}",
                report.energy_joules * 1e3,
            ]
        )
    print(
        format_table(
            ["System", "GTEPS", "MHz", "util", "energy (mJ)"],
            rows,
            title=f"{args.algorithm} on {graph.name} "
            f"({graph.num_edges:,} edges)",
        ),
        file=out,
    )
    return 0


def cmd_sweep(args: argparse.Namespace, out) -> int:
    graph = load_benchmark_graph(
        args.dataset, args.algorithm, args.scale_shift
    )
    program = make_algorithm(args.algorithm)
    reference = run_reference(program, graph, args.max_iterations)
    rows = []
    for pes in args.pes:
        report = ScalaGraph(ScalaGraphConfig().with_pes(pes)).run(
            program, graph, reference=reference
        )
        rows.append(
            [pes, report.gteps, f"{report.pe_utilization:.1%}"]
        )
    print(
        format_table(
            ["PEs", "GTEPS", "util"],
            rows,
            title=f"ScalaGraph scaling: {args.algorithm} on {graph.name}",
        ),
        file=out,
    )
    return 0


def _probe_noc_engines(
    rows: int = 8, cols: int = 8, packets: int = 512, seed: int = 0
) -> dict:
    """Time one uniform-random drain on each mesh engine.

    A small in-process rendition of ``benchmarks/bench_noc_engine_speed``
    so ``repro bench --json`` always carries a current reference-vs-
    vectorized cycles/sec comparison (the full artefact lives in
    ``BENCH_PR3.json``).  Both engines must agree on the cycle count —
    a cheap standing equivalence probe.
    """
    from repro.noc import MeshTopology, Packet, make_mesh_network
    from repro.noc.patterns import generate

    topology = MeshTopology(rows, cols)
    src, dst = generate("uniform", topology, packets, seed=seed)
    probe = {
        "mesh": f"{rows}x{cols}",
        "packets": packets,
        "seed": seed,
        "engines": {},
    }
    cycles_seen = set()
    for engine in ("reference", "vectorized"):
        network = make_mesh_network(topology, engine=engine)
        for i, (s, d) in enumerate(zip(src.tolist(), dst.tolist())):
            network.schedule(
                Packet(src=s, dst=d, vertex=i, injected_cycle=0)
            )
        start = time.perf_counter()
        stats = network.run_until_drained()
        elapsed = time.perf_counter() - start
        cycles_seen.add(stats.cycles)
        probe["engines"][engine] = {
            "cycles": stats.cycles,
            "seconds": elapsed,
            "cycles_per_second": stats.cycles / elapsed if elapsed else 0.0,
        }
    probe["cycles_agree"] = len(cycles_seen) == 1
    ref = probe["engines"]["reference"]["cycles_per_second"]
    vec = probe["engines"]["vectorized"]["cycles_per_second"]
    probe["speedup"] = vec / ref if ref else 0.0
    return probe


def _probe_cycle_engines(
    rows: int = 8, cols: int = 8, scale: int = 6, seed: int = 3
) -> dict:
    """Time one end-to-end cycle-sim run on each scatter-phase engine.

    The cycle-engine counterpart of :func:`_probe_noc_engines`: a small
    in-process rendition of ``benchmarks/bench_cycle_engine_speed`` (the
    full artefact lives in ``BENCH_PR6.json``).  Both engines must agree
    on total cycles — a cheap standing equivalence probe.
    """
    from repro.algorithms import make_algorithm
    from repro.core.cycle_sim import CycleAccurateScalaGraph
    from repro.graph.generators import rmat_graph

    graph = rmat_graph(scale, edge_factor=8, seed=seed)
    probe = {
        "mesh": f"{rows}x{cols}",
        "graph": f"rmat(scale={scale}, edge_factor=8, seed={seed})",
        "algorithm": "pagerank(max_iters=2)",
        "engines": {},
    }
    cycles_seen = set()
    for engine in ("reference", "vectorized"):
        config = ScalaGraphConfig(
            num_tiles=1,
            pe_rows=rows,
            pe_cols=cols,
            aggregation_registers=16,
            cycle_engine=engine,
        )
        sim = CycleAccurateScalaGraph(config)
        program = make_algorithm("pagerank", max_iters=2)
        start = time.perf_counter()
        result = sim.run(program, graph)
        elapsed = time.perf_counter() - start
        cycles_seen.add(result.stats.total_cycles)
        probe["engines"][engine] = {
            "cycles": result.stats.total_cycles,
            "seconds": elapsed,
            "cycles_per_second": (
                result.stats.total_cycles / elapsed if elapsed else 0.0
            ),
        }
    probe["cycles_agree"] = len(cycles_seen) == 1
    ref = probe["engines"]["reference"]["cycles_per_second"]
    vec = probe["engines"]["vectorized"]["cycles_per_second"]
    probe["speedup"] = vec / ref if ref else 0.0
    return probe


def _fault_replay(
    rows: int,
    cols: int,
    packets: int,
    fault_config,
    traffic_seed: int = 0,
) -> dict:
    """Drain the same traffic through both engines twice each under one
    seeded fault schedule; report per-engine stats and agreement."""
    from repro.faults import FaultSchedule
    from repro.noc import MeshTopology, Packet, make_mesh_network
    from repro.noc.patterns import generate

    topology = MeshTopology(rows, cols)
    src, dst = generate("uniform", topology, packets, seed=traffic_seed)
    schedule = FaultSchedule(topology, fault_config)
    replay = {
        "schema": "repro-faults/1",
        "mesh": f"{rows}x{cols}",
        "packets": packets,
        "digest": schedule.digest(),
        "schedule": schedule.describe(),
        "engines": {},
    }
    fingerprints = {}
    for engine in ("reference", "vectorized"):
        runs = []
        for _ in range(2):
            faults = FaultSchedule(topology, fault_config)
            network = make_mesh_network(
                topology, engine=engine, faults=faults
            )
            for i, (s, d) in enumerate(zip(src.tolist(), dst.tolist())):
                network.schedule(
                    Packet(src=s, dst=d, vertex=i, injected_cycle=0)
                )
            stats = network.run_until_drained()
            runs.append(
                {
                    "digest": faults.digest(),
                    "cycles": stats.cycles,
                    "delivered": stats.delivered,
                    "total_hops": stats.total_hops,
                    "total_latency": stats.total_latency,
                    "degraded_cycles": stats.degraded_cycles,
                    "rerouted_packets": stats.rerouted_packets,
                }
            )
        replay["engines"][engine] = runs[0]
        replay["engines"][engine]["deterministic"] = runs[0] == runs[1]
        fingerprints[engine] = runs[0]
    replay["deterministic"] = all(
        entry["deterministic"] for entry in replay["engines"].values()
    )
    replay["engines_agree"] = (
        fingerprints["reference"] == fingerprints["vectorized"]
    )
    replay["ok"] = replay["deterministic"] and replay["engines_agree"]
    return replay


def _bench_fault_probe() -> dict:
    """Small standing fault-equivalence probe for ``repro bench``: a
    seeded schedule on an 8x8 mesh must replay identically on both
    engines (true fault metrics, not the analytic derate)."""
    from repro.faults import FaultConfig

    return _fault_replay(
        rows=8,
        cols=8,
        packets=256,
        fault_config=FaultConfig(
            seed=0, link_outages=2, fifo_stalls=2, horizon=16
        ),
    )


def cmd_faults(args: argparse.Namespace, out) -> int:
    """Fault-replay determinism gate: exit 1 on any divergence."""
    from repro.faults import FaultConfig

    replay = _fault_replay(
        args.rows,
        args.cols,
        args.packets,
        FaultConfig(
            seed=args.seed,
            link_outages=args.link_outages,
            fifo_stalls=args.fifo_stalls,
            horizon=args.horizon,
        ),
    )
    if args.json:
        print(json.dumps(replay, indent=2), file=out)
    else:
        ref = replay["engines"]["reference"]
        print(
            f"fault replay on {replay['mesh']} "
            f"({replay['packets']} packets, "
            f"schedule digest {replay['digest'][:12]}):",
            file=out,
        )
        print(
            f"  cycles {ref['cycles']}, delivered {ref['delivered']}, "
            f"degraded_cycles {ref['degraded_cycles']}, "
            f"rerouted_packets {ref['rerouted_packets']}",
            file=out,
        )
        print(
            "  deterministic: "
            f"{'yes' if replay['deterministic'] else 'NO'}; "
            "engines agree: "
            f"{'yes' if replay['engines_agree'] else 'NO'}",
            file=out,
        )
    return 0 if replay["ok"] else 1


def cmd_bench(args: argparse.Namespace, out) -> int:
    """Cached parallel sweep plus per-phase profiling of both models.

    The JSON summary is the machine-readable artefact benchmark
    trajectories consume: per-cell headline metrics, cache hit/miss
    accounting, and the named wall-clock timers/counters of the
    analytic model and the cycle simulator.
    """
    wall_start = time.perf_counter()
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    policy = RetryPolicy(
        cell_timeout=args.cell_timeout, max_retries=args.max_retries
    )
    matrix = run_matrix_parallel(
        graphs=args.datasets,
        algorithms=args.algorithms,
        systems=args.systems,
        scale_shift=args.scale_shift,
        max_iterations=args.max_iterations,
        max_workers=args.workers,
        cache=cache,
        refresh=args.refresh,
        policy=policy,
        checkpoint=args.checkpoint,
    )

    # Profile one representative workload through each model.  The
    # profiled runs are separate from the sweep (profiling is opt-in so
    # cached and fresh sweep cells stay byte-identical).
    dataset, algorithm = args.datasets[0], args.algorithms[0]
    program = make_algorithm(algorithm)

    analytic_prof = Profiler()
    graph = load_benchmark_graph(dataset, algorithm, args.scale_shift)
    analytic_report = ScalaGraph(
        ScalaGraphConfig(), profiler=analytic_prof
    ).run(program, graph, max_iterations=args.max_iterations)

    cycle_prof = Profiler()
    cycle_shift = args.scale_shift + args.cycle_sim_shift
    cycle_graph = load_benchmark_graph(dataset, algorithm, cycle_shift)
    cycle_result = CycleAccurateScalaGraph(
        ScalaGraphConfig(num_tiles=1, pe_rows=4, pe_cols=4),
        profiler=cycle_prof,
    ).run(program, cycle_graph, max_iterations=args.max_iterations)

    summary = {
        "schema": "repro-bench/1",
        "wall_seconds": time.perf_counter() - wall_start,
        "sweep": {
            "datasets": list(args.datasets),
            "algorithms": list(args.algorithms),
            "systems": list(args.systems),
            "scale_shift": args.scale_shift,
            "max_iterations": args.max_iterations,
            "workers": args.workers,
            "cell_timeout": args.cell_timeout,
            "max_retries": args.max_retries,
            "checkpoint": args.checkpoint,
            "cells": [
                {
                    "graph": g,
                    "algorithm": a,
                    "system": s,
                    "gteps": report.gteps,
                    "total_cycles": report.total_cycles,
                    "pe_utilization": report.pe_utilization,
                }
                for (g, a, s), report in matrix.reports.items()
            ],
        },
        "cache": (
            {"enabled": False}
            if cache is None
            else {
                "enabled": True,
                "dir": str(cache.root),
                "model_version": cache.model_version,
                **cache.stats.to_dict(),
            }
        ),
        "profiles": {
            "analytic": analytic_report.profile,
            "cycle_sim": cycle_result.profile,
        },
        "cycle_sim": {
            "graph": cycle_graph.name,
            "num_edges": cycle_graph.num_edges,
            "total_cycles": cycle_result.stats.total_cycles,
            "iterations": cycle_result.stats.iterations,
            "spd_reduces": cycle_result.stats.spd_reduces,
            "updates_coalesced": cycle_result.stats.updates_coalesced,
        },
        "noc_engine_probe": _probe_noc_engines(),
        "cycle_engine_probe": _probe_cycle_engines(),
        "fault_probe": _bench_fault_probe(),
    }

    text = json.dumps(summary, indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    if args.json:
        print(text, file=out)
        return 0

    rows = [
        [g, a, s, cell.gteps, f"{cell.total_cycles:,.0f}"]
        for (g, a, s), cell in matrix.reports.items()
    ]
    print(
        format_table(
            ["Graph", "Algorithm", "System", "GTEPS", "cycles"],
            rows,
            title="Sweep (parallel cached runner)",
        ),
        file=out,
    )
    if cache is not None:
        print(
            f"cache: {cache.stats.hits} hits, {cache.stats.misses} misses, "
            f"{cache.stats.stores} stored ({cache.root})",
            file=out,
        )
    for label, profile in summary["profiles"].items():
        timers = list(profile["timers"].items())
        if args.profile_top is not None:
            # Hot-spot view: most expensive blocks first, truncated.
            timers.sort(
                key=lambda item: item[1]["total_seconds"], reverse=True
            )
            shown, timers = timers[:args.profile_top], timers
            hidden = len(timers) - len(shown)
            timers = shown
            title = f"{label} profile (top {len(shown)}"
            title += f" of {len(shown) + hidden}):" if hidden else "):"
        else:
            title = f"{label} profile:"
        print(f"\n{title}", file=out)
        for name, entry in timers:
            print(
                f"  {name:32s} {entry['calls']:>8d} calls "
                f"{entry['total_seconds'] * 1e3:>10.2f} ms",
                file=out,
            )
    probe = summary["noc_engine_probe"]
    print(
        f"\nnoc engines ({probe['mesh']}, {probe['packets']} packets): "
        f"reference "
        f"{probe['engines']['reference']['cycles_per_second']:,.0f} cyc/s, "
        f"vectorized "
        f"{probe['engines']['vectorized']['cycles_per_second']:,.0f} cyc/s "
        f"({probe['speedup']:.1f}x)",
        file=out,
    )
    cprobe = summary["cycle_engine_probe"]
    print(
        f"cycle engines ({cprobe['mesh']}, {cprobe['graph']}): "
        f"reference "
        f"{cprobe['engines']['reference']['cycles_per_second']:,.0f} cyc/s, "
        f"vectorized "
        f"{cprobe['engines']['vectorized']['cycles_per_second']:,.0f} cyc/s "
        f"({cprobe['speedup']:.1f}x, cycles agree: "
        f"{'yes' if cprobe['cycles_agree'] else 'NO'})",
        file=out,
    )
    fault_probe = summary["fault_probe"]
    print(
        f"fault replay ({fault_probe['mesh']}): "
        f"degraded_cycles "
        f"{fault_probe['engines']['reference']['degraded_cycles']}, "
        f"rerouted_packets "
        f"{fault_probe['engines']['reference']['rerouted_packets']}, "
        f"engines agree: {'yes' if fault_probe['ok'] else 'NO'}",
        file=out,
    )
    print(f"\nwall time: {summary['wall_seconds']:.2f} s", file=out)
    return 0


def cmd_lint(args: argparse.Namespace, out) -> int:
    """Static analysis gate.

    Exit codes: 2 when any error-severity finding survives suppression
    and baseline, 1 when only warnings survive, 0 when clean.
    """
    from pathlib import Path

    import repro
    from repro.analysis import (
        all_rules,
        lint_paths,
        render_json,
        render_text,
    )
    from repro.analysis.project import (
        Baseline,
        all_project_rules,
        analyze_project,
        find_project_rule,
    )

    if args.list_rules:
        rows = [
            [rule.rule_id, rule.severity.value, rule.description]
            for rule in all_rules()
        ] + [
            [rule.rule_id, rule.severity.value, rule.description]
            for rule in all_project_rules()
        ]
        print(
            format_table(["Rule", "Severity", "Description"], rows,
                         title="simlint rules (SIM6xx need --project)"),
            file=out,
        )
        return 0

    paths = (
        [Path(p) for p in args.paths]
        if args.paths
        else [Path(repro.__file__).parent]
    )
    select = (
        [r.strip() for r in args.select.split(",") if r.strip()]
        if args.select
        else None
    )
    file_select = None
    project_select = None
    if select is not None:
        file_select = [
            r for r in select if find_project_rule(r) is None
        ]
        project_select = [
            r for r in select if find_project_rule(r) is not None
        ]
    keep_suppressed = args.format_ == "json"
    findings, files_checked = lint_paths(
        paths, select=file_select, keep_suppressed=keep_suppressed
    )
    project_summary = None
    if args.project:
        package_root = paths[0]
        if not package_root.is_dir():
            package_root = package_root.parent
        baseline = None
        baseline_path = (
            Path(args.baseline)
            if args.baseline
            else Path("analysis-baseline.json")
        )
        if baseline_path.exists():
            baseline = Baseline.from_file(baseline_path)
        elif args.baseline:
            print(f"error: baseline {baseline_path} not found", file=out)
            return 2
        tests_dir = (
            Path(args.tests_dir) if args.tests_dir else Path("tests")
        )
        assertion_roots = [tests_dir] if tests_dir.exists() else []
        report = analyze_project(
            package_root,
            assertion_roots=assertion_roots,
            baseline=baseline,
            select=project_select,
        )
        findings = findings + report.findings
        if keep_suppressed:
            findings = findings + report.baselined
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        project_summary = report.summary()
    if args.format_ == "json":
        print(
            render_json(findings, files_checked, project=project_summary),
            file=out,
        )
    else:
        print(render_text(findings, files_checked), file=out)
        if project_summary is not None:
            print(
                "project analysis: "
                f"{project_summary['modules_checked']} module(s), "
                f"{project_summary['num_findings']} finding(s), "
                f"{project_summary['num_baselined']} baselined",
                file=out,
            )
    active = [f for f in findings if not f.suppressed]
    if any(f.severity == "error" for f in active):
        return 2
    return 1 if active else 0


def cmd_datasets(args: argparse.Namespace, out) -> int:
    rows = [
        [
            spec.key,
            spec.full_name,
            f"{spec.paper_vertices:,}",
            f"{spec.paper_edges:,}",
            spec.standin_vertices,
            spec.standin_edges,
            spec.description,
        ]
        for spec in DATASETS.values()
    ]
    print(
        format_table(
            [
                "Code",
                "Name",
                "|V| paper",
                "|E| paper",
                "|V| stand-in",
                "|E| stand-in",
                "Description",
            ],
            rows,
            title="Dataset registry (Tables I/III)",
        ),
        file=out,
    )
    return 0


def cmd_serve(args: argparse.Namespace, out) -> int:
    """Run the sweep daemon until SIGTERM/SIGINT."""
    import asyncio

    from repro.service.scheduler import ServicePolicy
    from repro.service.server import ServiceSettings, serve

    policy = ServicePolicy(
        workers=args.workers,
        cell_timeout_s=args.cell_timeout,
        max_attempts=args.max_attempts,
        backoff_base_s=args.backoff_base,
        backoff_cap_s=args.backoff_cap,
        queue_capacity=args.queue_capacity,
        max_clients=args.max_clients,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        seed=args.seed,
    )

    def announce(endpoint: dict) -> None:
        print(json.dumps({"serving": endpoint}), file=out, flush=True)

    return asyncio.run(
        serve(
            ServiceSettings(
                state_dir=args.state_dir, host=args.host, port=args.port
            ),
            policy=policy,
            notify=announce,
        )
    )


def cmd_submit(args: argparse.Namespace, out) -> int:
    """Submit one sweep to a running daemon; wait, stream, or detach."""
    from repro.service.client import ServiceClient

    client = ServiceClient.from_state_dir(args.state_dir)
    payload = {
        "client_id": args.client,
        "graphs": args.datasets,
        "algorithms": args.algorithms,
        "systems": args.systems,
        "scale_shift": args.scale_shift,
        "max_iterations": args.max_iterations,
        "fidelity": args.fidelity,
        "fault_seed": args.fault_seed,
        "deadline_s": args.deadline,
        "tag": args.tag,
    }
    http, body = client.submit(payload)
    if http not in (200, 202):
        print(json.dumps(body, indent=1), file=out)
        return 1
    request_id = body["request_id"]
    if args.no_wait:
        print(json.dumps(body, indent=1), file=out)
        return 0
    if args.stream:
        for record in client.stream(request_id):
            print(json.dumps(record, sort_keys=True), file=out, flush=True)
        return 0
    client.wait_done(request_id)
    _, results = client.results(request_id)
    print(json.dumps(results, indent=1), file=out)
    return 0


def cmd_soak(args: argparse.Namespace, out) -> int:
    """Chaos-soak a daemon; exit 0 only when every property holds."""
    import tempfile

    from repro.service.chaos import SoakSettings, run_soak

    state_dir = args.state_dir or tempfile.mkdtemp(prefix="repro-soak-")
    report = run_soak(
        SoakSettings(
            state_dir=state_dir,
            seed=args.seed,
            kill_daemon=not args.no_kill,
            extra_requests=args.extra_requests,
        )
    )
    if args.as_json:
        print(json.dumps(report, indent=1, sort_keys=True), file=out)
    else:
        verdict = "PASS" if report["ok"] else "FAIL"
        print(
            f"soak {verdict}: {report['admitted']} admitted, "
            f"{report['degraded_cells']} degraded cell(s), "
            f"{len(report['lost_requests'])} lost, "
            f"{len(report['duplicate_cells'])} duplicated, "
            f"breaker trips {report['breaker_trips']}, "
            f"drain exit {report['drain_exit_code']}, "
            f"monotone recovery {report['monotone_recovery']}",
            file=out,
        )
    return 0 if report["ok"] else 1


_COMMANDS = {
    "run": cmd_run,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "bench": cmd_bench,
    "faults": cmd_faults,
    "lint": cmd_lint,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "soak": cmd_soak,
    "datasets": cmd_datasets,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out or sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
