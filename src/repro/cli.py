"""Command-line interface: run, compare, and sweep without writing code.

Examples::

    python -m repro datasets
    python -m repro run -d PK -a pagerank --pes 512
    python -m repro compare -d TW -a bfs
    python -m repro sweep -d OR -a pagerank --pes 32 64 128 256 512
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.algorithms import ALGORITHMS, make_algorithm, run_reference
from repro.core import ScalaGraph, ScalaGraphConfig
from repro.experiments import format_table
from repro.experiments.runner import (
    SYSTEM_BUILDERS,
    build_system,
    load_benchmark_graph,
)
from repro.graph.datasets import DATASETS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ScalaGraph (HPCA 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "-d",
            "--dataset",
            default="PK",
            help=f"dataset code ({', '.join(DATASETS)})",
        )
        p.add_argument(
            "-a",
            "--algorithm",
            default="pagerank",
            choices=sorted(ALGORITHMS),
        )
        p.add_argument(
            "--scale-shift",
            type=int,
            default=0,
            help="log2 size adjustment of the dataset stand-in",
        )
        p.add_argument(
            "--max-iterations", type=int, default=None, metavar="N"
        )

    run_p = sub.add_parser("run", help="run one algorithm on ScalaGraph")
    add_workload_args(run_p)
    run_p.add_argument("--pes", type=int, default=512)
    run_p.add_argument(
        "--mapping",
        default="rom",
        choices=["rom", "som", "dom", "rom-torus"],
    )
    run_p.add_argument("--registers", type=int, default=16,
                       help="aggregation pipeline registers")
    run_p.add_argument("--window", type=int, default=16,
                       help="degree-aware scheduling window")
    run_p.add_argument("--no-pipelining", action="store_true")
    run_p.add_argument("--verbose", "-v", action="store_true",
                       help="per-iteration breakdown")
    run_p.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")

    cmp_p = sub.add_parser(
        "compare", help="run every compared system on one workload"
    )
    add_workload_args(cmp_p)

    sweep_p = sub.add_parser("sweep", help="PE-count scaling sweep")
    add_workload_args(sweep_p)
    sweep_p.add_argument(
        "--pes",
        type=int,
        nargs="+",
        default=[32, 64, 128, 256, 512, 1024],
    )

    sub.add_parser("datasets", help="list the dataset registry")
    return parser


def cmd_run(args: argparse.Namespace, out) -> int:
    graph = load_benchmark_graph(
        args.dataset, args.algorithm, args.scale_shift
    )
    program = make_algorithm(args.algorithm)
    config = ScalaGraphConfig(
        mapping=args.mapping,
        aggregation_registers=args.registers,
        degree_aware_window=args.window,
        inter_phase_pipelining=not args.no_pipelining,
    ).with_pes(args.pes)
    report = ScalaGraph(config, enforce_capacity=(args.mapping != "dom")).run(
        program, graph, max_iterations=args.max_iterations
    )
    if args.json:
        print(report.to_json(indent=2), file=out)
        return 0
    print(report.summary(), file=out)
    print(
        f"  partitions={report.num_partitions} "
        f"noc_messages={report.total_noc_messages:,} "
        f"coalesced={report.total_coalesced:,} "
        f"offchip={report.total_offchip_bytes / 1e6:.1f} MB "
        f"power={report.power_watts:.1f} W "
        f"energy={report.energy_joules * 1e3:.2f} mJ",
        file=out,
    )
    if args.verbose:
        rows = [
            [
                it.index,
                it.num_active,
                it.num_edges,
                it.scatter_cycles,
                it.apply_cycles,
                it.overlap_cycles,
                it.scatter_bottleneck,
            ]
            for it in report.iterations
        ]
        print(
            format_table(
                [
                    "iter",
                    "active",
                    "edges",
                    "scatter cyc",
                    "apply cyc",
                    "overlap",
                    "bottleneck",
                ],
                rows,
                float_fmt="{:.0f}",
            ),
            file=out,
        )
    return 0


def cmd_compare(args: argparse.Namespace, out) -> int:
    graph = load_benchmark_graph(
        args.dataset, args.algorithm, args.scale_shift
    )
    program = make_algorithm(args.algorithm)
    reference = run_reference(program, graph, args.max_iterations)
    rows = []
    for label in SYSTEM_BUILDERS:
        report = build_system(label).run(
            program, graph, reference=reference
        )
        rows.append(
            [
                label,
                report.gteps,
                f"{report.frequency_mhz:.0f}",
                f"{report.pe_utilization:.1%}",
                report.energy_joules * 1e3,
            ]
        )
    print(
        format_table(
            ["System", "GTEPS", "MHz", "util", "energy (mJ)"],
            rows,
            title=f"{args.algorithm} on {graph.name} "
            f"({graph.num_edges:,} edges)",
        ),
        file=out,
    )
    return 0


def cmd_sweep(args: argparse.Namespace, out) -> int:
    graph = load_benchmark_graph(
        args.dataset, args.algorithm, args.scale_shift
    )
    program = make_algorithm(args.algorithm)
    reference = run_reference(program, graph, args.max_iterations)
    rows = []
    for pes in args.pes:
        report = ScalaGraph(ScalaGraphConfig().with_pes(pes)).run(
            program, graph, reference=reference
        )
        rows.append(
            [pes, report.gteps, f"{report.pe_utilization:.1%}"]
        )
    print(
        format_table(
            ["PEs", "GTEPS", "util"],
            rows,
            title=f"ScalaGraph scaling: {args.algorithm} on {graph.name}",
        ),
        file=out,
    )
    return 0


def cmd_datasets(args: argparse.Namespace, out) -> int:
    rows = [
        [
            spec.key,
            spec.full_name,
            f"{spec.paper_vertices:,}",
            f"{spec.paper_edges:,}",
            spec.standin_vertices,
            spec.standin_edges,
            spec.description,
        ]
        for spec in DATASETS.values()
    ]
    print(
        format_table(
            [
                "Code",
                "Name",
                "|V| paper",
                "|E| paper",
                "|V| stand-in",
                "|E| stand-in",
                "Description",
            ],
            rows,
            title="Dataset registry (Tables I/III)",
        ),
        file=out,
    )
    return 0


_COMMANDS = {
    "run": cmd_run,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "datasets": cmd_datasets,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out or sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
