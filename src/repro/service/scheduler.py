"""The sweep service's execution core: journal, pool, SLOs, degradation.

:class:`SweepScheduler` owns everything between admission and response:

* a **durable journal** (:class:`ServiceJournal`) — an fsync'd
  append-only JSONL file recording every admitted request, every
  finished cell, and every completed request.  Like
  :class:`~repro.experiments.checkpoint.SweepCheckpoint` it tolerates a
  torn tail (a daemon SIGKILLed mid-write loses at most the record
  being written); on boot the valid prefix is replayed, unfinished
  requests are re-admitted, and their already-journaled cells are
  *not* re-executed — the monotone-recovery property the chaos soak
  asserts.
* a **worker pool** with crash isolation: cells run in a
  ``ProcessPoolExecutor``; a SIGKILLed worker breaks the pool
  (``BrokenProcessPool``), which the scheduler absorbs by rebuilding
  the pool and retrying the cell under jittered exponential backoff.
* **SLO deadline propagation**: a request's ``deadline_s`` budget is
  anchored at admission and converted into per-cell timeouts
  (``min(cell_timeout_s, remaining)``); once the budget is spent the
  remaining cells return *degraded* analytic results instead of
  queueing unbounded work behind a blown deadline.
* **graceful degradation** via the per-family circuit breakers: cells
  whose family is open — or whose own retries are exhausted — are
  answered by the in-process analytic model, marked
  ``degraded: true`` with a machine-readable reason.  Every admitted
  cell yields exactly one record: completed, degraded, or (when even
  the analytic fallback fails) an explicit error record.

The scheduler is single-loop asyncio; cells of one request run
concurrently up to the pool width, requests are served in the
admission queue's weighted round-robin order.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import (
    CircuitOpenError,
    ProtocolError,
    ReproError,
    SanitizerError,
)
from repro.experiments.parallel import _terminate_pool
from repro.experiments.runner import execute_cell
from repro.experiments.store import CODE_MODEL_VERSION, ResultCache
from repro.graph.datasets import stable_seed
from repro.service.breaker import BreakerPolicy, CircuitBreakerBank
from repro.service.protocol import (
    DEGRADED_BREAKER_OPEN,
    DEGRADED_DEADLINE,
    DEGRADED_RETRIES_EXHAUSTED,
    PROTOCOL_VERSION,
    STATE_DONE,
    STATE_QUEUED,
    STATE_RUNNING,
    SweepRequest,
    cell_record,
    request_key,
)
from repro.service.queue import AdmissionQueue

_JOURNAL_SCHEMA = "repro-service-journal/1"


# ----------------------------------------------------------------------
# Worker-side execution (module-level: must pickle across the pool)
# ----------------------------------------------------------------------
#: Cycle-accurate stand-in meshes per system label.  The service's
#: cycle fidelity runs a single-tile twin sized for interactive
#: latency; the label still selects distinct hardware (column count),
#: mirroring how ScalaGraph-128/512 differ by columns.
_CYCLE_MESH: Dict[str, Tuple[int, int]] = {
    "ScalaGraph-128": (4, 4),
    "ScalaGraph-512": (4, 8),
}


def _chaos_maybe_crash(chaos: Tuple[str, ...], chaos_dir: str, request_id: str) -> None:
    """Honour the ``worker-crash-once`` hook: SIGKILL self, once.

    The one-shot latch is an ``O_CREAT|O_EXCL`` flag file keyed by
    request id, so exactly one worker dies per request no matter how
    many cells race — the atomic create *is* the election.
    """
    if "worker-crash-once" not in chaos:
        return
    flag = os.path.join(chaos_dir, f"crashed-{request_id}")
    try:
        fd = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return  # someone already took the bullet for this request
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


def _summarise_report(report: Any) -> Dict[str, Any]:
    """The compact wire summary of one analytic SimulationReport."""
    return {
        "fidelity": "analytic",
        "gteps": float(report.gteps),
        "total_cycles": float(report.total_cycles),
        "total_edges_traversed": int(report.total_edges_traversed),
        "iterations": len(report.iterations),
    }


def _analytic_cell(
    graph: str,
    algorithm: str,
    systems: Tuple[str, ...],
    scale_shift: int,
    max_iterations: Optional[int],
    cache_dir: Optional[str],
) -> List[Tuple[str, Dict[str, Any], bool]]:
    """Run one cell's systems analytically, through the result cache."""
    cache = ResultCache(cache_dir) if cache_dir else None
    out: List[Tuple[str, Dict[str, Any], bool]] = []
    missing: List[str] = []
    for system in systems:
        report = (
            cache.get(graph, algorithm, system, scale_shift, max_iterations)
            if cache
            else None
        )
        if report is not None:
            out.append((system, _summarise_report(report), True))
        else:
            missing.append(system)
    if missing:
        for system, report in execute_cell(
            graph, algorithm, missing, scale_shift, max_iterations
        ):
            if cache:
                cache.put(
                    graph,
                    algorithm,
                    system,
                    report,
                    scale_shift,
                    max_iterations,
                )
            out.append((system, _summarise_report(report), False))
    order = {system: rank for rank, system in enumerate(systems)}
    out.sort(key=lambda entry: order[entry[0]])
    return out


def _cycle_cell(
    graph: str,
    algorithm: str,
    systems: Tuple[str, ...],
    scale_shift: int,
    max_iterations: Optional[int],
    fault_seed: Optional[int],
) -> List[Tuple[str, Dict[str, Any], bool]]:
    """Run one cell's systems on the cycle-accurate twin (never cached)."""
    from repro.algorithms import make_algorithm
    from repro.core import ScalaGraphConfig
    from repro.core.cycle_sim import CycleAccurateScalaGraph
    from repro.experiments.runner import load_benchmark_graph
    from repro.faults import FaultConfig, FaultSchedule

    graph_obj = load_benchmark_graph(graph, algorithm, scale_shift)
    out: List[Tuple[str, Dict[str, Any], bool]] = []
    for system in systems:
        rows, cols = _CYCLE_MESH[system]
        hardware = ScalaGraphConfig(num_tiles=1, pe_rows=rows, pe_cols=cols)
        sim = CycleAccurateScalaGraph(hardware)
        if fault_seed is not None:
            schedule = FaultSchedule(
                sim.topology,
                FaultConfig(seed=fault_seed, pe_stalls=1),
            )
            sim = CycleAccurateScalaGraph(hardware, faults=schedule)
        program = make_algorithm(algorithm)
        result = sim.run(program, graph_obj, max_iterations)
        stats = result.stats
        out.append(
            (
                system,
                {
                    "fidelity": "cycle",
                    "total_cycles": int(stats.total_cycles),
                    "iterations": int(stats.iterations),
                    "updates_processed": int(stats.updates_processed),
                    "updates_coalesced": int(stats.updates_coalesced),
                    "degraded_cycles": int(stats.degraded_cycles),
                    "rerouted_packets": int(stats.rerouted_packets),
                    "converged": bool(result.converged),
                },
                False,
            )
        )
    return out


def _service_cell_worker(
    graph: str,
    algorithm: str,
    systems: Tuple[str, ...],
    scale_shift: int,
    max_iterations: Optional[int],
    fidelity: str,
    fault_seed: Optional[int],
    cache_dir: Optional[str],
    chaos: Tuple[str, ...],
    chaos_dir: str,
    request_id: str,
) -> List[Tuple[str, Dict[str, Any], bool]]:
    """Pool entry point: one (graph, algorithm) cell, all its systems.

    Returns ``[(system, summary, cached), ...]``.  Chaos hooks fire
    first — a crash must look exactly like a real worker death (the
    result never materialises), and a ``fail`` hook must exercise the
    same exception path a real :class:`SanitizerError` would.
    """
    _chaos_maybe_crash(chaos, chaos_dir, request_id)
    if "fail" in chaos:
        raise SanitizerError(
            "chaos-fail",
            f"chaos hook 'fail' armed for request {request_id}",
            context="service",
        )
    if fidelity == "cycle":
        return _cycle_cell(
            graph, algorithm, systems, scale_shift, max_iterations, fault_seed
        )
    return _analytic_cell(
        graph, algorithm, systems, scale_shift, max_iterations, cache_dir
    )


# ----------------------------------------------------------------------
# Durable journal
# ----------------------------------------------------------------------
@dataclass
class JournalReplay:
    """The valid prefix of a service journal, parsed.

    ``valid_bytes`` is the byte length of that prefix — recovery
    truncates the file there before appending, so one torn tail cannot
    poison the next record.
    """

    requests: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    cells: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    done: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    valid_bytes: int = 0


def replay_journal(path: Path) -> JournalReplay:
    """Parse a journal's valid prefix; tolerant of any torn tail.

    Reading stops at the first line that is incomplete (no trailing
    newline), fails to decode, or is not an object — everything before
    it is trusted (each record was fsync'd before the next began).  An
    unrecognised header schema discards the whole file (fail-safe: an
    incompatible journal must not be half-replayed).
    """
    replay = JournalReplay()
    try:
        raw = path.read_bytes()
    except OSError:
        return replay
    offset = 0
    first = True
    while offset < len(raw):
        end = raw.find(b"\n", offset)
        if end < 0:
            break  # torn tail: record was being written when we died
        line = raw[offset : end + 1]
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            break
        if not isinstance(record, dict):
            break
        if first:
            if record.get("schema") != _JOURNAL_SCHEMA:
                return JournalReplay()
            first = False
        else:
            kind = record.get("kind")
            request_id = record.get("request_id")
            if not isinstance(request_id, str):
                break
            if kind == "request":
                replay.requests[request_id] = record.get("request", {})
            elif kind == "cell":
                replay.cells.setdefault(request_id, []).append(record)
            elif kind == "done":
                replay.done[request_id] = record
            else:
                break
        offset = end + 1
        replay.valid_bytes = offset
    return replay


class ServiceJournal:
    """Append-only fsync'd JSONL journal of the service's commitments.

    Every ``append`` is flush+fsync before returning, so a record the
    scheduler believes durable *is* durable — the property that lets
    the soak harness SIGKILL the daemon at arbitrary points and still
    demand zero lost requests.
    """

    def __init__(self, path: Path, valid_bytes: int = 0) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or valid_bytes == 0
        self._fh = open(self.path, "a+b")
        self._fh.seek(0, os.SEEK_END)
        if not fresh and self._fh.tell() > valid_bytes:
            # Torn tail from a previous incarnation: drop it before the
            # next append would glue two half-records together.
            self._fh.truncate(valid_bytes)
            self._fh.seek(0, os.SEEK_END)
        if fresh:
            self._fh.truncate(0)
            self.append(
                {"schema": _JOURNAL_SCHEMA, "model_version": CODE_MODEL_VERSION}
            )

    def append(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True).encode() + b"\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServicePolicy:
    """Tunables of one :class:`SweepScheduler`.

    Attributes:
        workers: process-pool width (also the per-request cell
            concurrency cap).
        cell_timeout_s: wall-clock budget of one cell attempt; an
            expiry tears the pool down (the only way to reclaim a hung
            worker) and counts as a failure.
        max_attempts: attempts per cell before degrading with reason
            ``retries-exhausted``.
        backoff_base_s: first retry delay; doubles per attempt.
        backoff_cap_s: upper bound on any retry delay.
        queue_capacity: admission queue depth before 429 shedding.
        max_clients: admission queue client-slot table size.
        breaker_threshold: consecutive family failures that open the
            circuit breaker.
        breaker_cooldown_s: seconds an open breaker sheds before the
            half-open probe.
        seed: root of the jittered-backoff RNG stream (deterministic
            replays for the soak harness).
    """

    workers: int = 2
    cell_timeout_s: float = 60.0
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    queue_capacity: int = 64
    max_clients: int = 16
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    seed: int = 0


class _RequestState:
    """In-memory lifecycle of one admitted request."""

    def __init__(self, request_id: str, request: SweepRequest) -> None:
        self.request_id = request_id
        self.request = request
        self.state = STATE_QUEUED
        self.records: List[Dict[str, Any]] = []
        self.deadline: Optional[float] = None
        if request.deadline_s is not None:
            self.deadline = time.monotonic() + float(request.deadline_s)
        self.cond = asyncio.Condition()

    def status(self, deduped: bool = False) -> Dict[str, Any]:
        total = len(self.request.cells()) * len(self.request.systems)
        degraded = sum(1 for r in self.records if r.get("degraded"))
        return {
            "protocol": PROTOCOL_VERSION,
            "request_id": self.request_id,
            "state": self.state,
            "deduped": deduped,
            "client_id": self.request.client_id,
            "cells_total": total,
            "cells_done": len(self.records),
            "cells_degraded": degraded,
        }


class SweepScheduler:
    """Admission, execution, durability, and degradation in one loop.

    Args:
        state_dir: root of the daemon's durable state — the journal,
            the shared result cache, and the chaos latch directory all
            live under it; point a restarted daemon at the same
            directory to resume.
        policy: tunables (:class:`ServicePolicy`).
        chaos_enabled: honour request chaos hooks (the soak harness
            sets this via ``REPRO_SERVICE_CHAOS=1``); disabled, a
            chaotic submission is a protocol error.
    """

    def __init__(
        self,
        state_dir: Path,
        policy: Optional[ServicePolicy] = None,
        chaos_enabled: bool = False,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.policy = policy or ServicePolicy()
        self.chaos_enabled = chaos_enabled
        self.cache_dir = self.state_dir / "cache"
        self.chaos_dir = self.state_dir / "chaos"
        self.chaos_dir.mkdir(parents=True, exist_ok=True)
        self.queue = AdmissionQueue(
            capacity=self.policy.queue_capacity,
            max_clients=self.policy.max_clients,
        )
        self.breakers = CircuitBreakerBank(
            BreakerPolicy(
                failure_threshold=self.policy.breaker_threshold,
                cooldown_s=self.policy.breaker_cooldown_s,
            )
        )
        self.requests: Dict[str, _RequestState] = {}
        self.recovered_requests = 0
        self._rng = np.random.default_rng(
            stable_seed(f"service-backoff:{self.policy.seed}")
        )
        self._journal: Optional[ServiceJournal] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_generation = 0
        self._pool_lock = asyncio.Lock()
        self._wake = asyncio.Event()
        self._loop_task: Optional[asyncio.Task] = None
        self._draining = False
        self.drained = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> Path:
        return self.state_dir / "journal.jsonl"

    async def start(self) -> None:
        """Replay the journal, re-admit unfinished work, start the loop."""
        replay = replay_journal(self.journal_path)
        self._journal = ServiceJournal(
            self.journal_path, valid_bytes=replay.valid_bytes
        )
        for request_id, wire in replay.requests.items():
            try:
                request = SweepRequest.from_wire(wire)
            except ProtocolError:
                continue  # journaled under an older registry; skip
            state = _RequestState(request_id, request)
            state.records = list(replay.cells.get(request_id, []))
            if request_id in replay.done:
                state.state = STATE_DONE
            else:
                # Unfinished: re-admit, bypassing capacity — this work
                # was already accepted once and must not be shed now.
                self.queue.offer(request.client_id, request_id, force=True)
                self.recovered_requests += 1
            self.requests[request_id] = state
        self._loop_task = asyncio.create_task(self._run_loop())

    async def drain(self) -> None:
        """Stop admitting, finish the in-flight request, fsync, stop.

        Queued-but-unstarted requests stay journaled; the next boot
        re-admits them.  Idempotent.
        """
        self._draining = True
        self.queue.draining = True
        self._wake.set()
        if self._loop_task is not None:
            await self._loop_task
            self._loop_task = None
        async with self._pool_lock:
            if self._pool is not None:
                _terminate_pool(self._pool)
                self._pool = None
        if self._journal is not None:
            self._journal.close()
        self.drained = True

    # ------------------------------------------------------------------
    # API surface (called by the HTTP layer)
    # ------------------------------------------------------------------
    def submit(self, payload: Any) -> Dict[str, Any]:
        """Validate, de-dupe, admit, and journal one submission.

        Raises :class:`~repro.errors.ProtocolError` (400) or
        :class:`~repro.errors.AdmissionError` (429/503); on success
        returns the request's status object.  A content-identical
        resubmission returns the existing request — whatever its state
        — with ``deduped: true`` and costs no queue slot.
        """
        request = SweepRequest.from_wire(payload)
        if request.chaos and not self.chaos_enabled:
            raise ProtocolError(
                "chaos hooks require the daemon to run with "
                "REPRO_SERVICE_CHAOS=1"
            )
        request_id = request_key(request)
        existing = self.requests.get(request_id)
        if existing is not None:
            return existing.status(deduped=True)
        self.queue.offer(request.client_id, request_id)
        state = _RequestState(request_id, request)
        self.requests[request_id] = state
        assert self._journal is not None, "scheduler not started"
        self._journal.append(
            {
                "kind": "request",
                "request_id": request_id,
                "request": request.to_wire(),
            }
        )
        self._wake.set()
        return state.status()

    def status(self, request_id: str) -> Optional[Dict[str, Any]]:
        state = self.requests.get(request_id)
        return None if state is None else state.status()

    def results(self, request_id: str) -> Optional[List[Dict[str, Any]]]:
        state = self.requests.get(request_id)
        return None if state is None else list(state.records)

    async def stream(self, request_id: str) -> AsyncIterator[Dict[str, Any]]:
        """Yield a request's records as they land, then a ``done`` line.

        The stream is complete and duplicate-free regardless of when
        the client attaches: records already emitted are replayed
        first, live ones follow, and the terminal line carries the
        final counts.
        """
        state = self.requests[request_id]
        index = 0
        while True:
            while index < len(state.records):
                yield state.records[index]
                index += 1
            if state.state == STATE_DONE:
                yield {
                    "kind": "done",
                    "request_id": request_id,
                    "cells": len(state.records),
                    "degraded": sum(
                        1 for r in state.records if r.get("degraded")
                    ),
                }
                return
            async with state.cond:
                if index >= len(state.records) and state.state != STATE_DONE:
                    try:
                        await asyncio.wait_for(state.cond.wait(), timeout=0.5)
                    except (asyncio.TimeoutError, TimeoutError):
                        pass  # periodic re-check; progress, not a wakeup bug

    def stats(self) -> Dict[str, Any]:
        """Operational snapshot for ``/api/v1/stats`` and readiness."""
        states: Dict[str, int] = {}
        for state in self.requests.values():
            states[state.state] = states.get(state.state, 0) + 1
        return {
            "protocol": PROTOCOL_VERSION,
            "model_version": CODE_MODEL_VERSION,
            "draining": self._draining,
            "queue": self.queue.snapshot(),
            "breakers": self.breakers.snapshot(),
            "requests": states,
            "recovered_requests": self.recovered_requests,
            "pool_generation": self._pool_generation,
            "chaos_enabled": self.chaos_enabled,
        }

    # ------------------------------------------------------------------
    # Execution loop
    # ------------------------------------------------------------------
    async def _run_loop(self) -> None:
        while True:
            if self._draining:
                return
            taken = self.queue.take()
            if taken is None:
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=0.25)
                except (asyncio.TimeoutError, TimeoutError):
                    pass  # idle poll; drain flag is re-checked above
                continue
            _, request_id = taken
            await self._execute_request(self.requests[request_id])

    async def _execute_request(self, state: _RequestState) -> None:
        state.state = STATE_RUNNING
        request = state.request
        already = {
            (r["graph"], r["algorithm"], r["system"]) for r in state.records
        }
        gate = asyncio.Semaphore(max(1, self.policy.workers))

        async def run_one(graph: str, algorithm: str) -> None:
            systems = tuple(
                s
                for s in request.systems
                if (graph, algorithm, s) not in already
            )
            if not systems:
                return
            async with gate:
                records = await self._execute_cell(
                    state, graph, algorithm, systems
                )
            for record in records:
                await self._emit(state, record)

        tasks = [
            asyncio.create_task(run_one(graph, algorithm))
            for graph, algorithm in request.cells()
        ]
        if tasks:
            await asyncio.gather(*tasks)
        assert self._journal is not None
        self._journal.append(
            {
                "kind": "done",
                "request_id": state.request_id,
                "cells": len(state.records),
                "degraded": sum(
                    1 for r in state.records if r.get("degraded")
                ),
            }
        )
        async with state.cond:
            state.state = STATE_DONE
            state.cond.notify_all()

    async def _emit(self, state: _RequestState, record: Dict[str, Any]) -> None:
        assert self._journal is not None
        self._journal.append(record)
        async with state.cond:
            state.records.append(record)
            state.cond.notify_all()

    # ------------------------------------------------------------------
    # One cell
    # ------------------------------------------------------------------
    async def _execute_cell(
        self,
        state: _RequestState,
        graph: str,
        algorithm: str,
        systems: Tuple[str, ...],
    ) -> List[Dict[str, Any]]:
        request = state.request
        family = f"{algorithm}:{request.fidelity}"
        if state.deadline is not None and time.monotonic() >= state.deadline:
            return self._degraded(state, graph, algorithm, systems, DEGRADED_DEADLINE, 0)
        try:
            self.breakers.admit(family, time.monotonic())
        except CircuitOpenError:
            return self._degraded(
                state, graph, algorithm, systems, DEGRADED_BREAKER_OPEN, 0
            )
        attempts = 0
        while attempts < self.policy.max_attempts:
            attempts += 1
            timeout = self.policy.cell_timeout_s
            if state.deadline is not None:
                remaining = state.deadline - time.monotonic()
                if remaining <= 0:
                    return self._degraded(
                        state, graph, algorithm, systems, DEGRADED_DEADLINE, attempts - 1
                    )
                timeout = min(timeout, remaining)
            pool, generation = await self._ensure_pool()
            loop = asyncio.get_running_loop()
            try:
                payload = await asyncio.wait_for(
                    loop.run_in_executor(
                        pool,
                        _service_cell_worker,
                        graph,
                        algorithm,
                        systems,
                        request.scale_shift,
                        request.max_iterations,
                        request.fidelity,
                        request.fault_seed,
                        str(self.cache_dir),
                        request.chaos,
                        str(self.chaos_dir),
                        state.request_id,
                    ),
                    timeout=timeout,
                )
            except BrokenProcessPool:
                await self._rebuild_pool(generation)
                self.breakers.record_failure(family, time.monotonic())
                await self._backoff(attempts)
                continue
            except (asyncio.TimeoutError, TimeoutError):
                # The worker may be hung: tearing the pool down is the
                # only way to reclaim it.
                await self._rebuild_pool(generation)
                self.breakers.record_failure(family, time.monotonic())
                await self._backoff(attempts)
                continue
            except ReproError:
                self.breakers.record_failure(family, time.monotonic())
                await self._backoff(attempts)
                continue
            self.breakers.record_success(family)
            return [
                cell_record(
                    state.request_id,
                    graph,
                    algorithm,
                    system,
                    dict(summary, cached=cached),
                    attempts=attempts,
                )
                for system, summary, cached in payload
            ]
        return self._degraded(
            state, graph, algorithm, systems, DEGRADED_RETRIES_EXHAUSTED, attempts
        )

    def _degraded(
        self,
        state: _RequestState,
        graph: str,
        algorithm: str,
        systems: Tuple[str, ...],
        reason: str,
        attempts: int,
    ) -> List[Dict[str, Any]]:
        """Answer a cell with the in-process analytic model.

        The degraded path must not re-enter the failing machinery: it
        runs without the pool, without chaos hooks, and without the
        cycle simulator.  If even the analytic model fails, the cell
        still gets exactly one record — an explicit error summary —
        because a lost request is the one failure mode the service
        promises away.
        """
        request = state.request
        try:
            computed = _analytic_cell(
                graph,
                algorithm,
                systems,
                request.scale_shift,
                request.max_iterations,
                str(self.cache_dir),
            )
            summaries = {system: summary for system, summary, _ in computed}
        except ReproError as exc:
            summaries = {
                system: {"error": f"{type(exc).__name__}: {exc}"}
                for system in systems
            }
        return [
            cell_record(
                state.request_id,
                graph,
                algorithm,
                system,
                summaries.get(system, {"error": "analytic fallback missing"}),
                degraded=True,
                degraded_reason=reason,
                attempts=attempts,
            )
            for system in systems
        ]

    # ------------------------------------------------------------------
    # Pool management + backoff
    # ------------------------------------------------------------------
    async def _ensure_pool(self) -> Tuple[ProcessPoolExecutor, int]:
        async with self._pool_lock:
            if self._pool is None:
                # Spawn, not fork: a forked worker inherits the asyncio
                # signal machinery (the wakeup-fd self-pipe is shared
                # across fork), so a SIGTERM aimed at a worker during
                # pool teardown would fire the *daemon's* SIGTERM
                # handler and drain the whole service.  Spawned workers
                # share no loop state with the daemon.
                self._pool = ProcessPoolExecutor(
                    max_workers=self.policy.workers,
                    mp_context=multiprocessing.get_context("spawn"),
                )
            return self._pool, self._pool_generation

    async def _rebuild_pool(self, generation: int) -> None:
        """Tear down and forget the pool, once per failure generation.

        Concurrent cells hitting the same broken pool all call in; the
        generation check makes the teardown idempotent so the second
        caller does not destroy the freshly built replacement.
        """
        async with self._pool_lock:
            if generation != self._pool_generation:
                return
            if self._pool is not None:
                _terminate_pool(self._pool)
                self._pool = None
            self._pool_generation += 1

    async def _backoff(self, attempt: int) -> None:
        """Jittered exponential backoff between one cell's attempts."""
        base = min(
            self.policy.backoff_base_s * (2.0 ** (attempt - 1)),
            self.policy.backoff_cap_s,
        )
        jitter = float(self._rng.uniform(0.0, base))
        await asyncio.sleep(base + jitter)
