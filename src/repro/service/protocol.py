"""Wire protocol of the sweep service: requests, content keys, records.

A submission is a JSON object describing a (graphs x algorithms x
systems) sweep slice plus service metadata (client identity, SLO
budget, fidelity).  :class:`SweepRequest` is its validated, frozen
in-memory form; :func:`request_key` content-addresses it so identical
work submitted twice — by the same client or different ones — resolves
to the *same* request id and is executed at most once.  The ``tag``
field is the escape hatch: it participates in the key, so clients that
genuinely want a re-run (e.g. the chaos soak harness generating load)
uniquify with it instead of the service guessing intent.

Everything here is pure data + validation; no I/O, no asyncio.  The
HTTP layer (:mod:`repro.service.server`) and the scheduler both speak
in these terms.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.algorithms import ALGORITHMS
from repro.errors import ProtocolError
from repro.experiments.runner import SYSTEM_BUILDERS
from repro.experiments.store import CODE_MODEL_VERSION
from repro.graph.datasets import DATASETS

#: Bumped on any incompatible change to the request/response schema.
PROTOCOL_VERSION = "repro-service/1"

#: Execution fidelities a request may ask for.  ``analytic`` runs the
#: closed-form timing models through the shared result cache;
#: ``cycle`` runs the cycle-accurate simulator (ScalaGraph systems
#: only, never cached — it is also what the circuit breaker sheds back
#: to analytic when a config family keeps failing).
FIDELITIES = ("analytic", "cycle")

#: Chaos hooks a request may carry (honoured only when the daemon runs
#: with ``REPRO_SERVICE_CHAOS=1``; rejected with a 400 otherwise so a
#: production daemon cannot be tripped by a stray test payload).
#:
#: * ``worker-crash-once`` — the first worker to pick up one of this
#:   request's cells SIGKILLs itself (exactly once per request),
#:   exercising pool rebuild + retry.
#: * ``fail`` — every cell attempt raises a
#:   :class:`~repro.errors.SanitizerError`, exercising retry exhaustion
#:   and the circuit breaker.
CHAOS_HOOKS = ("worker-crash-once", "fail")

#: Hard caps keeping one request's fan-out bounded; a sweep larger than
#: this should be split client-side (the content-address de-dupe makes
#: resubmitting slices idempotent).
MAX_CELLS_PER_REQUEST = 64
MAX_CLIENT_ID_LEN = 64
MAX_TAG_LEN = 128

#: Reasons a response may be marked ``degraded: true``.
DEGRADED_BREAKER_OPEN = "breaker-open"
DEGRADED_RETRIES_EXHAUSTED = "retries-exhausted"
DEGRADED_DEADLINE = "deadline-exceeded"

#: Terminal request states the API reports.
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
TERMINAL_STATES = (STATE_DONE,)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


@dataclass(frozen=True)
class SweepRequest:
    """One validated sweep submission.

    Instances are immutable and fully picklable; the scheduler fans
    them out into per-(graph, algorithm) cells, each of which runs all
    of :attr:`systems` in one worker call (mirroring
    :func:`~repro.experiments.runner.execute_cell`).

    Attributes:
        client_id: identity the admission queue's weighted round-robin
            fairness is keyed on; free-form token, not authentication.
        graphs: dataset keys to sweep (validated against the registry).
        algorithms: algorithm names to sweep.
        systems: system labels to run per cell.
        scale_shift: added to every dataset's stand-in scale.
        max_iterations: per-run iteration cap, or None for unbounded.
        fidelity: ``analytic`` or ``cycle`` (see :data:`FIDELITIES`).
        fault_seed: when set on a ``cycle`` request, each run arms a
            :class:`~repro.faults.FaultSchedule` drawn from this seed
            (the chaos soak's fault-injected workload); None runs
            fault-free.
        deadline_s: SLO budget in seconds from admission; None means no
            deadline.  Propagated into per-cell timeouts; on expiry the
            remaining cells degrade instead of running.
        tag: free-form uniquifier mixed into the content key (identical
            submissions with different tags are distinct requests).
        chaos: fault hooks from :data:`CHAOS_HOOKS` (gated by
            ``REPRO_SERVICE_CHAOS``).
    """

    client_id: str
    graphs: Tuple[str, ...]
    algorithms: Tuple[str, ...]
    systems: Tuple[str, ...]
    scale_shift: int = 0
    max_iterations: Optional[int] = None
    fidelity: str = "analytic"
    fault_seed: Optional[int] = None
    deadline_s: Optional[float] = None
    tag: str = ""
    chaos: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        _require(
            isinstance(self.client_id, str)
            and 0 < len(self.client_id) <= MAX_CLIENT_ID_LEN,
            "client_id must be a non-empty string of at most "
            f"{MAX_CLIENT_ID_LEN} characters",
        )
        _require(
            bool(self.graphs) and bool(self.algorithms) and bool(self.systems),
            "graphs, algorithms, and systems must each be non-empty",
        )
        for list_name, values in (
            ("graphs", [g.upper() for g in self.graphs]),
            ("algorithms", [a.lower() for a in self.algorithms]),
            ("systems", list(self.systems)),
        ):
            _require(
                len(values) == len(set(values)),
                f"{list_name} must not contain duplicates",
            )
        for name in self.graphs:
            _require(
                name.upper() in DATASETS,
                f"unknown dataset {name!r}; known: {sorted(DATASETS)}",
            )
        for name in self.algorithms:
            _require(
                name.lower() in ALGORITHMS,
                f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}",
            )
        for name in self.systems:
            _require(
                name in SYSTEM_BUILDERS,
                f"unknown system {name!r}; known: {sorted(SYSTEM_BUILDERS)}",
            )
        _require(
            self.fidelity in FIDELITIES,
            f"unknown fidelity {self.fidelity!r}; known: {FIDELITIES}",
        )
        if self.fidelity == "cycle":
            for name in self.systems:
                _require(
                    name.startswith("ScalaGraph"),
                    "cycle fidelity models ScalaGraph systems only; "
                    f"{name!r} has no cycle-accurate twin",
                )
        _require(
            self.fault_seed is None
            or (
                isinstance(self.fault_seed, int)
                and self.fidelity == "cycle"
            ),
            "fault_seed must be an integer and requires cycle fidelity",
        )
        _require(
            isinstance(self.scale_shift, int) and -10 <= self.scale_shift <= 4,
            "scale_shift must be an integer in [-10, 4]",
        )
        _require(
            self.max_iterations is None
            or (
                isinstance(self.max_iterations, int)
                and self.max_iterations > 0
            ),
            "max_iterations must be a positive integer or null",
        )
        _require(
            self.deadline_s is None
            or (
                isinstance(self.deadline_s, (int, float))
                and float(self.deadline_s) > 0.0
            ),
            "deadline_s must be a positive number or null",
        )
        _require(
            isinstance(self.tag, str) and len(self.tag) <= MAX_TAG_LEN,
            f"tag must be a string of at most {MAX_TAG_LEN} characters",
        )
        for hook in self.chaos:
            _require(
                hook in CHAOS_HOOKS,
                f"unknown chaos hook {hook!r}; known: {CHAOS_HOOKS}",
            )
        _require(
            len(self.cells()) <= MAX_CELLS_PER_REQUEST,
            f"request fans out to {len(self.cells())} cells; the cap is "
            f"{MAX_CELLS_PER_REQUEST} — split the sweep and resubmit "
            "(content addressing de-dupes overlapping slices)",
        )

    # ------------------------------------------------------------------
    # Fan-out
    # ------------------------------------------------------------------
    def cells(self) -> List[Tuple[str, str]]:
        """The (graph, algorithm) cells this request fans out into."""
        return [
            (graph.upper(), algorithm.lower())
            for graph in self.graphs
            for algorithm in self.algorithms
        ]

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------
    def to_wire(self) -> Dict[str, Any]:
        """The JSON-serialisable form of this request."""
        return {
            "client_id": self.client_id,
            "graphs": list(self.graphs),
            "algorithms": list(self.algorithms),
            "systems": list(self.systems),
            "scale_shift": self.scale_shift,
            "max_iterations": self.max_iterations,
            "fidelity": self.fidelity,
            "fault_seed": self.fault_seed,
            "deadline_s": self.deadline_s,
            "tag": self.tag,
            "chaos": list(self.chaos),
        }

    @classmethod
    def from_wire(cls, payload: Any) -> "SweepRequest":
        """Parse + validate a submission payload.

        Raises :class:`~repro.errors.ProtocolError` (HTTP 400) on any
        malformed or unknown field — never a bare KeyError/TypeError,
        so the server can map failures to a structured error response.
        """
        _require(isinstance(payload, dict), "request body must be an object")
        known = {
            "client_id",
            "graphs",
            "algorithms",
            "systems",
            "scale_shift",
            "max_iterations",
            "fidelity",
            "fault_seed",
            "deadline_s",
            "tag",
            "chaos",
        }
        unknown = sorted(set(payload) - known)
        _require(not unknown, f"unknown request field(s): {unknown}")
        for list_field in ("graphs", "algorithms", "systems", "chaos"):
            value = payload.get(list_field, [] if list_field == "chaos" else None)
            if list_field == "chaos" and value == []:
                continue
            _require(
                isinstance(value, list)
                and all(isinstance(item, str) for item in value),
                f"{list_field} must be a list of strings",
            )
        try:
            return cls(
                client_id=payload.get("client_id", ""),
                graphs=tuple(payload.get("graphs", ())),
                algorithms=tuple(payload.get("algorithms", ())),
                systems=tuple(payload.get("systems", ())),
                scale_shift=payload.get("scale_shift", 0),
                max_iterations=payload.get("max_iterations"),
                fidelity=payload.get("fidelity", "analytic"),
                fault_seed=payload.get("fault_seed"),
                deadline_s=payload.get("deadline_s"),
                tag=payload.get("tag", ""),
                chaos=tuple(payload.get("chaos", ())),
            )
        except ProtocolError:
            raise
        except (TypeError, ValueError, AttributeError) as exc:
            raise ProtocolError(f"malformed request: {exc}") from exc


def request_key(request: SweepRequest) -> str:
    """Content address of a request: sha256 over its canonical form.

    Only fields that determine the *work* participate — the client id
    and the SLO budget do not, so two clients asking for the same sweep
    share one execution.  The model version is mixed in for the same
    reason it keys the result cache: a timing-model change must not be
    served from a previous build's results.  The hex digest's first 16
    characters are the public ``request_id``.
    """
    material = {
        "protocol": PROTOCOL_VERSION,
        "graphs": [g.upper() for g in request.graphs],
        "algorithms": [a.lower() for a in request.algorithms],
        "systems": list(request.systems),
        "scale_shift": request.scale_shift,
        "max_iterations": request.max_iterations,
        "fidelity": request.fidelity,
        "fault_seed": request.fault_seed,
        "tag": request.tag,
        "chaos": list(request.chaos),
        "model_version": CODE_MODEL_VERSION,
    }
    digest = hashlib.sha256(
        json.dumps(material, sort_keys=True).encode()
    ).hexdigest()
    return digest[:16]


def cell_record(
    request_id: str,
    graph: str,
    algorithm: str,
    system: str,
    summary: Dict[str, Any],
    degraded: bool = False,
    degraded_reason: Optional[str] = None,
    attempts: int = 1,
) -> Dict[str, Any]:
    """One streamed result line: a finished (or degraded) cell-system.

    This is the unit of the chunked-JSONL stream *and* of the service
    journal, so a client tailing ``/stream`` and a recovery scan of the
    journal see byte-identical records.
    """
    record: Dict[str, Any] = {
        "kind": "cell",
        "request_id": request_id,
        "graph": graph,
        "algorithm": algorithm,
        "system": system,
        "degraded": degraded,
        "attempts": attempts,
        "summary": summary,
    }
    if degraded_reason is not None:
        record["degraded_reason"] = degraded_reason
    return record


def error_body(error: str, message: str, **extra: Any) -> Dict[str, Any]:
    """The uniform JSON error envelope every non-2xx response carries."""
    body: Dict[str, Any] = {"error": error, "message": message}
    body.update(extra)
    return body
