"""Bounded admission queue with weighted round-robin client fairness.

The daemon's first line of defence: every submission passes through one
:class:`AdmissionQueue` before any work is scheduled.  Two properties
are load-bearing for robustness:

* **Bounded depth with explicit shedding.**  A full queue refuses new
  work with :class:`~repro.errors.AdmissionError` (the server maps it
  to HTTP 429 + ``Retry-After``) instead of building an unbounded
  backlog that converts overload into latency collapse and OOM.
* **Weighted round-robin fairness.**  Dequeue order interleaves
  clients by the *smooth WRR* credit scheme: each pick, every client
  with pending work earns its weight in credit, the richest client is
  served, and the winner pays back the total active weight.  A client
  flooding the queue therefore cannot starve the others — it only
  fills its own share — and the schedule is deterministic (no RNG),
  so replaying a soak workload replays the exact service order.

State is a struct-of-arrays over client slots (depths, weights,
credits, counters) so ``/api/v1/stats`` snapshots are O(clients) numpy
reads, with the dtype contract declared in :data:`BUFFER_DTYPES`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import AdmissionError

#: Declared dtype contract for the per-client-slot state arrays
#: (SIM604 checks every allocation site against this table).
BUFFER_DTYPES = {
    "_weights": "float64",
    "_credits": "float64",
    "_depths": "int64",
    "_admitted": "int64",
    "_shed": "int64",
}


class AdmissionQueue:
    """Bounded multi-client queue with smooth-WRR dequeue order.

    Args:
        capacity: total pending items across all clients; an ``offer``
            beyond it sheds with ``reason="queue-full"``.
        max_clients: client-slot table size; a new client beyond it
            sheds with ``reason="client-table-full"`` (slots are never
            reclaimed — client ids are expected to be few and stable).
        default_weight: WRR weight assigned to unseen clients.
    """

    def __init__(
        self,
        capacity: int = 64,
        max_clients: int = 16,
        default_weight: float = 1.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if max_clients <= 0:
            raise ValueError("max_clients must be positive")
        self.capacity = capacity
        self.max_clients = max_clients
        self.default_weight = float(default_weight)
        self.draining = False
        self._slots: Dict[str, int] = {}
        self._pending: List[Deque[Any]] = [
            deque() for _ in range(max_clients)
        ]
        self._weights = np.zeros(max_clients, dtype=np.float64)
        self._credits = np.zeros(max_clients, dtype=np.float64)
        self._depths = np.zeros(max_clients, dtype=np.int64)
        self._admitted = np.zeros(max_clients, dtype=np.int64)
        self._shed = np.zeros(max_clients, dtype=np.int64)
        self._total_shed = 0

    # ------------------------------------------------------------------
    # Client slots
    # ------------------------------------------------------------------
    def register(self, client_id: str, weight: Optional[float] = None) -> int:
        """Ensure ``client_id`` has a slot; returns its index.

        Raises :class:`AdmissionError` (``client-table-full``) when the
        slot table is exhausted.  Re-registering an existing client may
        update its weight.
        """
        slot = self._slots.get(client_id)
        if slot is None:
            if len(self._slots) >= self.max_clients:
                self._total_shed += 1
                raise AdmissionError("client-table-full", retry_after_s=5.0)
            slot = len(self._slots)
            self._slots[client_id] = slot
            self._weights[slot] = self.default_weight
        if weight is not None:
            if weight <= 0:
                raise ValueError("client weight must be positive")
            self._weights[slot] = float(weight)
        return slot

    # ------------------------------------------------------------------
    # Offer / take
    # ------------------------------------------------------------------
    def offer(self, client_id: str, item: Any, force: bool = False) -> int:
        """Admit one item for ``client_id``; returns the queue depth.

        Raises :class:`AdmissionError` with reason ``draining`` (the
        daemon is shutting down), ``queue-full``, or
        ``client-table-full`` — admission is all-or-nothing and the
        caller learns why immediately.  ``force`` bypasses the depth
        and draining gates (never the slot table): journal recovery
        re-admits previously accepted work, and work the service
        already accepted must not be sheddable on re-boot.
        """
        if self.draining and not force:
            raise AdmissionError("draining", retry_after_s=5.0)
        slot = self.register(client_id)
        if not force and int(self._depths.sum()) >= self.capacity:
            self._shed[slot] += 1
            self._total_shed += 1
            raise AdmissionError("queue-full", retry_after_s=1.0)
        self._pending[slot].append(item)
        self._depths[slot] += 1
        self._admitted[slot] += 1
        return int(self._depths.sum())

    def take(self) -> Optional[Tuple[str, Any]]:
        """Dequeue the next ``(client_id, item)`` in smooth-WRR order.

        Returns None when the queue is empty.  Each call credits every
        active client its weight, serves the richest, and charges the
        winner the total active weight — over time each active client
        receives service proportional to its weight, with ties broken
        by slot order (first registration wins), keeping the schedule
        fully deterministic.
        """
        active = np.flatnonzero(self._depths > 0)
        if active.size == 0:
            return None
        self._credits[active] += self._weights[active]
        winner = int(active[np.argmax(self._credits[active])])
        self._credits[winner] -= float(self._weights[active].sum())
        item = self._pending[winner].popleft()
        self._depths[winner] -= 1
        client_id = next(
            cid for cid, slot in self._slots.items() if slot == winner
        )
        return client_id, item

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._depths.sum())

    def depth(self, client_id: str) -> int:
        slot = self._slots.get(client_id)
        return 0 if slot is None else int(self._depths[slot])

    def snapshot(self) -> Dict[str, Any]:
        """Queue state for the health/stats endpoints."""
        per_client = {
            cid: {
                "depth": int(self._depths[slot]),
                "weight": float(self._weights[slot]),
                "admitted": int(self._admitted[slot]),
                "shed": int(self._shed[slot]),
            }
            for cid, slot in sorted(self._slots.items())
        }
        return {
            "depth": len(self),
            "capacity": self.capacity,
            "draining": self.draining,
            "shed_total": self._total_shed,
            "clients": per_client,
        }
