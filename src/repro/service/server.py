"""The sweep daemon's HTTP/JSON face.

A deliberately small hand-rolled HTTP/1.1 server over
``asyncio.start_server`` (stdlib only — the repo bakes in no web
framework), speaking one request per connection:

===========================================  ==============================
Route                                        Meaning
===========================================  ==============================
``GET /healthz``                             liveness (always 200)
``GET /readyz``                              readiness: 200 while
                                             admitting, 503 once draining;
                                             body carries queue depth and
                                             open breaker families
``POST /api/v1/submit``                      submit a sweep (202 admitted,
                                             200 deduped, 400 protocol,
                                             429 shed, 503 draining)
``GET /api/v1/requests/<id>``                request status
``GET /api/v1/requests/<id>/results``        finished records so far
``GET /api/v1/requests/<id>/stream``         chunked JSONL live stream
``GET /api/v1/stats``                        full operational snapshot
===========================================  ==============================

The daemon publishes its bound endpoint (host, port, pid) atomically to
``<state_dir>/service.json`` so clients discover an ephemeral port
without racing the bind, and drains gracefully on SIGTERM/SIGINT:
readiness flips to 503, new submissions shed with ``draining``, the
in-flight request finishes and is journaled, the journal is fsync'd,
and :func:`serve` returns 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import AdmissionError, ProtocolError
from repro.service.protocol import error_body
from repro.service.scheduler import ServicePolicy, SweepScheduler

_MAX_BODY_BYTES = 1 << 20
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServiceSettings:
    """Where the daemon binds and keeps its durable state.

    Attributes:
        state_dir: directory holding the journal, the shared result
            cache, and the published ``service.json`` endpoint file;
            restarting against the same directory resumes unfinished
            requests.
        host: bind address (loopback by default — the service is a
            local control plane, not a network daemon).
        port: bind port; 0 picks an ephemeral one, published in the
            endpoint file.
    """

    state_dir: str
    host: str = "127.0.0.1"
    port: int = 0


def _response(
    status: int,
    body: Dict[str, Any],
    extra_headers: Tuple[str, ...] = (),
) -> bytes:
    data = json.dumps(body).encode()
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(data)}",
        "Connection: close",
        *extra_headers,
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + data


class _ServiceServer:
    """Connection handling + routing around one :class:`SweepScheduler`."""

    def __init__(self, scheduler: SweepScheduler) -> None:
        self.scheduler = scheduler

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle(reader, writer)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.TimeoutError,
            TimeoutError,
            OSError,
        ):
            pass  # client went away or spoke garbage; nothing to save
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # already torn down

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=10.0
        )
        request_line, _, header_block = head.partition(b"\r\n")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            writer.write(
                _response(400, error_body("protocol", "malformed request line"))
            )
            await writer.drain()
            return
        method, target, _ = parts
        headers: Dict[str, str] = {}
        for raw in header_block.decode("latin-1").split("\r\n"):
            name, sep, value = raw.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            writer.write(
                _response(413, error_body("protocol", "request body too large"))
            )
            await writer.drain()
            return
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=10.0
            )
        await self._route(method, target, body, writer)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        if target == "/healthz":
            writer.write(_response(200, {"ok": True}))
        elif target == "/readyz":
            snapshot = self.scheduler.queue.snapshot()
            ready = not snapshot["draining"]
            writer.write(
                _response(
                    200 if ready else 503,
                    {
                        "ready": ready,
                        "queue_depth": snapshot["depth"],
                        "queue_capacity": snapshot["capacity"],
                        "open_breakers": self.scheduler.breakers.open_families(),
                    },
                )
            )
        elif target == "/api/v1/submit":
            if method != "POST":
                writer.write(
                    _response(405, error_body("protocol", "POST required"))
                )
            else:
                writer.write(self._submit(body))
        elif target == "/api/v1/stats":
            writer.write(_response(200, self.scheduler.stats()))
        elif target.startswith("/api/v1/requests/"):
            await self._request_route(target, writer)
        else:
            writer.write(
                _response(404, error_body("not-found", f"no route {target}"))
            )
        await writer.drain()

    def _submit(self, body: bytes) -> bytes:
        try:
            payload = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return _response(
                400, error_body("protocol", f"body is not JSON: {exc}")
            )
        try:
            status = self.scheduler.submit(payload)
        except ProtocolError as exc:
            return _response(400, error_body("protocol", str(exc)))
        except AdmissionError as exc:
            http = 503 if exc.reason == "draining" else 429
            return _response(
                http,
                error_body(
                    "admission",
                    str(exc),
                    reason=exc.reason,
                    retry_after_s=exc.retry_after_s,
                ),
                extra_headers=(
                    f"Retry-After: {max(1, int(exc.retry_after_s))}",
                ),
            )
        return _response(200 if status["deduped"] else 202, status)

    async def _request_route(
        self, target: str, writer: asyncio.StreamWriter
    ) -> None:
        rest = target[len("/api/v1/requests/") :]
        if rest.endswith("/stream"):
            await self._stream(rest[: -len("/stream")], writer)
            return
        if rest.endswith("/results"):
            request_id = rest[: -len("/results")]
            records = self.scheduler.results(request_id)
            if records is None:
                writer.write(
                    _response(
                        404, error_body("not-found", "unknown request id")
                    )
                )
            else:
                writer.write(
                    _response(
                        200, {"request_id": request_id, "records": records}
                    )
                )
            return
        status = self.scheduler.status(rest)
        if status is None:
            writer.write(
                _response(404, error_body("not-found", "unknown request id"))
            )
        else:
            writer.write(_response(200, status))

    async def _stream(
        self, request_id: str, writer: asyncio.StreamWriter
    ) -> None:
        """Chunked-JSONL live stream of one request's records."""
        if self.scheduler.status(request_id) is None:
            writer.write(
                _response(404, error_body("not-found", "unknown request id"))
            )
            return
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
        )
        await writer.drain()
        async for record in self.scheduler.stream(request_id):
            line = json.dumps(record, sort_keys=True).encode() + b"\n"
            writer.write(f"{len(line):X}\r\n".encode() + line + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()


def _publish_endpoint(state_dir: Path, host: str, port: int) -> Path:
    """Atomically write the endpoint discovery file."""
    endpoint = state_dir / "service.json"
    payload = json.dumps(
        {"host": host, "port": port, "pid": os.getpid()}
    ).encode()
    fd, tmp_name = tempfile.mkstemp(dir=state_dir, prefix=".svc-", suffix=".tmp")
    with os.fdopen(fd, "wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_name, endpoint)
    return endpoint


async def serve(
    settings: ServiceSettings,
    policy: Optional[ServicePolicy] = None,
    notify: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns the exit code.

    Drain protocol, in order: readiness flips to 503 and new
    submissions shed with ``draining``; the in-flight request's cells
    finish (or degrade) and are journaled; the journal is fsync'd and
    closed; the endpoint file is removed; 0 is returned.  Chaos hooks
    are honoured only when ``REPRO_SERVICE_CHAOS=1`` is set in the
    daemon's environment.
    """
    state_dir = Path(settings.state_dir)
    chaos_enabled = os.environ.get("REPRO_SERVICE_CHAOS") == "1"
    scheduler = SweepScheduler(
        state_dir, policy=policy, chaos_enabled=chaos_enabled
    )
    await scheduler.start()
    service = _ServiceServer(scheduler)
    server = await asyncio.start_server(
        service.handle, settings.host, settings.port
    )
    bound_port = int(server.sockets[0].getsockname()[1])
    endpoint = _publish_endpoint(state_dir, settings.host, bound_port)
    if notify is not None:
        notify({"host": settings.host, "port": bound_port, "pid": os.getpid()})
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: List[signal.Signals] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (ValueError, NotImplementedError, RuntimeError):
            continue  # non-main thread or exotic platform; rely on stop()
    try:
        await stop.wait()
        scheduler.queue.draining = True  # shed before the loop winds down
        await scheduler.drain()
    finally:
        server.close()
        try:
            await asyncio.wait_for(server.wait_closed(), timeout=2.0)
        except (asyncio.TimeoutError, TimeoutError):
            pass  # a lingering stream client must not block drain
        for signum in installed:
            loop.remove_signal_handler(signum)
        try:
            endpoint.unlink(missing_ok=True)
        except OSError:
            pass  # state_dir may already be gone in teardown
    return 0
