"""Stdlib HTTP client for the sweep daemon.

Used by ``repro submit``, the chaos soak harness, and the tests — a
thin `urllib` wrapper that discovers the daemon through the endpoint
file it publishes, always sets socket timeouts, and returns
``(http_status, parsed_body)`` pairs instead of raising on 4xx/5xx:
shed (429) and draining (503) responses are *expected* outcomes the
callers count, not exceptions.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.errors import ServiceError


class ServiceClient:
    """One daemon endpoint, with JSON helpers and socket timeouts."""

    def __init__(
        self, host: str, port: int, timeout_s: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    @classmethod
    def from_state_dir(
        cls, state_dir: Any, timeout_s: float = 30.0
    ) -> "ServiceClient":
        """Discover the daemon through its published endpoint file."""
        endpoint = Path(state_dir) / "service.json"
        try:
            payload = json.loads(endpoint.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"no daemon endpoint at {endpoint} (is `repro serve` "
                f"running against this state dir?): {exc}"
            ) from exc
        return cls(payload["host"], int(payload["port"]), timeout_s)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _url(self, path: str) -> str:
        return f"http://{self.host}:{self.port}{path}"

    def _call(
        self, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(
            self._url(path),
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.status, json.loads(resp.read().decode() or "{}")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode() if exc.fp else ""
            try:
                parsed = json.loads(raw or "{}")
            except json.JSONDecodeError:
                parsed = {"error": "protocol", "message": raw}
            return exc.code, parsed

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        return self._call("/healthz")

    def readyz(self) -> Tuple[int, Dict[str, Any]]:
        return self._call("/readyz")

    def stats(self) -> Tuple[int, Dict[str, Any]]:
        return self._call("/api/v1/stats")

    def submit(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Submit a sweep; 202 admitted, 200 deduped, 429/503 shed."""
        return self._call("/api/v1/submit", body=payload)

    def status(self, request_id: str) -> Tuple[int, Dict[str, Any]]:
        return self._call(f"/api/v1/requests/{request_id}")

    def results(self, request_id: str) -> Tuple[int, Dict[str, Any]]:
        return self._call(f"/api/v1/requests/{request_id}/results")

    def stream(self, request_id: str) -> Iterator[Dict[str, Any]]:
        """Iterate a request's chunked-JSONL live stream.

        Yields each record as it lands (``urllib`` de-chunks
        transparently); the final yielded record has ``kind == "done"``.
        Raises :class:`~repro.errors.ServiceError` on a non-200.
        """
        req = urllib.request.Request(
            self._url(f"/api/v1/requests/{request_id}/stream")
        )
        try:
            resp = urllib.request.urlopen(req, timeout=self.timeout_s)
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                f"stream for {request_id} failed: HTTP {exc.code}"
            ) from exc
        with resp:
            for raw_line in resp:
                line = raw_line.strip()
                if line:
                    yield json.loads(line)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def wait_ready(self, timeout_s: float = 10.0) -> bool:
        """Poll ``/healthz`` until the daemon answers or time runs out."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                status, _ = self.healthz()
            except (urllib.error.URLError, ConnectionError, OSError):
                time.sleep(0.05)
                continue
            if status == 200:
                return True
            time.sleep(0.05)
        return False

    def wait_done(
        self, request_id: str, timeout_s: float = 120.0
    ) -> Dict[str, Any]:
        """Poll a request's status until it reaches ``done``."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            status, body = self.status(request_id)
            if status == 200 and body.get("state") == "done":
                return body
            time.sleep(0.1)
        raise ServiceError(
            f"request {request_id} did not finish within {timeout_s:g}s"
        )
