"""Chaos soak harness: prove the daemon's promises under real kills.

The harness drives a *real* daemon subprocess (``python -m repro
serve``) through the failure modes the service claims to absorb, then
audits the journal for the three properties the ISSUE's acceptance
criteria name:

1. **Zero lost requests** — every admitted request (HTTP 202, plus any
   re-admitted on recovery) reaches a ``done`` journal record with a
   record for every one of its cells (completed or explicitly
   degraded).
2. **No duplicates** — no request is journaled twice, no (request,
   cell, system) record appears twice, even across a daemon SIGKILL +
   restart (monotone checkpoint recovery: the post-restart journal is
   a superset of the pre-kill valid prefix).
3. **Clean drain** — SIGTERM produces exit code 0 after the in-flight
   work is journaled.

The injected chaos: one worker SIGKILL (the ``worker-crash-once``
request hook), one circuit-breaker trip (repeated ``fail`` hooks on
one config family), one blown SLO deadline, fault-schedule-seeded
cycle-fidelity load, and — the big one — a SIGKILL of the *daemon
itself* mid-soak followed by a restart against the same state dir.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

import repro
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.scheduler import JournalReplay, replay_journal


@dataclass(frozen=True)
class SoakSettings:
    """Knobs of one chaos soak run.

    Attributes:
        state_dir: daemon state directory (journal, cache, endpoint
            file); the harness owns it for the run's duration.
        seed: seeds the fault-schedule of the cycle-fidelity workload
            and tags the request batch (re-running with the same seed
            replays the same workload against a fresh state dir).
        kill_daemon: SIGKILL the daemon mid-soak and restart it against
            the same state dir (the recovery half of the soak).
        extra_requests: additional plain analytic requests beyond the
            fixed chaos set, to keep the queue busy across the kill.
        startup_timeout_s: budget for each daemon boot to answer
            ``/healthz``.
        request_timeout_s: budget for any single request to finish.
    """

    state_dir: str
    seed: int = 0
    kill_daemon: bool = True
    extra_requests: int = 3
    startup_timeout_s: float = 30.0
    request_timeout_s: float = 180.0


def _daemon_argv(state_dir: Path) -> List[str]:
    return [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--state-dir",
        str(state_dir),
        "--workers",
        "2",
        "--cell-timeout",
        "60",
        "--max-attempts",
        "2",
        "--backoff-base",
        "0.02",
        "--backoff-cap",
        "0.1",
        "--breaker-threshold",
        "2",
        "--breaker-cooldown",
        "60",
        "--queue-capacity",
        "64",
    ]


def _spawn_daemon(state_dir: Path) -> "subprocess.Popen[bytes]":
    """Boot one daemon subprocess with chaos hooks armed."""
    env = dict(os.environ)
    src_root = Path(repro.__file__).resolve().parents[1]
    env["PYTHONPATH"] = (
        f"{src_root}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(src_root)
    )
    env["REPRO_SERVICE_CHAOS"] = "1"
    log = open(state_dir / "daemon.log", "ab")
    try:
        return subprocess.Popen(
            _daemon_argv(state_dir),
            env=env,
            stdout=log,
            stderr=log,
        )
    finally:
        log.close()  # the child holds its own descriptor


def _await_daemon(
    state_dir: Path, proc: "subprocess.Popen[bytes]", timeout_s: float
) -> ServiceClient:
    """Wait for the endpoint file + a 200 ``/healthz``."""
    deadline = time.monotonic() + timeout_s
    endpoint = state_dir / "service.json"
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise ServiceError(
                f"daemon exited during startup (code {proc.returncode})"
            )
        if endpoint.exists():
            try:
                client = ServiceClient.from_state_dir(state_dir, timeout_s=10.0)
            except ServiceError:
                time.sleep(0.05)
                continue
            if client.wait_ready(timeout_s=1.0):
                return client
        time.sleep(0.05)
    raise ServiceError(f"daemon not healthy within {timeout_s:g}s")


def _workload(settings: SoakSettings) -> List[Tuple[str, Dict[str, Any]]]:
    """The soak's request batch: (label, wire payload) pairs.

    Two clients interleave (exercising WRR fairness); the chaos set
    covers one worker SIGKILL, one breaker trip (two ``fail`` requests
    on the same family so the second lands on an open breaker), one
    blown deadline, and one fault-seeded cycle-fidelity request.
    Tags carry the soak seed so repeated soaks never de-dupe against a
    previous run's journal by accident.
    """
    run = f"soak-{settings.seed}"
    batch: List[Tuple[str, Dict[str, Any]]] = [
        (
            "worker-crash",
            {
                "client_id": "alice",
                "graphs": ["PK", "LJ"],
                "algorithms": ["bfs"],
                "systems": ["Gunrock", "ScalaGraph-512"],
                "scale_shift": -9,
                "tag": f"{run}-crash",
                "chaos": ["worker-crash-once"],
            },
        ),
        (
            "breaker-trip-a",
            {
                "client_id": "bob",
                "graphs": ["PK"],
                "algorithms": ["cc"],
                "systems": ["Gunrock"],
                "scale_shift": -9,
                "tag": f"{run}-fail-a",
                "chaos": ["fail"],
            },
        ),
        (
            "breaker-trip-b",
            {
                "client_id": "bob",
                "graphs": ["LJ"],
                "algorithms": ["cc"],
                "systems": ["Gunrock"],
                "scale_shift": -9,
                "tag": f"{run}-fail-b",
                "chaos": ["fail"],
            },
        ),
        (
            "blown-deadline",
            {
                "client_id": "alice",
                "graphs": ["OR"],
                "algorithms": ["pagerank"],
                "systems": ["Gunrock"],
                "scale_shift": -9,
                "deadline_s": 0.001,
                "tag": f"{run}-deadline",
            },
        ),
        (
            "cycle-faulted",
            {
                "client_id": "bob",
                "graphs": ["PK"],
                "algorithms": ["bfs"],
                "systems": ["ScalaGraph-128"],
                "scale_shift": -9,
                "max_iterations": 4,
                "fidelity": "cycle",
                "fault_seed": settings.seed,
                "tag": f"{run}-cycle",
            },
        ),
    ]
    algorithms = ("bfs", "sssp", "pagerank")
    graphs = ("PK", "LJ", "OR", "RM", "TW")
    for index in range(settings.extra_requests):
        batch.append(
            (
                f"filler-{index}",
                {
                    "client_id": "alice" if index % 2 == 0 else "bob",
                    "graphs": [graphs[index % len(graphs)]],
                    "algorithms": [algorithms[index % len(algorithms)]],
                    "systems": ["Gunrock", "GraphDynS-128"],
                    "scale_shift": -9,
                    "tag": f"{run}-filler-{index}",
                },
            )
        )
    return batch


def _audit_journal(
    replay: JournalReplay, admitted: Set[str]
) -> Dict[str, Any]:
    """The zero-lost / no-duplicate audit over a final journal."""
    lost = sorted(rid for rid in admitted if rid not in replay.done)
    duplicate_cells: List[str] = []
    incomplete: List[str] = []
    degraded_cells = 0
    for rid in admitted:
        seen: Set[Tuple[str, str, str]] = set()
        for record in replay.cells.get(rid, []):
            cell = (record["graph"], record["algorithm"], record["system"])
            if cell in seen:
                duplicate_cells.append(f"{rid}:{'/'.join(cell)}")
            seen.add(cell)
            if record.get("degraded"):
                degraded_cells += 1
        done = replay.done.get(rid)
        if done is not None and done.get("cells") != len(seen):
            incomplete.append(rid)
    return {
        "lost_requests": lost,
        "duplicate_cells": duplicate_cells,
        "incomplete_requests": incomplete,
        "degraded_cells": degraded_cells,
    }


def run_soak(settings: SoakSettings) -> Dict[str, Any]:
    """Run the full chaos soak; returns the audit report.

    ``report["ok"]`` is the single gate CI checks: it requires zero
    lost requests, zero duplicate cells, at least one degraded cell
    (the chaos actually fired), at least one breaker trip, a clean
    SIGTERM drain (exit 0) — and, when ``kill_daemon`` is set, that
    the post-restart journal is a superset of the pre-kill prefix.
    """
    state_dir = Path(settings.state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    report: Dict[str, Any] = {
        "seed": settings.seed,
        "kill_daemon": settings.kill_daemon,
        "admitted": 0,
        "rejected": 0,
        "daemon_restarts": 0,
    }
    admitted: Set[str] = set()
    proc = _spawn_daemon(state_dir)
    try:
        client = _await_daemon(state_dir, proc, settings.startup_timeout_s)
        batch = _workload(settings)
        # Phase 1: submit everything up front so the kill lands with
        # work still queued behind the in-flight cell.
        for _, payload in batch:
            http, body = client.submit(payload)
            if http in (200, 202):
                admitted.add(body["request_id"])
            else:
                report["rejected"] += 1
        report["admitted"] = len(admitted)

        pre_kill = JournalReplay()
        if settings.kill_daemon:
            # Phase 2: let some cells land, then SIGKILL the daemon.
            deadline = time.monotonic() + settings.request_timeout_s
            while time.monotonic() < deadline:
                if replay_journal(state_dir / "journal.jsonl").cells:
                    break
                time.sleep(0.05)
            pre_kill = replay_journal(state_dir / "journal.jsonl")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            report["daemon_restarts"] = 1
            proc = _spawn_daemon(state_dir)
            client = _await_daemon(
                state_dir, proc, settings.startup_timeout_s
            )

        # Phase 3: wait for every admitted request to finish, and
        # check the stream replays exactly the journaled records.
        for request_id in sorted(admitted):
            client.wait_done(
                request_id, timeout_s=settings.request_timeout_s
            )
        probe_id = sorted(admitted)[0] if admitted else None
        stream_consistent = True
        if probe_id is not None:
            streamed = [
                r for r in client.stream(probe_id) if r.get("kind") == "cell"
            ]
            _, results = client.results(probe_id)
            stream_consistent = len(streamed) == len(
                results.get("records", [])
            )
        report["stream_consistent"] = stream_consistent
        _, stats = client.stats()
        trips = sum(
            family.get("trips", 0)
            for family in stats.get("breakers", {})
            .get("families", {})
            .values()
        )
        report["breaker_trips"] = trips

        # Phase 4: graceful drain.
        proc.send_signal(signal.SIGTERM)
        report["drain_exit_code"] = proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    final = replay_journal(state_dir / "journal.jsonl")
    report.update(_audit_journal(final, admitted))
    monotone = True
    if settings.kill_daemon:
        final_cells = {
            (rid, r["graph"], r["algorithm"], r["system"])
            for rid, records in final.cells.items()
            for r in records
        }
        pre_cells = {
            (rid, r["graph"], r["algorithm"], r["system"])
            for rid, records in pre_kill.cells.items()
            for r in records
        }
        monotone = pre_cells.issubset(final_cells)
    report["monotone_recovery"] = monotone
    report["ok"] = bool(
        report["admitted"] > 0
        and not report["lost_requests"]
        and not report["duplicate_cells"]
        and not report["incomplete_requests"]
        and report["degraded_cells"] > 0
        and report["breaker_trips"] > 0
        and report["stream_consistent"]
        and report["drain_exit_code"] == 0
        and monotone
    )
    return report
