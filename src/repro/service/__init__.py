"""The sweep service: a long-lived, degradation-aware experiment daemon.

PR 4 built the resilience substrate — seeded fault injection, per-cell
timeouts/retries with SIGKILL isolation, crash-resumable checkpointed
sweeps — but it was only reachable through one-shot batch CLI runs.
This package puts a *service control plane* in front of the same
machinery, the "sustained throughput under contention" framing
GraphScale/ScalaBFS apply to the accelerator applied to the harness
itself:

* :mod:`~repro.service.protocol` — content-addressed request/response
  wire format (requests de-dupe by content key, cells de-dupe against
  the shared :class:`~repro.experiments.store.ResultCache`).
* :mod:`~repro.service.queue` — bounded admission queue with weighted
  round-robin per-client fairness; a full queue sheds load with an
  explicit 429 instead of building an unbounded backlog.
* :mod:`~repro.service.breaker` — per-config-family circuit breakers:
  repeated worker crashes / sanitizer trips open the family and shed it
  to *degraded* responses (analytic model instead of cycle-accurate,
  marked ``degraded: true``) until a cooldown probe succeeds.
* :mod:`~repro.service.scheduler` — the async execution core: worker
  pool with crash isolation and rebuild, SLO deadline propagation into
  per-cell timeouts, jittered exponential retry backoff, an fsync'd
  service journal making admitted requests durable across restarts.
* :mod:`~repro.service.server` — the asyncio HTTP/JSON daemon:
  submit/status/stream endpoints (incremental chunked-JSONL result
  streaming), health/readiness with queue depth and breaker state, and
  graceful drain on SIGTERM (stop admitting, finish or journal
  in-flight, fsync, exit 0).
* :mod:`~repro.service.client` — the stdlib client the ``repro submit``
  CLI and the tests use.
* :mod:`~repro.service.chaos` — the soak harness: replays a
  fault-schedule-seeded workload plus worker SIGKILLs against a real
  daemon process and asserts zero lost or duplicated requests and
  monotone checkpoint recovery.

Run it: ``repro serve`` / ``repro submit`` / ``repro soak``; see
``docs/SERVICE.md`` for the API schema, SLO semantics, the breaker
state machine, and the drain protocol.
"""

from repro.service.breaker import BreakerPolicy, CircuitBreakerBank
from repro.service.client import ServiceClient
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SweepRequest,
    request_key,
)
from repro.service.queue import AdmissionQueue
from repro.service.scheduler import ServicePolicy, SweepScheduler
from repro.service.server import ServiceSettings, serve

__all__ = [
    "AdmissionQueue",
    "BreakerPolicy",
    "CircuitBreakerBank",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServicePolicy",
    "ServiceSettings",
    "SweepRequest",
    "SweepScheduler",
    "request_key",
    "serve",
]
