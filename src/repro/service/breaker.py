"""Per-config-family circuit breakers for the sweep service.

A *config family* is the blast radius of a systematic failure: the
(algorithm, fidelity) slice of the sweep space whose cells share the
code paths that crash together.  When a family keeps producing
:class:`~repro.errors.WorkerCrashError`/:class:`~repro.errors.SanitizerError`
outcomes, retrying every new request against it just burns the worker
pool (each crash costs a pool rebuild) and starves healthy families.
The breaker converts that into fast, explicit degradation:

* **CLOSED** — normal operation; consecutive failures are counted and
  any success resets the count.
* **OPEN** — tripped after ``failure_threshold`` consecutive failures;
  cells in the family are *shed to the analytic model in-process* and
  marked ``degraded: true`` (reason ``breaker-open``) without touching
  the pool.  After ``cooldown_s`` the next asking cell becomes a probe.
* **HALF_OPEN** — exactly one probe runs at full fidelity; success
  closes the breaker, failure re-opens it and restarts the cooldown.
  Concurrent cells during the probe stay degraded.

State is a struct-of-arrays over family slots with the dtype contract
in :data:`BUFFER_DTYPES`; clocks are injected (``time.monotonic``
values) so tests drive transitions without sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.errors import CircuitOpenError

#: Breaker states as stored in the ``_state`` array.
CLOSED = 0
OPEN = 1
HALF_OPEN = 2

_STATE_NAMES = {CLOSED: "closed", OPEN: "open", HALF_OPEN: "half-open"}

#: Declared dtype contract for the per-family-slot state arrays
#: (SIM604 checks every allocation site against this table).
BUFFER_DTYPES = {
    "_state": "int64",
    "_failures": "int64",
    "_opened_at": "float64",
    "_trips": "int64",
    "_successes": "int64",
}


@dataclass(frozen=True)
class BreakerPolicy:
    """Tunables of one :class:`CircuitBreakerBank`.

    Attributes:
        failure_threshold: consecutive failures that trip a family from
            CLOSED to OPEN.
        cooldown_s: seconds an OPEN family sheds before the next asking
            cell is admitted as a HALF_OPEN probe.
        max_families: family-slot table size (slots are never
            reclaimed; the family alphabet is small and static).
    """

    failure_threshold: int = 3
    cooldown_s: float = 30.0
    max_families: int = 64


class CircuitBreakerBank:
    """A bank of circuit breakers keyed by config-family label."""

    def __init__(self, policy: Optional[BreakerPolicy] = None) -> None:
        self.policy = policy or BreakerPolicy()
        if self.policy.failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if self.policy.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        size = self.policy.max_families
        self._slots: Dict[str, int] = {}
        self._state = np.zeros(size, dtype=np.int64)
        self._failures = np.zeros(size, dtype=np.int64)
        self._opened_at = np.zeros(size, dtype=np.float64)
        self._trips = np.zeros(size, dtype=np.int64)
        self._successes = np.zeros(size, dtype=np.int64)

    def _slot(self, family: str) -> int:
        slot = self._slots.get(family)
        if slot is None:
            if len(self._slots) >= self.policy.max_families:
                raise ValueError(
                    f"breaker bank full ({self.policy.max_families} "
                    f"families); cannot track {family!r}"
                )
            slot = len(self._slots)
            self._slots[family] = slot
        return slot

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, family: str, now: float) -> bool:
        """Gate one full-fidelity attempt for ``family`` at time ``now``.

        Returns True when the attempt may run (CLOSED, or this call won
        the HALF_OPEN probe slot after the cooldown elapsed); raises
        :class:`~repro.errors.CircuitOpenError` when the family is shed
        (OPEN within cooldown, or another probe is already in flight).
        The caller must report the attempt's outcome via
        :meth:`record_success` / :meth:`record_failure`, otherwise a
        HALF_OPEN breaker would wedge.
        """
        slot = self._slot(family)
        state = int(self._state[slot])
        if state == CLOSED:
            return True
        if state == OPEN:
            if now - float(self._opened_at[slot]) >= self.policy.cooldown_s:
                self._state[slot] = HALF_OPEN
                return True
            raise CircuitOpenError(family)
        # HALF_OPEN: a probe is already in flight; shed until it lands.
        raise CircuitOpenError(family)

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------
    def record_success(self, family: str) -> None:
        """A full-fidelity attempt in ``family`` completed cleanly."""
        slot = self._slot(family)
        self._successes[slot] += 1
        self._failures[slot] = 0
        self._state[slot] = CLOSED

    def record_failure(self, family: str, now: float) -> bool:
        """A full-fidelity attempt failed; returns True if now OPEN.

        A failed HALF_OPEN probe re-opens immediately (the cooldown
        restarts from ``now``); in CLOSED the consecutive-failure count
        advances and trips at the policy threshold.
        """
        slot = self._slot(family)
        self._failures[slot] += 1
        state = int(self._state[slot])
        should_open = state == HALF_OPEN or (
            int(self._failures[slot]) >= self.policy.failure_threshold
        )
        if should_open:
            self._state[slot] = OPEN
            self._opened_at[slot] = now
            self._trips[slot] += 1
        return bool(should_open)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state(self, family: str) -> str:
        slot = self._slots.get(family)
        return "closed" if slot is None else _STATE_NAMES[int(self._state[slot])]

    def open_families(self) -> Dict[str, str]:
        """Families currently not CLOSED, for readiness reporting."""
        return {
            family: _STATE_NAMES[int(self._state[slot])]
            for family, slot in sorted(self._slots.items())
            if int(self._state[slot]) != CLOSED
        }

    def snapshot(self) -> Dict[str, Any]:
        """Breaker state for the health/stats endpoints."""
        return {
            "policy": {
                "failure_threshold": self.policy.failure_threshold,
                "cooldown_s": self.policy.cooldown_s,
            },
            "families": {
                family: {
                    "state": _STATE_NAMES[int(self._state[slot])],
                    "consecutive_failures": int(self._failures[slot]),
                    "trips": int(self._trips[slot]),
                    "successes": int(self._successes[slot]),
                }
                for family, slot in sorted(self._slots.items())
            },
        }
