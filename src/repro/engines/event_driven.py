"""Event-driven (asynchronous) graph execution — the GraphPulse model.

GraphPulse keeps every in-flight vertex update as an *event* in a large
on-chip queue; events targeting the same vertex coalesce in the queue
(the Reduce function applied early, like ScalaGraph's aggregation
pipeline but centralised), and processing needs no iteration barriers.

Two program classes are supported:

* **Monotonic programs** (BFS, SSSP, CC, SSWP): an event carries a
  candidate property; processing reduces it into the vertex and, on
  improvement, emits events to the out-neighbours.  This is classic
  asynchronous label correcting and reaches the same fixed point as the
  bulk-synchronous engine.
* **Accumulative PageRank** (delta/residual formulation, the
  Gauss-Southwell "forward push"): each vertex keeps a rank and a
  pending residual; processing moves the residual into the rank and
  pushes ``damping x residual / out_degree`` to the neighbours.  Ranks
  converge to PageRank as the residual threshold goes to zero.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict

import numpy as np

from repro.algorithms.base import ProgramContext, VertexProgram
from repro.algorithms.pagerank import PageRank
from repro.errors import ConfigurationError, SimulationError
from repro.graph.csr import CSRGraph


@dataclass
class EventStats:
    """Counters of one event-driven run."""

    events_generated: int = 0
    events_coalesced: int = 0
    events_processed: int = 0
    peak_queue_size: int = 0

    @property
    def coalesce_rate(self) -> float:
        if self.events_generated == 0:
            return 0.0
        return self.events_coalesced / self.events_generated


@dataclass
class EventRunResult:
    """Outcome of an event-driven execution."""

    properties: np.ndarray
    stats: EventStats = field(default_factory=EventStats)
    converged: bool = True


class _CoalescingQueue:
    """FIFO of (vertex, value) events with same-vertex coalescing.

    GraphPulse's queue merges an incoming event into a resident event
    for the same vertex using the Reduce function — one queue slot per
    live vertex.
    """

    def __init__(self, reduce_ufunc, coalesce: bool = True) -> None:
        self._order: Deque[int] = deque()
        self._values: Dict[int, float] = {}
        self._reduce = reduce_ufunc
        self.coalesce = coalesce
        self.stats_coalesced = 0

    def __len__(self) -> int:
        return len(self._order)

    def push(self, vertex: int, value: float) -> None:
        if self.coalesce and vertex in self._values:
            self._values[vertex] = float(
                self._reduce(self._values[vertex], value)
            )
            self.stats_coalesced += 1
            return
        if vertex in self._values:
            # Non-coalescing mode still needs one slot per event.
            self._order.append(vertex)
            self._values[vertex] = float(
                self._reduce(self._values[vertex], value)
            )
            return
        self._order.append(vertex)
        self._values[vertex] = float(value)

    def pop(self) -> tuple[int, float]:
        while self._order:
            vertex = self._order.popleft()
            if vertex in self._values:
                return vertex, self._values.pop(vertex)
        raise SimulationError("pop from empty event queue")


class EventDrivenEngine:
    """Asynchronous executor for vertex programs.

    Args:
        coalesce: merge same-vertex events in the queue (GraphPulse's
            key mechanism; False degrades to a plain FIFO).
        residual_threshold: for accumulative PageRank, residuals below
            this are dropped (controls accuracy vs work).
        max_events: safety bound on processed events.
    """

    def __init__(
        self,
        coalesce: bool = True,
        residual_threshold: float = 1e-9,
        max_events: int = 100_000_000,
    ) -> None:
        if residual_threshold < 0:
            raise ConfigurationError("residual_threshold must be >= 0")
        self.coalesce = coalesce
        self.residual_threshold = residual_threshold
        self.max_events = max_events

    def run(
        self, program: VertexProgram, graph: CSRGraph
    ) -> EventRunResult:
        if isinstance(program, PageRank):
            return self._run_pagerank(program, graph)
        if not program.monotonic:
            raise ConfigurationError(
                "the event-driven engine supports monotonic programs and "
                f"PageRank; {program.name!r} is neither"
            )
        return self._run_monotonic(program, graph)

    # ------------------------------------------------------------------
    # Monotonic label correcting
    # ------------------------------------------------------------------
    def _run_monotonic(
        self, program: VertexProgram, graph: CSRGraph
    ) -> EventRunResult:
        ctx = ProgramContext(graph=graph)
        program.validate(ctx)
        props = program.initial_properties(ctx)
        stats = EventStats()
        queue = _CoalescingQueue(program.reduce_ufunc, self.coalesce)

        def emit_from(vertex: int) -> None:
            neighbors = graph.neighbors(vertex)
            if neighbors.size == 0:
                return
            weights = graph.edge_weights(vertex)
            sources = np.full(neighbors.size, vertex, dtype=np.int64)
            values = program.scatter_value(
                ctx, sources, weights, np.full(neighbors.size, props[vertex])
            )
            for u, value in zip(neighbors, values):
                queue.push(int(u), float(value))
                stats.events_generated += 1

        # Seed: the initial frontier's own property is its first event.
        for vertex in program.initial_active(ctx):
            emit_from(int(vertex))
        while len(queue):
            stats.peak_queue_size = max(stats.peak_queue_size, len(queue))
            vertex, value = queue.pop()
            stats.events_processed += 1
            if stats.events_processed > self.max_events:
                raise SimulationError("event budget exhausted")
            improved = float(program.reduce_ufunc(props[vertex], value))
            if improved != props[vertex]:
                props[vertex] = improved
                emit_from(vertex)

        stats.events_coalesced = queue.stats_coalesced
        return EventRunResult(properties=props, stats=stats)

    # ------------------------------------------------------------------
    # Accumulative PageRank (forward push / Gauss-Southwell)
    # ------------------------------------------------------------------
    def _run_pagerank(
        self, program: PageRank, graph: CSRGraph
    ) -> EventRunResult:
        ctx = ProgramContext(graph=graph)
        program.validate(ctx)
        n = max(graph.num_vertices, 1)
        damping = program.damping
        teleport = (
            program.personalization
            if program.personalization is not None
            else np.full(graph.num_vertices, 1.0 / n)
        )
        rank = np.zeros(graph.num_vertices, dtype=np.float64)
        stats = EventStats()
        queue = _CoalescingQueue(np.add, self.coalesce)
        threshold = max(self.residual_threshold, program.tolerance / 10)

        for vertex in range(graph.num_vertices):
            seed = (1.0 - damping) * teleport[vertex]
            if seed > 0:
                queue.push(vertex, seed)
                stats.events_generated += 1

        degrees = ctx.out_degrees
        while len(queue):
            stats.peak_queue_size = max(stats.peak_queue_size, len(queue))
            vertex, residual = queue.pop()
            stats.events_processed += 1
            if stats.events_processed > self.max_events:
                raise SimulationError("event budget exhausted")
            rank[vertex] += residual
            degree = int(degrees[vertex])
            if degree == 0:
                continue
            push = damping * residual / degree
            if push < threshold:
                continue
            for u in graph.neighbors(vertex):
                queue.push(int(u), push)
                stats.events_generated += 1

        stats.events_coalesced = queue.stats_coalesced
        return EventRunResult(properties=rank, stats=stats)
