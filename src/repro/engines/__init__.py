"""Alternative execution engines.

The paper's Figure 1 model is bulk-synchronous (Scatter then Apply).
GraphPulse [24] — a system the paper compares against — is
*event-driven*: vertex updates are in-flight events in a big on-chip
queue that coalesces same-vertex events, and processing is asynchronous.
:mod:`repro.engines.event_driven` implements that execution model
functionally; :class:`repro.baselines.GraphPulse` wraps it in a timing
model.
"""

from repro.engines.event_driven import (
    EventDrivenEngine,
    EventRunResult,
    EventStats,
)

__all__ = ["EventDrivenEngine", "EventRunResult", "EventStats"]
