"""Off-chip (HBM) and on-chip (scratchpad) memory models.

The U280 card provides two 4 GB HBM2 stacks with 460 GB/s aggregate
bandwidth; each prefetcher binds to one of 32 pseudo channels
(Section III-A / V-A).  The HBM model enforces bandwidth and access
granularity (64-byte lines); the scratchpad model tracks slice capacity
and single-port serialisation of same-slice reduces.
"""

from repro.memory.hbm import HBMConfig, HBMModel
from repro.memory.interleave import ChannelInterleaver, ChannelLoadReport
from repro.memory.request import AccessType, MemoryRequest, cachelines_touched
from repro.memory.spd import ScratchpadConfig, ScratchpadSlice

__all__ = [
    "HBMConfig",
    "HBMModel",
    "ChannelInterleaver",
    "ChannelLoadReport",
    "AccessType",
    "MemoryRequest",
    "cachelines_touched",
    "ScratchpadConfig",
    "ScratchpadSlice",
]
