"""HBM pseudo-channel interleaving and channel-load accounting.

Each prefetcher binds to one HBM pseudo channel (Section III-A), and the
memory system only delivers its aggregate bandwidth when the address
stream spreads evenly over the channels.  Addresses interleave at a
fixed granularity (256 B on the U280's HBM subsystem); this module maps
address ranges to channels and computes the channel-imbalance bound a
skewed stream pays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.hbm import HBMConfig


@dataclass(frozen=True)
class ChannelLoadReport:
    """Bytes each pseudo channel serves for one access batch."""

    bytes_per_channel: np.ndarray

    @property
    def total_bytes(self) -> float:
        return float(self.bytes_per_channel.sum())

    @property
    def max_channel_bytes(self) -> float:
        return float(self.bytes_per_channel.max()) if self.bytes_per_channel.size else 0.0

    @property
    def imbalance(self) -> float:
        """Busiest channel over the mean (1.0 = perfectly interleaved)."""
        mean = self.bytes_per_channel.mean() if self.bytes_per_channel.size else 0.0
        if mean == 0:
            return 1.0
        return self.max_channel_bytes / float(mean)


class ChannelInterleaver:
    """Address-to-pseudo-channel mapping at a fixed granularity."""

    def __init__(
        self, config: HBMConfig | None = None, granularity: int = 256
    ) -> None:
        if granularity <= 0:
            raise ConfigurationError("granularity must be positive")
        self.config = config or HBMConfig()
        self.granularity = granularity

    @property
    def num_channels(self) -> int:
        return self.config.num_pseudo_channels

    def channel_of(self, addresses: np.ndarray) -> np.ndarray:
        """Pseudo channel serving each byte address."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size and addresses.min() < 0:
            raise ConfigurationError("addresses must be non-negative")
        return (addresses // self.granularity) % self.num_channels

    def stream_report(self, start: int, num_bytes: int) -> ChannelLoadReport:
        """Channel loads of one contiguous stream.

        A long sequential stream covers all channels nearly evenly —
        which is why ScalaGraph's sequential edge access achieves the
        aggregate bandwidth.
        """
        if num_bytes < 0 or start < 0:
            raise ConfigurationError("stream must be non-negative")
        loads = np.zeros(self.num_channels, dtype=np.float64)
        if num_bytes == 0:
            return ChannelLoadReport(loads)
        first = start // self.granularity
        last = (start + num_bytes - 1) // self.granularity
        blocks = np.arange(first, last + 1, dtype=np.int64)
        sizes = np.full(blocks.size, float(self.granularity))
        sizes[0] = min(
            (first + 1) * self.granularity - start, num_bytes
        )
        if blocks.size > 1:
            sizes[-1] = start + num_bytes - last * self.granularity
        np.add.at(loads, blocks % self.num_channels, sizes)
        return ChannelLoadReport(loads)

    def access_report(
        self, addresses: np.ndarray, bytes_per_access: int = 64
    ) -> ChannelLoadReport:
        """Channel loads of scattered accesses (one line each)."""
        if bytes_per_access <= 0:
            raise ConfigurationError("bytes_per_access must be positive")
        loads = np.zeros(self.num_channels, dtype=np.float64)
        channels = self.channel_of(np.asarray(addresses))
        if channels.size:
            np.add.at(loads, channels, float(bytes_per_access))
        return ChannelLoadReport(loads)

    def effective_cycles(
        self, report: ChannelLoadReport, frequency_hz: float
    ) -> float:
        """Cycles to serve a batch given per-channel bandwidth: the
        busiest channel finishes last."""
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        channel_bytes_per_cycle = (
            self.config.bandwidth_per_channel_gbs * 1e9 / frequency_hz
        )
        return report.max_channel_bytes / channel_bytes_per_cycle
