"""Memory request records and access-granularity accounting."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class AccessType(enum.Enum):
    """What a memory request fetches (matches the paper's traffic
    classes: edges and the active vertex list stream from HBM, vertex
    properties live on-chip)."""

    EDGE = "edge"
    ACTIVE_VERTEX = "active_vertex"
    VERTEX_PROPERTY = "vertex_property"
    WRITE_BACK = "write_back"


@dataclass(frozen=True)
class MemoryRequest:
    """One off-chip request.

    Attributes:
        address: byte address.
        size: useful bytes requested.
        access: traffic class.
    """

    address: int
    size: int
    access: AccessType = AccessType.EDGE

    def lines(self, line_size: int = 64) -> int:
        """64-byte lines the request actually occupies on the bus."""
        first = self.address // line_size
        last = (self.address + max(self.size, 1) - 1) // line_size
        return int(last - first + 1)


def cachelines_touched(addresses: np.ndarray, line_size: int = 64) -> int:
    """Distinct cachelines touched by a batch of single-word accesses.

    Random vertex accesses fetch a whole 64-byte line to use 4 bytes
    (Section II-A); this helper quantifies that amplification for the
    baseline GPU/CPU models.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size == 0:
        return 0
    return int(np.unique(addresses // line_size).size)
