"""Scratchpad (SPD) slice model.

ScalaGraph's on-chip memory is a 6 MB BRAM scratchpad evenly sliced across
all PEs (Sections III-A, V-A); vertex properties are distributed over the
slices by a simple vertex-ID hash.  The model tracks slice capacity (which
determines how many graph partitions a run needs) and the single-port
serialisation of reduces landing on the same slice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CapacityError, ConfigurationError

MB = 1 << 20


@dataclass(frozen=True)
class ScratchpadConfig:
    """Aggregate scratchpad parameters.

    Attributes:
        total_bytes: BRAM dedicated to vertex properties (paper: 6 MB).
        bytes_per_vertex: property footprint per vertex (value + flags).
        ports_per_slice: reduces a slice can serve per cycle (1 in the
            paper's design: conflicting updates serialise, which the
            aggregation pipeline mitigates).
    """

    total_bytes: int = 6 * MB
    bytes_per_vertex: int = 8
    ports_per_slice: int = 1

    def __post_init__(self) -> None:
        if self.total_bytes <= 0 or self.bytes_per_vertex <= 0:
            raise ConfigurationError("scratchpad sizes must be positive")
        if self.ports_per_slice <= 0:
            raise ConfigurationError("ports_per_slice must be positive")

    @property
    def capacity_vertices(self) -> int:
        """Vertex properties the whole scratchpad holds at once."""
        return self.total_bytes // self.bytes_per_vertex

    def slice_bytes(self, num_pes: int) -> int:
        """Bytes of one PE's slice when evenly divided."""
        if num_pes <= 0:
            raise ConfigurationError("num_pes must be positive")
        return self.total_bytes // num_pes

    def slice_capacity_vertices(self, num_pes: int) -> int:
        return self.slice_bytes(num_pes) // self.bytes_per_vertex


class ScratchpadSlice:
    """One PE's slice: bounded associative store of vertex properties."""

    def __init__(self, config: ScratchpadConfig, num_pes: int) -> None:
        self.config = config
        self.capacity = config.slice_capacity_vertices(num_pes)
        self._store: dict[int, float] = {}
        self.reduce_count = 0

    def __len__(self) -> int:
        return len(self._store)

    def load(self, vertex: int, value: float) -> None:
        """Place a vertex property in the slice (partition load)."""
        if vertex not in self._store and len(self._store) >= self.capacity:
            raise CapacityError(
                f"SPD slice full ({self.capacity} vertices)"
            )
        self._store[vertex] = value

    def read(self, vertex: int) -> float:
        if vertex not in self._store:
            raise CapacityError(f"vertex {vertex} not resident in slice")
        return self._store[vertex]

    def reduce(self, vertex: int, value: float, reduce_fn) -> float:
        """Execute the Reduce function against the stored V_temp."""
        self._store[vertex] = reduce_fn(self.read(vertex), value)
        self.reduce_count += 1
        return self._store[vertex]

    def clear(self) -> None:
        self._store.clear()


def slice_of(vertex_ids: np.ndarray, num_pes: int) -> np.ndarray:
    """The simple vertex-ID hash that spreads properties over slices
    (Section III-A: 'evenly partitioned to all SPDs via a simple hashing
    upon vertex IDs')."""
    return np.asarray(vertex_ids) % num_pes
