"""High-bandwidth memory (HBM2) bandwidth/latency model.

The Alveo U280 exposes two 4 GB HBM2 stacks totalling 460 GB/s across 32
pseudo channels (Sections III-A, V-A).  ScalaGraph's prefetchers stream
edges and the active-vertex list sequentially, so the model's core job is
to convert byte volumes into cycles at the accelerator clock, honouring
the 64-byte access granularity; a random-access helper models the
amplification suffered by architectures without ScalaGraph's on-chip
vertex storage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

GB = 1_000_000_000


@dataclass(frozen=True)
class HBMConfig:
    """Parameters of the off-chip memory system.

    Attributes:
        num_stacks: HBM stacks on the card (U280: 2).
        pseudo_channels_per_stack: pseudo channels per stack (16 each).
        total_bandwidth_gbs: aggregate bandwidth in GB/s (U280: 460).
        access_granularity: bytes moved per access (64-byte lines).
        capacity_bytes_per_stack: stack capacity (4 GB each).
        read_latency_cycles: load-to-use latency in accelerator cycles
            (hidden by prefetching in steady state, exposed on the first
            access of a phase).
    """

    num_stacks: int = 2
    pseudo_channels_per_stack: int = 16
    total_bandwidth_gbs: float = 460.0
    access_granularity: int = 64
    capacity_bytes_per_stack: int = 4 * GB
    read_latency_cycles: int = 128

    def __post_init__(self) -> None:
        if self.num_stacks <= 0 or self.pseudo_channels_per_stack <= 0:
            raise ConfigurationError("HBM channel counts must be positive")
        if self.total_bandwidth_gbs <= 0:
            raise ConfigurationError("HBM bandwidth must be positive")
        if self.access_granularity <= 0:
            raise ConfigurationError("access granularity must be positive")

    @property
    def num_pseudo_channels(self) -> int:
        return self.num_stacks * self.pseudo_channels_per_stack

    @property
    def bandwidth_per_stack_gbs(self) -> float:
        return self.total_bandwidth_gbs / self.num_stacks

    @property
    def bandwidth_per_channel_gbs(self) -> float:
        return self.total_bandwidth_gbs / self.num_pseudo_channels

    @property
    def total_capacity_bytes(self) -> int:
        """Aggregate card capacity; the accelerator's capacity guard
        rejects graphs whose off-chip footprint exceeds it."""
        return self.num_stacks * self.capacity_bytes_per_stack

    @classmethod
    def unbounded(cls) -> "HBMConfig":
        """A config with effectively infinite bandwidth and capacity —
        used by the Figure 21 'sufficient off-chip bandwidth' scaling
        study, which sizes meshes far past one physical card."""
        return cls(total_bandwidth_gbs=1e9, capacity_bytes_per_stack=10**18)

    def with_disabled_channels(self, disabled: int) -> "HBMConfig":
        """A copy with ``disabled`` pseudo channels offline.

        Channel counts stay nominal (addressing is unchanged); only the
        aggregate bandwidth is derated proportionally — the
        fault-injection model of partial-resource HBM operation (see
        :mod:`repro.faults`).  Disabling every channel is rejected.
        """
        if disabled < 0:
            raise ConfigurationError("disabled channel count must be >= 0")
        if disabled >= self.num_pseudo_channels:
            raise ConfigurationError(
                f"cannot disable {disabled} of "
                f"{self.num_pseudo_channels} HBM pseudo channels"
            )
        if not disabled:
            return self
        fraction = (
            self.num_pseudo_channels - disabled
        ) / self.num_pseudo_channels
        return replace(
            self, total_bandwidth_gbs=self.total_bandwidth_gbs * fraction
        )


class HBMModel:
    """Converts traffic volumes into accelerator cycles."""

    def __init__(self, config: HBMConfig, frequency_hz: float) -> None:
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        self.config = config
        self.frequency_hz = frequency_hz

    @property
    def bytes_per_cycle(self) -> float:
        """Aggregate sequential bandwidth per accelerator cycle."""
        return self.config.total_bandwidth_gbs * GB / self.frequency_hz

    def bytes_per_cycle_for(self, num_stacks: int) -> float:
        """Bandwidth available to a subset of stacks (each ScalaGraph
        tile owns one private stack, Section III-A)."""
        if not 0 < num_stacks <= self.config.num_stacks:
            raise ConfigurationError(
                f"num_stacks must be in 1..{self.config.num_stacks}"
            )
        return self.bytes_per_cycle * num_stacks / self.config.num_stacks

    def stream_cycles(self, num_bytes: float, num_stacks: int | None = None) -> float:
        """Cycles to stream ``num_bytes`` sequentially.

        Sequential streams use full lines, so no granularity penalty
        beyond rounding the total up to whole lines.
        """
        if num_bytes <= 0:
            return 0.0
        gran = self.config.access_granularity
        lines = -(-num_bytes // gran)
        per_cycle = (
            self.bytes_per_cycle
            if num_stacks is None
            else self.bytes_per_cycle_for(num_stacks)
        )
        return lines * gran / per_cycle

    def random_access_cycles(
        self,
        num_accesses: int,
        useful_bytes_per_access: int = 4,
        num_stacks: int | None = None,
    ) -> float:
        """Cycles for random single-word accesses.

        Every access occupies a whole ``access_granularity`` line on the
        bus even though only ``useful_bytes_per_access`` are used — the
        bandwidth-waste mechanism of Section II-A.
        """
        if num_accesses <= 0:
            return 0.0
        del useful_bytes_per_access  # documents the waste; bus cost is a line
        gran = self.config.access_granularity
        per_cycle = (
            self.bytes_per_cycle
            if num_stacks is None
            else self.bytes_per_cycle_for(num_stacks)
        )
        return num_accesses * gran / per_cycle

    def amplification(self, useful_bytes_per_access: int = 4) -> float:
        """Bus-bytes-per-useful-byte ratio of random accesses."""
        return self.config.access_granularity / useful_bytes_per_access
