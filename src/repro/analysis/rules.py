"""The shipped simlint rules.

Each rule encodes one property this reproduction depends on:

* ``SIM101`` / ``SIM102`` — determinism: ScalaGraph's dispatch and the
  result cache both assume a run is a pure function of (graph, config,
  seed); an unseeded RNG or a wall-clock read in model code breaks that.
* ``SIM201`` / ``SIM202`` — unit discipline over the calibrated timing
  constants (cycles vs ns vs MHz, paper Sections V-A/V-B).
* ``SIM301`` / ``SIM302`` — Python foot-guns that have produced silent
  accounting bugs before (shared mutable state, swallowed errors).
* ``SIM401`` — docstring/dataclass drift on frozen config dataclasses,
  whose Attributes sections are the de-facto spec of the timing model.
* ``SIM501`` — liveness of the parallel experiment runner: collecting a
  worker result without a timeout turns one crashed worker into a hung
  sweep.
* ``SIM502`` — liveness of the sweep service: a blocking call inside an
  ``async def`` freezes the daemon's event loop, stalling every
  connected client, the admission queue, and the SIGTERM drain at once.

Adding a rule: write a ``check(ctx: FileContext) -> List[Finding]``
function here and decorate it with :func:`repro.analysis.simlint.register`;
it is then active everywhere (CLI, CI, tests) and suppressible with
``# simlint: disable=<id>``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set

from repro.analysis.simlint import (
    FileContext,
    Finding,
    Rule,
    Severity,
    register,
)

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _walk(tree: ast.AST, *types: type) -> List[ast.AST]:
    return [n for n in ast.walk(tree) if isinstance(n, types)]


# ----------------------------------------------------------------------
# SIM101: unseeded / global-state RNG
# ----------------------------------------------------------------------

#: stdlib ``random`` module functions that consume the hidden global RNG.
_STDLIB_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "seed",
    "gauss",
    "normalvariate",
    "betavariate",
    "expovariate",
    "getrandbits",
}

#: legacy ``np.random.*`` functions backed by NumPy's global RandomState.
_NUMPY_GLOBAL_RNG_FNS = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "binomial",
    "poisson",
}


@register(
    "SIM101",
    Severity.ERROR,
    "unseeded or global-state RNG (np.random.default_rng() without a "
    "seed, legacy np.random.*, stdlib random.*)",
)
def unseeded_rng(ctx: FileContext) -> List[Finding]:
    rule = _self_rule("SIM101")
    findings: List[Finding] = []
    for node in _walk(ctx.tree, ast.Call):
        assert isinstance(node, ast.Call)
        name = _dotted_name(node.func)
        if name is None:
            continue
        parts = name.split(".")
        if parts[-1] == "default_rng" and len(parts) >= 2 and (
            parts[-2] == "random"
        ):
            if not node.args and not node.keywords:
                findings.append(
                    ctx.finding(
                        rule,
                        node,
                        "np.random.default_rng() without a seed is "
                        "nondeterministic; pass an explicit seed",
                    )
                )
            continue
        if (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in _STDLIB_RANDOM_FNS
        ):
            findings.append(
                ctx.finding(
                    rule,
                    node,
                    f"stdlib random.{parts[1]}() uses the hidden global "
                    "RNG; use a seeded np.random.Generator",
                )
            )
            continue
        if (
            len(parts) >= 3
            and parts[-2] == "random"
            and parts[-3] in ("np", "numpy")
            and parts[-1] in _NUMPY_GLOBAL_RNG_FNS
        ):
            findings.append(
                ctx.finding(
                    rule,
                    node,
                    f"legacy np.random.{parts[-1]}() draws from NumPy's "
                    "global RandomState; use np.random.default_rng(seed)",
                )
            )
    return findings


# ----------------------------------------------------------------------
# SIM102: wall-clock reads in simulator code
# ----------------------------------------------------------------------

#: Wall-clock calls that leak host time into results.  Monotonic timers
#: (perf_counter/monotonic) are allowed: the Profiler uses them for
#: wall-time *reporting*, never for simulated state.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}


@register(
    "SIM102",
    Severity.ERROR,
    "wall-clock read (time.time/datetime.now) in simulator code",
)
def wall_clock(ctx: FileContext) -> List[Finding]:
    rule = _self_rule("SIM102")
    findings: List[Finding] = []
    for node in _walk(ctx.tree, ast.Call):
        assert isinstance(node, ast.Call)
        name = _dotted_name(node.func)
        if name in _WALL_CLOCK_CALLS:
            findings.append(
                ctx.finding(
                    rule,
                    node,
                    f"{name}() reads the wall clock; simulated state must "
                    "be a function of (graph, config, seed) — use "
                    "time.perf_counter() for host-time profiling only",
                )
            )
    return findings


# ----------------------------------------------------------------------
# SIM201: float equality
# ----------------------------------------------------------------------

#: Name suffixes that are float-valued throughout this codebase.
_FLOATISH_SUFFIXES = (
    "_ns",
    "_us",
    "_ms",
    "_seconds",
    "_mhz",
    "_ghz",
    "_hz",
    "_gbs",
    "_rate",
    "_fraction",
    "_efficiency",
    "_watts",
    "_joules",
    "_gteps",
)


def _looks_float(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is not None:
        return name.endswith(_FLOATISH_SUFFIXES) or name in (
            "rate",
            "fraction",
            "efficiency",
        )
    return False


@register(
    "SIM201",
    Severity.ERROR,
    "== / != on float-valued operands in timing/model code",
)
def float_equality(ctx: FileContext) -> List[Finding]:
    rule = _self_rule("SIM201")
    findings: List[Finding] = []
    for node in _walk(ctx.tree, ast.Compare):
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _looks_float(left) or _looks_float(right):
                findings.append(
                    ctx.finding(
                        rule,
                        node,
                        "exact equality on float operands; use "
                        "math.isclose/np.isclose or compare integers",
                    )
                )
                break
    return findings


# ----------------------------------------------------------------------
# SIM202: unit mixing without conversion
# ----------------------------------------------------------------------

#: Suffix -> unit label.  Longest suffix wins (``_ns`` must not also
#: match names ending in ``_seconds``... it cannot, suffixes are
#: matched with str.endswith against this exact table).
_UNIT_SUFFIXES: Dict[str, str] = {
    "_cycles": "cycles",
    "_cycle": "cycles",
    "_ns": "ns",
    "_us": "us",
    "_ms": "ms",
    "_seconds": "s",
    "_mhz": "MHz",
    "_ghz": "GHz",
    "_hz": "Hz",
    "_gbs": "GB/s",
}


def _unit_of(node: ast.AST) -> Optional[str]:
    """The unit a bare expression carries, judged by its name suffix.

    Multiplication/division and function calls count as explicit
    conversions, so they (deliberately) carry no unit.
    """
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is None:
        return None
    matching = [s for s in _UNIT_SUFFIXES if name.endswith(s)]
    if not matching:
        return None
    # Longest suffix wins (e.g. ``_mhz`` over ``_hz``).
    return _UNIT_SUFFIXES[max(matching, key=len)]


@register(
    "SIM202",
    Severity.ERROR,
    "adds/subtracts/compares quantities with different unit suffixes "
    "(_cycles/_ns/_mhz/...) without an explicit conversion",
)
def unit_mixing(ctx: FileContext) -> List[Finding]:
    rule = _self_rule("SIM202")
    findings: List[Finding] = []
    for node in _walk(ctx.tree, ast.BinOp):
        assert isinstance(node, ast.BinOp)
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            continue
        left, right = _unit_of(node.left), _unit_of(node.right)
        if left and right and left != right:
            findings.append(
                ctx.finding(
                    rule,
                    node,
                    f"arithmetic mixes {left} and {right}; convert "
                    "explicitly (multiply/divide) before combining",
                )
            )
    for node in _walk(ctx.tree, ast.Compare):
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for left_op, right_op in zip(operands, operands[1:]):
            left, right = _unit_of(left_op), _unit_of(right_op)
            if left and right and left != right:
                findings.append(
                    ctx.finding(
                        rule,
                        node,
                        f"comparison mixes {left} and {right}; convert "
                        "to one unit first",
                    )
                )
                break
    return findings


# ----------------------------------------------------------------------
# SIM301: mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_FACTORIES = {"list", "dict", "set", "deque", "defaultdict",
                      "Counter", "OrderedDict", "bytearray"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        if name is not None and name.split(".")[-1] in _MUTABLE_FACTORIES:
            return True
    return False


@register(
    "SIM301",
    Severity.ERROR,
    "mutable default argument (shared across calls)",
)
def mutable_default(ctx: FileContext) -> List[Finding]:
    rule = _self_rule("SIM301")
    findings: List[Finding] = []
    for node in _walk(
        ctx.tree, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda
    ):
        args: ast.arguments = getattr(node, "args")
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and _is_mutable_default(default):
                findings.append(
                    ctx.finding(
                        rule,
                        default,
                        "mutable default argument is shared across "
                        "calls; default to None (or use "
                        "dataclasses.field(default_factory=...))",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# SIM302: bare / overbroad except
# ----------------------------------------------------------------------


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


@register(
    "SIM302",
    Severity.ERROR,
    "bare `except:` or `except Exception:` that does not re-raise",
)
def overbroad_except(ctx: FileContext) -> List[Finding]:
    rule = _self_rule("SIM302")
    findings: List[Finding] = []
    for node in _walk(ctx.tree, ast.ExceptHandler):
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            findings.append(
                ctx.finding(
                    rule,
                    node,
                    "bare `except:` swallows every error (including "
                    "KeyboardInterrupt); catch a ReproError subclass",
                )
            )
            continue
        name = _dotted_name(node.type)
        if name in ("Exception", "BaseException") and not _handler_reraises(
            node
        ):
            findings.append(
                ctx.finding(
                    rule,
                    node,
                    f"`except {name}:` without re-raise hides simulator "
                    "bugs; catch a specific error or re-raise",
                )
            )
    return findings


# ----------------------------------------------------------------------
# SIM401: docstring <-> frozen-dataclass drift
# ----------------------------------------------------------------------

#: Frozen dataclasses with at least this many fields must carry an
#: Attributes section — they are de-facto configuration specs.
_ATTR_SECTION_MIN_FIELDS = 4

#: One Attributes entry; ``a / b:`` documents several fields at once.
_ATTR_ENTRY_RE = re.compile(
    r"^(\s+)([A-Za-z_][A-Za-z0-9_]*(?:\s*/\s*[A-Za-z_][A-Za-z0-9_]*)*):"
)


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = _dotted_name(deco.func)
        if name is None or name.split(".")[-1] != "dataclass":
            continue
        for kw in deco.keywords:
            if (
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> List[str]:
    fields: List[str] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        annotation = _dotted_name(stmt.annotation)
        if annotation and annotation.split(".")[-1] == "ClassVar":
            continue
        if isinstance(stmt.annotation, ast.Subscript):
            base = _dotted_name(stmt.annotation.value)
            if base and base.split(".")[-1] == "ClassVar":
                continue
        fields.append(name)
    return fields


def _documented_attributes(docstring: str) -> Optional[Set[str]]:
    """Names listed in the docstring's ``Attributes:`` section, or None
    when the section is absent."""
    lines = docstring.splitlines()
    try:
        start = next(
            i
            for i, line in enumerate(lines)
            if line.strip() in ("Attributes:", "Attributes")
        )
    except StopIteration:
        return None
    entry_indent: Optional[str] = None
    names: Set[str] = set()
    for line in lines[start + 1:]:
        if not line.strip():
            continue
        match = _ATTR_ENTRY_RE.match(line)
        if entry_indent is None:
            if match is None:
                break  # section body must open with an entry
            entry_indent = match.group(1)
        if match is None:
            # Continuation/free text: a shallower indent ends the section.
            indent = line[: len(line) - len(line.lstrip())]
            if len(indent) < len(entry_indent):
                break
            continue
        if match.group(1) == entry_indent:
            for name in match.group(2).split("/"):
                names.add(name.strip())
    return names


@register(
    "SIM401",
    Severity.WARNING,
    "frozen dataclass whose docstring Attributes section drifted from "
    "its fields",
)
def docstring_drift(ctx: FileContext) -> List[Finding]:
    rule = _self_rule("SIM401")
    findings: List[Finding] = []
    for node in _walk(ctx.tree, ast.ClassDef):
        assert isinstance(node, ast.ClassDef)
        if not _is_frozen_dataclass(node):
            continue
        fields = _dataclass_fields(node)
        if not fields:
            continue
        docstring = ast.get_docstring(node, clean=True) or ""
        documented = _documented_attributes(docstring)
        if documented is None:
            if len(fields) >= _ATTR_SECTION_MIN_FIELDS:
                findings.append(
                    ctx.finding(
                        rule,
                        node,
                        f"frozen dataclass {node.name} has "
                        f"{len(fields)} fields but no Attributes "
                        "docstring section",
                    )
                )
            continue
        missing = [f for f in fields if f not in documented]
        stale = sorted(documented - set(fields))
        if missing:
            findings.append(
                ctx.finding(
                    rule,
                    node,
                    f"{node.name}: fields missing from the Attributes "
                    f"docstring section: {', '.join(missing)}",
                )
            )
        if stale:
            findings.append(
                ctx.finding(
                    rule,
                    node,
                    f"{node.name}: Attributes section documents names "
                    f"that are not fields: {', '.join(stale)}",
                )
            )
    return findings


# ----------------------------------------------------------------------
# SIM501: unbounded blocking on worker results
# ----------------------------------------------------------------------


def _imports_concurrency(tree: ast.AST) -> bool:
    """Whether the module imports concurrent.futures/multiprocessing."""
    for node in _walk(tree, ast.Import, ast.ImportFrom):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        else:
            assert isinstance(node, ast.ImportFrom)
            names = [node.module or ""]
        for name in names:
            if name.split(".")[0] in ("concurrent", "multiprocessing"):
                return True
    return False


@register(
    "SIM501",
    Severity.ERROR,
    "collects worker results without a timeout (future.result()/.get(), "
    "wait()/as_completed() without timeout=) — hangs forever on a dead "
    "or stuck worker",
)
def unbounded_result_wait(ctx: FileContext) -> List[Finding]:
    rule = _self_rule("SIM501")
    if not _imports_concurrency(ctx.tree):
        return []
    # A wait wrapped directly in asyncio.wait_for(..., timeout=...) is
    # already bounded by the wrapper, even though the inner call itself
    # carries no timeout argument.
    bounded: set = set()
    for node in _walk(ctx.tree, ast.Call):
        assert isinstance(node, ast.Call)
        name = _dotted_name(node.func)
        if name is None or name.split(".")[-1] != "wait_for":
            continue
        if len(node.args) >= 2 or any(
            kw.arg == "timeout" for kw in node.keywords
        ):
            bounded.update(id(arg) for arg in node.args)
    findings: List[Finding] = []
    for node in _walk(ctx.tree, ast.Call):
        assert isinstance(node, ast.Call)
        if id(node) in bounded:
            continue
        if any(kw.arg == "timeout" for kw in node.keywords):
            continue
        # future.result() / AsyncResult.get() with no arguments blocks
        # until the worker responds — which a killed worker never does.
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "result",
            "get",
        ):
            if not node.args and not node.keywords:
                findings.append(
                    ctx.finding(
                        rule,
                        node,
                        f".{node.func.attr}() without timeout= blocks "
                        "forever on a hung or killed worker; pass "
                        "timeout= and handle the expiry",
                    )
                )
            continue
        name = _dotted_name(node.func)
        if name is None:
            continue
        last = name.split(".")[-1]
        # wait(fs)/as_completed(fs): the second positional argument is
        # the timeout, so fewer than two positionals and no timeout=
        # keyword means an unbounded wait.
        if last in ("wait", "as_completed") and len(node.args) < 2:
            findings.append(
                ctx.finding(
                    rule,
                    node,
                    f"{last}() without timeout= never returns if a "
                    "worker dies without resolving its future; pass "
                    "timeout= and re-check liveness on expiry",
                )
            )
    return findings


# ----------------------------------------------------------------------
# SIM502: blocking call inside the async service loop
# ----------------------------------------------------------------------

#: Calls that block the thread, by canonical dotted name.  Inside an
#: ``async def`` every one of these freezes the entire event loop — in
#: the sweep daemon that means every connected client, the admission
#: queue, and the drain handler all stall together.
_BLOCKING_CALLS = {
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "urllib.request.urlopen",
    "socket.create_connection",
    "requests.get",
    "requests.post",
    "requests.put",
    "requests.delete",
}

#: Async replacements suggested per blocked call family.
_ASYNC_ALTERNATIVES = {
    "time.sleep": "await asyncio.sleep(...)",
    "urllib.request.urlopen": "loop.run_in_executor(...)",
    "socket.create_connection": "asyncio.open_connection(...)",
}


def _import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name -> canonical dotted name, for from-imports/aliases.

    Resolves the two spellings that would otherwise dodge the dotted
    match: ``from time import sleep`` (bare ``sleep(...)``) and
    ``import subprocess as sp`` (``sp.run(...)``).
    """
    aliases: Dict[str, str] = {}
    for node in _walk(tree, ast.Import, ast.ImportFrom):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
        else:
            assert isinstance(node, ast.ImportFrom)
            for alias in node.names:
                full = f"{node.module}.{alias.name}" if node.module else alias.name
                if full in _BLOCKING_CALLS:
                    aliases[alias.asname or alias.name] = full
    return aliases


def _async_scope_calls(fn: ast.AST) -> List[ast.Call]:
    """Call nodes executed *in* an async function's own scope.

    Nested sync ``def``/``lambda`` bodies are excluded (they run
    wherever they are called, typically shipped to an executor), and so
    are nested ``async def`` bodies (each async function is audited as
    its own scope).
    """
    calls: List[ast.Call] = []
    stack: List[ast.AST] = list(getattr(fn, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(node, ast.Call):
            calls.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return calls


@register(
    "SIM502",
    Severity.ERROR,
    "blocking call inside an async function (time.sleep, subprocess, "
    "urlopen, ...) — freezes the service event loop for every client",
)
def blocking_call_in_async(ctx: FileContext) -> List[Finding]:
    rule = _self_rule("SIM502")
    aliases = _import_aliases(ctx.tree)
    findings: List[Finding] = []
    for fn in _walk(ctx.tree, ast.AsyncFunctionDef):
        for node in _async_scope_calls(fn):
            name = _dotted_name(node.func)
            if name is None:
                continue
            head, _, rest = name.partition(".")
            resolved = aliases.get(head, head) + (f".{rest}" if rest else "")
            if resolved not in _BLOCKING_CALLS:
                continue
            hint = _ASYNC_ALTERNATIVES.get(
                resolved, "an executor via loop.run_in_executor(...)"
            )
            findings.append(
                ctx.finding(
                    rule,
                    node,
                    f"{resolved}() blocks the event loop inside async "
                    f"function {getattr(fn, 'name', '?')!r}; every "
                    f"connection and timer stalls with it — use {hint}",
                )
            )
    return findings


# ----------------------------------------------------------------------
# Registry plumbing
# ----------------------------------------------------------------------


def _self_rule(rule_id: str) -> "Rule":
    from repro.analysis.simlint import _REGISTRY

    return _REGISTRY[rule_id]
