"""The SIM6xx whole-program rules.

Each rule checks the :class:`~repro.analysis.project.ProjectModel`
rather than a single file; they register into the project registry via
:func:`~repro.analysis.project.register_project_rule` (kept separate
from the per-file simlint registry so ``all_rules()`` keeps meaning
"per-file rules").

What counts as "consumption" is deliberately receiver-based: an
attribute read only counts as a *config-field read* when the receiver
chain ends in ``config``/``cfg`` (or ``timing`` for ``*Params``), as a
*stats access* when the receiver ends in ``stats``, and as a *fault
query* when a known :class:`~repro.faults.schedule.FaultSchedule`
method is called on a receiver ending in ``faults``/``schedule``.  This
keeps unrelated attributes that happen to share a field name (e.g. a
local ``mapping`` object vs the ``ScalaGraphConfig.mapping`` field)
from polluting the comparison sets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.project import (
    ClassModel,
    ModuleModel,
    ProjectModel,
    TwinPair,
    register_project_rule,
)
from repro.analysis.simlint import Finding, Severity

__all__ = [
    "engine_twin_drift",
    "dead_or_phantom_config_knob",
    "stats_field_conservation",
    "dtype_contract_drift",
]

#: Receiver tails treated as a config object for field-read purposes.
CONFIG_RECEIVER_TAILS = frozenset({"config", "cfg"})
#: Receiver tails treated as a timing/params object.
PARAMS_RECEIVER_TAILS = frozenset({"timing"})
#: Receiver tails treated as a fault schedule.
FAULT_RECEIVER_TAILS = frozenset({"faults", "schedule", "fault_schedule"})
#: Receiver tail treated as a stats object.
STATS_RECEIVER_TAIL = "stats"

#: FaultSchedule query surface, mapped to the fault *kind* it consumes.
#: Twins may query the same kind through different methods (the
#: reference mesh reroutes per-packet via ``route`` while the vectorized
#: mesh masks whole links via ``link_dead_mask``) — SIM601 compares at
#: kind granularity so that is not drift.
FAULT_KIND_BY_METHOD: Dict[str, str] = {
    "route": "link-outage",
    "link_dead_mask": "link-outage",
    "link_availability": "link-outage",
    "fifo_stall_mask": "fifo-stall",
    "pe_stalled": "pe-stall",
    "pe_stall_mask": "pe-stall",
    "degraded_hbm": "hbm-degradation",
    "hbm_bandwidth_fraction": "hbm-degradation",
    "apply_to_config": "analytic-derate",
}

#: Default dtype numpy gives ``zeros``/``ones``/``empty`` when the call
#: site omits ``dtype=``; ``full`` infers from the fill value instead,
#: which SIM604 treats as a contract violation (must be explicit).
_IMPLICIT_DEFAULT_DTYPE: Dict[str, Optional[str]] = {
    "zeros": "float64",
    "ones": "float64",
    "empty": "float64",
    "full": None,
}


def _tail(receiver: Optional[str]) -> Optional[str]:
    if receiver is None:
        return None
    return receiver.split(".")[-1]


def _site_finding(
    rule_id: str,
    severity: Severity,
    module: ModuleModel,
    lineno: int,
    col: int,
    message: str,
    key: str,
) -> Finding:
    return Finding(
        rule=rule_id,
        severity=severity.value,
        path=module.path,
        line=lineno,
        col=col,
        message=message,
        key=key,
    )


# ----------------------------------------------------------------------
# Shared consumption extraction (SIM601 / SIM603)
# ----------------------------------------------------------------------
class _Consumption:
    """What one engine (module or scoped subset) consumes and emits.

    Each category maps item name -> first occurrence ``(lineno, col)``.
    """

    def __init__(self) -> None:
        self.categories: Dict[str, Dict[str, Tuple[int, int]]] = {
            "config-read": {},
            "stats-read": {},
            "stats-write": {},
            "fault-kind": {},
        }

    def add(
        self, category: str, item: str, lineno: int, col: int
    ) -> None:
        self.categories[category].setdefault(item, (lineno, col))


def _field_union(
    classes: Sequence[Tuple[ModuleModel, ClassModel]],
    suffixes: Tuple[str, ...],
) -> Set[str]:
    out: Set[str] = set()
    for _module, cls in classes:
        if cls.name.endswith(suffixes):
            out.update(cls.fields)
    return out


def _engine_consumption(
    model: ProjectModel,
    module: ModuleModel,
    scope: Optional[Sequence[str]],
) -> _Consumption:
    config_fields = _field_union(model.config_classes(), ("Config",))
    params_fields = _field_union(model.config_classes(), ("Params",))
    stats_fields = _field_union(model.stats_classes(), ("Stats",))
    accesses, calls = module.scoped_accesses(scope)
    cons = _Consumption()
    for access in accesses:
        tail = _tail(access.receiver)
        if tail is None:
            continue
        if not access.is_write and (
            (tail in CONFIG_RECEIVER_TAILS and access.name in config_fields)
            or (
                tail in PARAMS_RECEIVER_TAILS
                and access.name in params_fields
            )
        ):
            cons.add(
                "config-read", access.name, access.lineno, access.col
            )
        elif tail == STATS_RECEIVER_TAIL and access.name in stats_fields:
            category = "stats-write" if access.is_write else "stats-read"
            cons.add(category, access.name, access.lineno, access.col)
    for call in calls:
        tail = _tail(call.receiver)
        if tail in FAULT_RECEIVER_TAILS:
            kind = FAULT_KIND_BY_METHOD.get(call.method)
            if kind is not None:
                cons.add("fault-kind", kind, call.lineno, call.col)
    return cons


_CATEGORY_NOUN = {
    "config-read": "config field read",
    "stats-read": "stats field read",
    "stats-write": "stats field write",
    "fault-kind": "fault kind",
}


@register_project_rule(
    "SIM601",
    Severity.ERROR,
    "engine-twin drift: config field, stats field, or fault kind "
    "consumed/emitted by one engine of a declared twin pair but not "
    "the other",
)
def engine_twin_drift(model: ProjectModel) -> List[Finding]:
    findings: List[Finding] = []
    for pair in model.twin_pairs():
        fast = _engine_consumption(model, pair.fast, None)
        ref = _engine_consumption(model, pair.ref, pair.ref_scope)
        for category in sorted(fast.categories):
            fast_items = fast.categories[category]
            ref_items = ref.categories[category]
            for item in sorted(set(fast_items) - set(ref_items)):
                findings.append(
                    _drift_finding(
                        pair, category, item, pair.fast, pair.ref,
                        fast_items[item],
                    )
                )
            for item in sorted(set(ref_items) - set(fast_items)):
                findings.append(
                    _drift_finding(
                        pair, category, item, pair.ref, pair.fast,
                        ref_items[item],
                    )
                )
    return findings


def _drift_finding(
    pair: TwinPair,
    category: str,
    item: str,
    present: ModuleModel,
    absent: ModuleModel,
    site: Tuple[int, int],
) -> Finding:
    noun = _CATEGORY_NOUN[category]
    return _site_finding(
        "SIM601",
        Severity.ERROR,
        present,
        site[0],
        site[1],
        f"engine-twin drift in pair '{pair.name}': {noun} "
        f"'{item}' in {present.name} has no counterpart in twin "
        f"{absent.name}",
        key=f"{pair.name}:{category}:{item}:{present.name}",
    )


# ----------------------------------------------------------------------
# SIM602 — dead / phantom config knobs
# ----------------------------------------------------------------------
@register_project_rule(
    "SIM602",
    Severity.WARNING,
    "dead/phantom config knob: dataclass field never read anywhere, "
    "or config-receiver attribute read matching no declared field",
)
def dead_or_phantom_config_knob(model: ProjectModel) -> List[Finding]:
    findings: List[Finding] = []
    config_classes = model.config_classes()
    # -- dead knobs: a declared field with no read anywhere in the
    #    package.  Reads inside the defining class's __post_init__ are
    #    validation, not consumption, and do not count.
    for module, cls in config_classes:
        span = cls.post_init_span
        for field, def_line in sorted(cls.fields.items()):
            if _field_is_read(model, field, module, span):
                continue
            findings.append(
                _site_finding(
                    "SIM602",
                    Severity.WARNING,
                    module,
                    def_line,
                    0,
                    f"dead config knob: {cls.name}.{field} is never "
                    f"read anywhere in the package",
                    key=f"dead:{module.name}.{cls.name}:{field}",
                )
            )
    # -- phantom knobs: a read through a config receiver that resolves
    #    to no declared field/member of ANY config class.  The union is
    #    deliberately permissive — receivers named `config` may be any
    #    of the *Config classes — so this only fires on attributes that
    #    exist nowhere.
    config_members: Set[str] = set()
    params_members: Set[str] = set()
    for _module, cls in config_classes:
        if cls.name.endswith("Config"):
            config_members.update(cls.members)
        if cls.name.endswith("Params"):
            params_members.update(cls.members)
    for module in sorted(model.modules.values(), key=lambda m: m.name):
        seen: Set[str] = set()
        for access in module.attr_accesses:
            if access.is_write or access.name.startswith("__"):
                continue
            tail = _tail(access.receiver)
            if tail in CONFIG_RECEIVER_TAILS:
                allowed = config_members
            elif tail in PARAMS_RECEIVER_TAILS:
                allowed = params_members
            else:
                continue
            if access.name in allowed or access.name in seen:
                continue
            seen.add(access.name)
            findings.append(
                _site_finding(
                    "SIM602",
                    Severity.WARNING,
                    module,
                    access.lineno,
                    access.col,
                    f"phantom config knob: '{access.receiver}."
                    f"{access.name}' matches no declared field of any "
                    f"*{'Params' if tail in PARAMS_RECEIVER_TAILS else 'Config'} "
                    f"dataclass",
                    key=f"phantom:{module.name}:{access.name}",
                )
            )
    return findings


def _field_is_read(
    model: ProjectModel,
    field: str,
    defining_module: ModuleModel,
    post_init_span: Optional[Tuple[int, int]],
) -> bool:
    for module in model.modules.values():
        for access in module.attr_accesses:
            if access.is_write or access.name != field:
                continue
            if (
                post_init_span is not None
                and module is defining_module
                and post_init_span[0] <= access.lineno <= post_init_span[1]
            ):
                continue
            return True
    return False


# ----------------------------------------------------------------------
# SIM603 — stats-field conservation
# ----------------------------------------------------------------------
@register_project_rule(
    "SIM603",
    Severity.WARNING,
    "stats-field conservation: stats field written by a twin engine "
    "but never asserted by any sanitizer check or test",
)
def stats_field_conservation(model: ProjectModel) -> List[Finding]:
    if not model.assertion_modules:
        # Without assertion roots every write would be "unasserted";
        # the rule only means something when tests are in the model.
        return []
    asserted: Set[str] = set()
    for module in model.assertion_modules.values():
        for access in module.attr_accesses:
            if not access.is_write:
                asserted.add(access.name)
    for module in model.modules.values():
        if module.name.endswith(".sanitizer"):
            for access in module.attr_accesses:
                if not access.is_write:
                    asserted.add(access.name)
    findings: List[Finding] = []
    emitted: Set[Tuple[str, str]] = set()
    for pair in model.twin_pairs():
        for engine, scope in (
            (pair.fast, None),
            (pair.ref, pair.ref_scope),
        ):
            cons = _engine_consumption(model, engine, scope)
            for field, site in sorted(
                cons.categories["stats-write"].items()
            ):
                if field in asserted:
                    continue
                dedupe = (pair.name, field)
                if dedupe in emitted:
                    continue
                emitted.add(dedupe)
                findings.append(
                    _site_finding(
                        "SIM603",
                        Severity.WARNING,
                        engine,
                        site[0],
                        site[1],
                        f"unasserted stats field: '{field}' is written "
                        f"by engine {engine.name} (pair '{pair.name}') "
                        f"but never read by any sanitizer check or "
                        f"test",
                        key=f"unasserted:{pair.name}:{field}",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# SIM604 — dtype contract drift
# ----------------------------------------------------------------------
@register_project_rule(
    "SIM604",
    Severity.ERROR,
    "dtype contract drift: struct-of-arrays buffer allocated with a "
    "dtype differing from the module's declared BUFFER_DTYPES contract",
)
def dtype_contract_drift(model: ProjectModel) -> List[Finding]:
    findings: List[Finding] = []
    for module in sorted(model.modules.values(), key=lambda m: m.name):
        contract_raw = module.declarations.get("BUFFER_DTYPES")
        if contract_raw is None:
            continue
        decl_line = module.declaration_lines.get("BUFFER_DTYPES", 1)
        if not isinstance(contract_raw, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in contract_raw.items()
        ):
            findings.append(
                _site_finding(
                    "SIM604",
                    Severity.ERROR,
                    module,
                    decl_line,
                    0,
                    "BUFFER_DTYPES must be a dict of "
                    "{buffer_name: dtype_string}",
                    key=f"contract-malformed:{module.name}",
                )
            )
            continue
        contract: Dict[str, str] = {
            str(k): str(v) for k, v in contract_raw.items()
        }
        covered: Set[str] = set()
        for alloc in module.allocations:
            expected = contract.get(alloc.target)
            if expected is None:
                if alloc.is_self_attr:
                    findings.append(
                        _site_finding(
                            "SIM604",
                            Severity.ERROR,
                            module,
                            alloc.lineno,
                            alloc.col,
                            f"undeclared buffer: 'self.{alloc.target}' "
                            f"is allocated via np.{alloc.func} but has "
                            f"no BUFFER_DTYPES entry",
                            key=f"undeclared:{module.name}:{alloc.target}",
                        )
                    )
                continue
            covered.add(alloc.target)
            actual = alloc.dtype
            if actual is None:
                actual = _IMPLICIT_DEFAULT_DTYPE[alloc.func]
            if actual is None:
                findings.append(
                    _site_finding(
                        "SIM604",
                        Severity.ERROR,
                        module,
                        alloc.lineno,
                        alloc.col,
                        f"implicit dtype: contract buffer "
                        f"'{alloc.target}' allocated via "
                        f"np.{alloc.func} without an explicit dtype= "
                        f"(contract declares '{expected}')",
                        key=f"implicit:{module.name}:{alloc.target}",
                    )
                )
            elif actual != expected:
                findings.append(
                    _site_finding(
                        "SIM604",
                        Severity.ERROR,
                        module,
                        alloc.lineno,
                        alloc.col,
                        f"dtype contract drift: buffer "
                        f"'{alloc.target}' allocated as {actual} but "
                        f"BUFFER_DTYPES declares '{expected}'",
                        key=f"dtype:{module.name}:{alloc.target}",
                    )
                )
        for name in sorted(set(contract) - covered):
            findings.append(
                _site_finding(
                    "SIM604",
                    Severity.ERROR,
                    module,
                    decl_line,
                    0,
                    f"stale contract entry: BUFFER_DTYPES declares "
                    f"'{name}' but no np.zeros/full/empty/ones "
                    f"allocation for it exists in {module.name}",
                    key=f"stale-contract:{module.name}:{name}",
                )
            )
    return findings
