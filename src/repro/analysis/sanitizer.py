"""SimSanitizer: opt-in runtime invariant checks for the cycle simulator.

The static half of the analysis story (:mod:`repro.analysis.simlint`)
cannot see dynamic accounting bugs — exactly the class PR 1 fixed by
hand (a ``pending_updates`` shadow counter drifting from the FIFOs it
shadowed, identity-valued updates silently dropped).  The sanitizer
checks those ledgers while the simulator runs:

* **update conservation** — per Scatter phase, every dispatched update
  either coalesces in an aggregation pipeline or retires as exactly one
  SPD Reduce: ``injected == delivered + coalesced + in_flight`` (with
  ``in_flight == 0`` at phase exit).
* **FIFO depth** — no router input queue ever exceeds the configured
  ``noc_buffer_depth`` (backpressure must be honoured, not absorbed).
* **cycle monotonicity** — the cycle counter of each simulation epoch
  advances strictly.
* **SPD accounting** — ``spd_reduces == updates - coalesced``.
* **aggregation ledger** — the pipeline's own counters stay consistent
  (``offered == coalesced + stored + rejected``) and its occupancy never
  exceeds capacity.

Enable it with ``REPRO_SANITIZE=1`` in the environment (guards a whole
test run) or by passing ``sanitize=True`` to
:class:`~repro.core.cycle_sim.CycleAccurateScalaGraph`.  Violations
raise a structured :class:`~repro.errors.SanitizerError` naming the
invariant and cycle.  Disabled, the hooks cost nothing: the wired
components hold ``sanitizer=None`` and skip every check.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Sequence

from repro.errors import SanitizerError

__all__ = [
    "REPRO_SANITIZE_ENV",
    "SanitizerError",
    "SimSanitizer",
    "maybe_sanitizer",
    "sanitizer_enabled",
]

#: Environment variable that arms the sanitizer globally.
REPRO_SANITIZE_ENV = "REPRO_SANITIZE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def sanitizer_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` requests sanitized runs."""
    return os.environ.get(REPRO_SANITIZE_ENV, "").strip().lower() in _TRUTHY


def maybe_sanitizer(
    sanitize: Optional[bool] = None, context: str = "sim"
) -> Optional["SimSanitizer"]:
    """The standard opt-in gate: an explicit ``sanitize`` flag wins;
    ``None`` defers to the environment.  Returns None when disabled so
    call sites can use ``if sanitizer is not None`` as a zero-cost
    guard."""
    if sanitize is None:
        sanitize = sanitizer_enabled()
    return SimSanitizer(context=context) if sanitize else None


class SimSanitizer:
    """Assertion hooks the simulators call at well-defined points.

    One instance is shared by a simulator and the components it builds
    (mesh, routers, aggregation pipelines), so ``checks_run`` counts the
    total verification work of a run.  The monotonic-cycle check is
    scoped to an *epoch* (one Scatter phase / one mesh lifetime) via
    :meth:`begin_epoch`, because each phase legitimately restarts its
    cycle counter at zero.
    """

    def __init__(self, context: str = "sim") -> None:
        self.context = context
        self.checks_run = 0
        self.epoch = ""
        self._last_cycle: Optional[int] = None

    # -- plumbing ------------------------------------------------------
    def begin_epoch(self, label: str) -> None:
        """Start a new cycle-counting scope (e.g. one Scatter phase)."""
        self.epoch = label
        self._last_cycle = None

    def fail(
        self, invariant: str, message: str, cycle: Optional[int] = None
    ) -> None:
        where = f"{self.context}/{self.epoch}" if self.epoch else self.context
        raise SanitizerError(
            invariant, message, cycle=cycle, context=where
        )

    # -- invariants ----------------------------------------------------
    def check_cycle_monotonic(self, cycle: int) -> None:
        """The epoch's cycle counter must advance strictly."""
        self.checks_run += 1
        if self._last_cycle is not None and cycle <= self._last_cycle:
            self.fail(
                "cycle-monotonic",
                f"cycle counter moved {self._last_cycle} -> {cycle}; "
                "time must advance strictly",
                cycle=cycle,
            )
        self._last_cycle = cycle

    def check_fifo_depth(
        self,
        occupancy: int,
        depth: int,
        where: str,
        cycle: Optional[int] = None,
    ) -> None:
        """No FIFO may exceed its configured buffer depth."""
        self.checks_run += 1
        if occupancy > depth:
            self.fail(
                "fifo-depth",
                f"{where} holds {occupancy} entries, exceeding "
                f"buffer depth {depth}",
                cycle=cycle,
            )

    def check_fifo_depth_array(
        self,
        occupancies: Any,
        depth: int,
        *,
        where: str,
        cycle: Optional[int] = None,
        port_names: Optional[Sequence[str]] = None,
    ) -> None:
        """Array form of :meth:`check_fifo_depth` for struct-of-arrays
        engines: audits every ``(node, port)`` occupancy in one call.

        ``occupancies`` is a 2-D integer array (duck-typed to keep this
        module dependency-free — any object with ``size``/``shape``/
        ``max``/``min``/``argmax``/``argmin`` works, in practice a NumPy
        ``(nodes, ports)`` matrix).  ``port_names`` labels the second
        axis in failure messages.
        """
        self.checks_run += 1
        if not occupancies.size:
            return
        ports = occupancies.shape[1] if len(occupancies.shape) > 1 else 1

        def _label(flat: int) -> str:
            node, port = divmod(flat, ports)
            name = (
                port_names[port]
                if port_names is not None and port < len(port_names)
                else str(port)
            )
            return f"node {node} port {name}"

        worst = int(occupancies.max())
        if worst > depth:
            self.fail(
                "fifo-depth",
                f"{where} {_label(int(occupancies.argmax()))} holds "
                f"{worst} entries, exceeding buffer depth {depth}",
                cycle=cycle,
            )
        least = int(occupancies.min())
        if least < 0:
            self.fail(
                "fifo-depth",
                f"{where} {_label(int(occupancies.argmin()))} reports "
                f"negative occupancy {least}; the ledger is corrupt",
                cycle=cycle,
            )

    def check_conservation(
        self,
        *,
        injected: int,
        delivered: int,
        coalesced: int,
        in_flight: int,
        where: str,
        cycle: Optional[int] = None,
    ) -> None:
        """Updates are conserved: everything injected is delivered,
        coalesced, or still in flight — nothing dropped or duplicated."""
        self.checks_run += 1
        if injected != delivered + coalesced + in_flight:
            self.fail(
                "update-conservation",
                f"{where}: injected={injected} != delivered={delivered} "
                f"+ coalesced={coalesced} + in_flight={in_flight} "
                f"(delta {injected - delivered - coalesced - in_flight})",
                cycle=cycle,
            )

    def check_spd_accounting(
        self,
        *,
        spd_reduces: int,
        updates: int,
        coalesced: int,
        cycle: Optional[int] = None,
    ) -> None:
        """Every non-coalesced update retires as exactly one SPD
        Reduce: ``spd_reduces == updates - coalesced``."""
        self.checks_run += 1
        if spd_reduces != updates - coalesced:
            self.fail(
                "spd-accounting",
                f"spd_reduces={spd_reduces} != updates={updates} - "
                f"coalesced={coalesced}",
                cycle=cycle,
            )

    def check_aggregation_ledger_arrays(
        self, batch: Any, cycle: Optional[int] = None
    ) -> None:
        """Array form of :meth:`check_aggregation_ledger` for the
        struct-of-arrays register array
        (:class:`~repro.noc.aggregation.BatchedAggregationArray`):
        audits every PE's ledger, occupancy counter, and the
        prefix-dense column invariant in one call (duck-typed — any
        object with ``offered``/``coalesced``/``stored``/``rejected``/
        ``emitted``/``occ``/``vid``/``capacity`` works).
        """
        self.checks_run += 1
        balance = batch.coalesced + batch.stored + batch.rejected
        bad = batch.offered != balance
        if bad.any():
            pe = int(bad.argmax())
            self.fail(
                "aggregation-ledger",
                f"PE {pe}: offered={int(batch.offered[pe])} != "
                f"coalesced={int(batch.coalesced[pe])} "
                f"+ stored={int(batch.stored[pe])} "
                f"+ rejected={int(batch.rejected[pe])}",
                cycle=cycle,
            )
        live = (batch.vid != -1).sum(axis=(1, 2))
        drift = live != batch.occ
        if drift.any():
            pe = int(drift.argmax())
            self.fail(
                "aggregation-ledger",
                f"PE {pe}: occupancy counter {int(batch.occ[pe])} != "
                f"{int(live[pe])} live registers",
                cycle=cycle,
            )
        outside = (batch.occ < 0) | (batch.occ > batch.capacity)
        if outside.any():
            pe = int(outside.argmax())
            self.fail(
                "aggregation-ledger",
                f"PE {pe}: occupancy {int(batch.occ[pe])} outside "
                f"[0, {batch.capacity}]",
                cycle=cycle,
            )
        # Prefix density: a register below an empty stage of the same
        # column would make the systolic read path drop it.  ``vid`` is
        # (pe, column, stage) — stages on the last axis.
        occupied = batch.vid != -1
        dense = occupied[:, :, 1:] <= occupied[:, :, :-1]
        if not dense.all():
            pe = int((~dense).any(axis=(1, 2)).argmax())
            self.fail(
                "aggregation-ledger",
                f"PE {pe}: register column is not prefix-dense "
                "(occupied stage below an empty one)",
                cycle=cycle,
            )

    def check_aggregation_ledger(
        self, pipeline: Any, cycle: Optional[int] = None
    ) -> None:
        """The aggregation pipeline's counters must balance and its
        occupancy stay within capacity.

        ``pipeline`` is an
        :class:`~repro.noc.aggregation.AggregationPipeline` (typed
        loosely to keep this module dependency-free).
        """
        self.checks_run += 1
        stats = pipeline.stats
        balance = stats.coalesced + stats.stored + stats.rejected
        if stats.offered != balance:
            self.fail(
                "aggregation-ledger",
                f"offered={stats.offered} != coalesced={stats.coalesced} "
                f"+ stored={stats.stored} + rejected={stats.rejected}",
                cycle=cycle,
            )
        occupancy = pipeline.occupancy()
        if not 0 <= occupancy <= pipeline.capacity:
            self.fail(
                "aggregation-ledger",
                f"occupancy {occupancy} outside [0, {pipeline.capacity}]",
                cycle=cycle,
            )
