"""Whole-program analysis: the cross-module symbol model behind SIM6xx.

Every guard that predates this module is either per-file (the simlint
AST rules) or runtime (SimSanitizer, the differential equivalence
tests).  Neither catches *structural* drift: a ``ScalaGraphConfig`` knob
consumed by the reference NoC but silently ignored by the vectorized
twin, a stats counter one engine stopped emitting, or a struct-of-arrays
buffer whose dtype quietly changed.  This module parses the entire
package into a :class:`ProjectModel` and runs the SIM6xx project rules
(:mod:`repro.analysis.project_rules`) over it:

* **SIM601** — engine-twin drift: a config field, stats field, or fault
  kind consumed/emitted by one engine of a declared twin pair but not
  the other.
* **SIM602** — dead/phantom config knob: a dataclass field never read
  anywhere, or an attribute read on a config receiver matching no
  declared field.
* **SIM603** — stats-field conservation: a stats field written by an
  engine but never asserted by any sanitizer check or test.
* **SIM604** — dtype contract drift: a struct-of-arrays buffer
  allocated with a dtype differing from the module's declared
  ``BUFFER_DTYPES`` contract table.

Twin pairs are *declared in the engines themselves*: the vectorized
module carries a module-level ``ENGINE_TWIN`` dict literal naming its
reference module (and optionally the scope — class/method qualnames —
of the reference implementation inside that module).  Dtype contracts
are declared the same way via ``BUFFER_DTYPES``.  Both are read
statically from the AST; the analyzer never imports analyzed code.

Accepted findings live in a checked-in ``analysis-baseline.json`` keyed
by stable fingerprints (:attr:`Finding.key` — no line numbers), each
with a mandatory justification string.  Inline
``# simlint: disable=SIM60x`` comments work as for per-file rules.

Run it via ``repro lint --project`` or ``make lint``.
"""

from __future__ import annotations

import ast
import dataclasses
import json
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.simlint import FileContext, Finding, Severity

__all__ = [
    "AttrAccess",
    "CallSite",
    "AllocationSite",
    "ClassModel",
    "ModuleModel",
    "TwinPair",
    "ProjectModel",
    "ProjectRule",
    "register_project_rule",
    "all_project_rules",
    "find_project_rule",
    "Baseline",
    "BaselineEntry",
    "ProjectReport",
    "load_project",
    "analyze_project",
]

#: Rule id reserved for analyzer meta-findings (undeclared twin module,
#: malformed declaration literal, stale baseline entry, parse failure).
META_RULE_ID = "SIM600"

#: ``np`` allocation calls whose call sites SIM604 audits, mapped to the
#: positional index of their ``dtype`` argument.
_ALLOC_DTYPE_POS: Dict[str, int] = {
    "zeros": 1,
    "empty": 1,
    "ones": 1,
    "full": 2,
}


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class AttrAccess(NamedTuple):
    """One attribute read or write: ``<receiver>.<name>``."""

    name: str
    receiver: Optional[str]
    lineno: int
    col: int
    is_write: bool


class CallSite(NamedTuple):
    """One method call ``<receiver>.<method>(...)``."""

    method: str
    receiver: Optional[str]
    lineno: int
    col: int


class AllocationSite(NamedTuple):
    """One ``np.zeros/full/empty/ones`` call assigned to a name.

    ``target`` is the attribute name for ``self.X = np.zeros(...)``
    (``is_self_attr=True``) or the bare local name for
    ``X = np.zeros(...)``.  ``dtype`` is the declared dtype string with
    any ``np.``/``numpy.`` prefix stripped, or ``None`` when the call
    relies on the allocator's default/inferred dtype.
    """

    target: str
    is_self_attr: bool
    func: str
    dtype: Optional[str]
    lineno: int
    col: int


@dataclasses.dataclass
class ClassModel:
    """One class definition as the project rules see it."""

    name: str
    lineno: int
    is_dataclass: bool
    #: annotated field name -> definition line (ClassVar excluded)
    fields: Dict[str, int]
    #: fields + methods + properties — anything resolvable as an attr
    members: Set[str]
    #: body line span of ``__post_init__`` (reads there are validation,
    #: not consumption), or ``None``
    post_init_span: Optional[Tuple[int, int]]


class ModuleModel:
    """One parsed module: every fact the SIM6xx rules consume."""

    def __init__(self, name: str, path: str, ctx: FileContext) -> None:
        self.name = name
        self.path = path
        self.ctx = ctx
        self.tree = ctx.tree
        self.attr_accesses: List[AttrAccess] = []
        self.method_calls: List[CallSite] = []
        self.allocations: List[AllocationSite] = []
        self.classes: Dict[str, ClassModel] = {}
        #: module-level literal declarations (ENGINE_TWIN, BUFFER_DTYPES)
        self.declarations: Dict[str, object] = {}
        self.declaration_lines: Dict[str, int] = {}
        #: malformed declaration messages -> lineno
        self.declaration_errors: List[Tuple[str, int]] = []
        #: qualname ("f", "Cls", "Cls.meth") -> AST node
        self._scopes: Dict[str, ast.AST] = {}
        self._collect()

    # -- collection ----------------------------------------------------
    def _collect(self) -> None:
        accesses, calls, allocs = _collect_accesses(self.tree)
        self.attr_accesses = accesses
        self.method_calls = calls
        self.allocations = allocs
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                self.classes[node.name] = _class_model(node)
                self._scopes[node.name] = node
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._scopes[f"{node.name}.{item.name}"] = item
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scopes[node.name] = node
            elif isinstance(node, ast.Assign):
                self._collect_declaration(node)

    def _collect_declaration(self, node: ast.Assign) -> None:
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id not in ("ENGINE_TWIN", "BUFFER_DTYPES"):
                continue
            try:
                value = ast.literal_eval(node.value)
            except (ValueError, TypeError):
                self.declaration_errors.append(
                    (
                        f"{target.id} must be a pure literal "
                        f"(dict of constants)",
                        node.lineno,
                    )
                )
                continue
            self.declarations[target.id] = value
            self.declaration_lines[target.id] = node.lineno

    # -- queries -------------------------------------------------------
    def scoped_accesses(
        self, scope: Optional[Sequence[str]]
    ) -> Tuple[List[AttrAccess], List[CallSite]]:
        """Attribute accesses and calls within the named scopes
        (qualnames like ``Cls.meth``), or the whole module when
        ``scope`` is ``None``.  Unknown qualnames are ignored; the
        caller validates them via :meth:`has_scope`."""
        if scope is None:
            return self.attr_accesses, self.method_calls
        accesses: List[AttrAccess] = []
        calls: List[CallSite] = []
        for qualname in scope:
            node = self._scopes.get(qualname)
            if node is None:
                continue
            got_a, got_c, _ = _collect_accesses(node)
            accesses.extend(got_a)
            calls.extend(got_c)
        return accesses, calls

    def has_scope(self, qualname: str) -> bool:
        return qualname in self._scopes


def _class_model(node: ast.ClassDef) -> ClassModel:
    is_dataclass = False
    for deco in node.decorator_list:
        target: ast.AST = deco.func if isinstance(deco, ast.Call) else deco
        name = _dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            is_dataclass = True
    fields: Dict[str, int] = {}
    members: Set[str] = set()
    post_init_span: Optional[Tuple[int, int]] = None
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(
            item.target, ast.Name
        ):
            annotation = ast.unparse(item.annotation)
            if "ClassVar" not in annotation:
                fields[item.target.id] = item.lineno
            members.add(item.target.id)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    members.add(target.id)
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            members.add(item.name)
            if item.name == "__post_init__":
                end = getattr(item, "end_lineno", None)
                post_init_span = (
                    item.lineno,
                    end if isinstance(end, int) else item.lineno,
                )
    return ClassModel(
        name=node.name,
        lineno=node.lineno,
        is_dataclass=is_dataclass,
        fields=fields,
        members=members,
        post_init_span=post_init_span,
    )


def _collect_accesses(
    root: ast.AST,
) -> Tuple[List[AttrAccess], List[CallSite], List[AllocationSite]]:
    accesses: List[AttrAccess] = []
    calls: List[CallSite] = []
    allocs: List[AllocationSite] = []
    for node in ast.walk(root):
        if isinstance(node, ast.Attribute):
            accesses.append(
                AttrAccess(
                    name=node.attr,
                    receiver=_dotted_name(node.value),
                    lineno=node.lineno,
                    col=node.col_offset,
                    is_write=isinstance(node.ctx, (ast.Store, ast.Del)),
                )
            )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            calls.append(
                CallSite(
                    method=node.func.attr,
                    receiver=_dotted_name(node.func.value),
                    lineno=node.lineno,
                    col=node.col_offset,
                )
            )
        elif isinstance(node, ast.Assign):
            allocs.extend(_allocation_sites(node))
    return accesses, calls, allocs


def _allocation_sites(node: ast.Assign) -> List[AllocationSite]:
    value = node.value
    if not isinstance(value, ast.Call):
        return []
    func_name = _dotted_name(value.func)
    if func_name is None:
        return []
    parts = func_name.split(".")
    if len(parts) != 2 or parts[0] not in ("np", "numpy"):
        return []
    if parts[1] not in _ALLOC_DTYPE_POS:
        return []
    dtype = _call_dtype(value, _ALLOC_DTYPE_POS[parts[1]])
    sites: List[AllocationSite] = []
    for target in node.targets:
        if isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ) and target.value.id == "self":
            name, is_self = target.attr, True
        elif isinstance(target, ast.Name):
            name, is_self = target.id, False
        else:
            continue
        sites.append(
            AllocationSite(
                target=name,
                is_self_attr=is_self,
                func=parts[1],
                dtype=dtype,
                lineno=node.lineno,
                col=node.col_offset,
            )
        )
    return sites


def _call_dtype(call: ast.Call, dtype_pos: int) -> Optional[str]:
    node: Optional[ast.expr] = None
    for kw in call.keywords:
        if kw.arg == "dtype":
            node = kw.value
    if node is None and len(call.args) > dtype_pos:
        node = call.args[dtype_pos]
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name) and node.id == "bool":
        return "bool"
    dotted = _dotted_name(node)
    if dotted is None:
        return None
    for prefix in ("np.", "numpy."):
        if dotted.startswith(prefix):
            return dotted[len(prefix):]
    return dotted


class TwinPair(NamedTuple):
    """A declared reference/vectorized engine pair.

    ``fast`` is the module carrying the ``ENGINE_TWIN`` declaration;
    ``ref`` is the reference module it names.  ``ref_scope`` restricts
    the reference side to the listed class/method qualnames (the
    reference class often also owns driver logic with no vectorized
    counterpart); ``None`` means the whole module.
    """

    name: str
    fast: ModuleModel
    ref: ModuleModel
    ref_scope: Optional[Tuple[str, ...]]
    decl_line: int


class ProjectModel:
    """The whole package, cross-indexed for the SIM6xx rules."""

    def __init__(
        self,
        package: str,
        modules: Dict[str, ModuleModel],
        assertion_modules: Dict[str, ModuleModel],
    ) -> None:
        self.package = package
        self.modules = modules
        self.assertion_modules = assertion_modules
        #: analyzer meta-findings (SIM600) discovered while building
        self.problems: List[Finding] = []
        self._twin_pairs = self._resolve_twin_pairs()

    # -- derived views -------------------------------------------------
    def config_classes(self) -> List[Tuple[ModuleModel, ClassModel]]:
        """Dataclasses named ``*Config`` / ``*Params``."""
        out: List[Tuple[ModuleModel, ClassModel]] = []
        for module in self.modules.values():
            for cls in module.classes.values():
                if cls.is_dataclass and cls.name.endswith(
                    ("Config", "Params")
                ):
                    out.append((module, cls))
        return out

    def stats_classes(self) -> List[Tuple[ModuleModel, ClassModel]]:
        """Dataclasses named ``*Stats``."""
        out: List[Tuple[ModuleModel, ClassModel]] = []
        for module in self.modules.values():
            for cls in module.classes.values():
                if cls.is_dataclass and cls.name.endswith("Stats"):
                    out.append((module, cls))
        return out

    def twin_pairs(self) -> List[TwinPair]:
        return list(self._twin_pairs)

    def _resolve_twin_pairs(self) -> List[TwinPair]:
        pairs: List[TwinPair] = []
        for module in sorted(self.modules.values(), key=lambda m: m.name):
            for message, lineno in module.declaration_errors:
                self.problems.append(
                    _meta_finding(module, lineno, message)
                )
            decl = module.declarations.get("ENGINE_TWIN")
            if decl is None:
                continue
            lineno = module.declaration_lines.get("ENGINE_TWIN", 1)
            if not isinstance(decl, dict) or not isinstance(
                decl.get("reference"), str
            ):
                self.problems.append(
                    _meta_finding(
                        module,
                        lineno,
                        "ENGINE_TWIN must be a dict with a string "
                        "'reference' module name",
                    )
                )
                continue
            ref_name = decl["reference"]
            ref = self.modules.get(ref_name)
            if ref is None:
                self.problems.append(
                    _meta_finding(
                        module,
                        lineno,
                        f"ENGINE_TWIN references unknown module "
                        f"{ref_name!r}",
                    )
                )
                continue
            scope_raw = decl.get("reference_scope")
            ref_scope: Optional[Tuple[str, ...]] = None
            if scope_raw is not None:
                if not isinstance(scope_raw, (list, tuple)) or not all(
                    isinstance(s, str) for s in scope_raw
                ):
                    self.problems.append(
                        _meta_finding(
                            module,
                            lineno,
                            "ENGINE_TWIN reference_scope must be a "
                            "list of qualname strings",
                        )
                    )
                    continue
                missing = [
                    s for s in scope_raw if not ref.has_scope(s)
                ]
                if missing:
                    self.problems.append(
                        _meta_finding(
                            module,
                            lineno,
                            f"ENGINE_TWIN reference_scope names not "
                            f"found in {ref_name}: {missing}",
                        )
                    )
                    continue
                ref_scope = tuple(str(s) for s in scope_raw)
            pair_name = decl.get("pair")
            pairs.append(
                TwinPair(
                    name=(
                        pair_name
                        if isinstance(pair_name, str)
                        else module.name
                    ),
                    fast=module,
                    ref=ref,
                    ref_scope=ref_scope,
                    decl_line=lineno,
                )
            )
        return pairs


def _meta_finding(
    module: ModuleModel, lineno: int, message: str, key: str = ""
) -> Finding:
    return Finding(
        rule=META_RULE_ID,
        severity=Severity.ERROR.value,
        path=module.path,
        line=lineno,
        col=0,
        message=message,
        key=key or f"meta:{module.name}:{message}",
    )


# ----------------------------------------------------------------------
# Project rule registry (separate from the per-file simlint registry so
# `all_rules()` keeps meaning "per-file rules" for existing callers).
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ProjectRule:
    """A registered whole-program rule.

    Like :class:`repro.analysis.simlint.Rule` but checked against the
    :class:`ProjectModel` rather than a single file.

    Attributes:
        rule_id: stable identifier used in reports, suppressions, and
            baseline entries (``SIM6xx``).
        severity: default severity of the rule's findings.
        description: one-line summary shown by ``repro lint --list-rules``.
        check: callable producing the findings for one project model.
    """

    rule_id: str
    severity: Severity
    description: str
    check: Callable[[ProjectModel], List[Finding]]


_PROJECT_REGISTRY: Dict[str, ProjectRule] = {}


def register_project_rule(
    rule_id: str, severity: Severity, description: str
) -> Callable[[Callable[[ProjectModel], List[Finding]]], ProjectRule]:
    """Decorator registering a check as a :class:`ProjectRule`."""

    def decorator(
        check: Callable[[ProjectModel], List[Finding]]
    ) -> ProjectRule:
        if rule_id in _PROJECT_REGISTRY:
            raise ValueError(
                f"duplicate project rule id {rule_id!r}"
            )
        rule = ProjectRule(
            rule_id=rule_id,
            severity=severity,
            description=description,
            check=check,
        )
        _PROJECT_REGISTRY[rule_id] = rule
        return rule

    return decorator


def _ensure_project_rules_loaded() -> None:
    from repro.analysis import project_rules  # noqa: F401


def all_project_rules() -> List[ProjectRule]:
    """Registered project rules, sorted by id."""
    _ensure_project_rules_loaded()
    return [_PROJECT_REGISTRY[k] for k in sorted(_PROJECT_REGISTRY)]


def find_project_rule(rule_id: str) -> Optional[ProjectRule]:
    _ensure_project_rules_loaded()
    return _PROJECT_REGISTRY.get(rule_id)


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
BASELINE_SCHEMA = "repro-project-analysis-baseline/1"


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: matched by (rule, key), never by line."""

    rule: str
    key: str
    justification: str

    def to_dict(self) -> Dict[str, str]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class Baseline:
    """The checked-in set of accepted project findings.

    Every entry must carry a non-empty justification — the baseline is
    for *intentional* asymmetries, not for muting bugs.
    """

    entries: List[BaselineEntry]
    path: Optional[str] = None

    @classmethod
    def from_file(cls, path: Path) -> "Baseline":
        raw = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or raw.get("schema") != BASELINE_SCHEMA:
            raise ValueError(
                f"{path}: expected baseline schema {BASELINE_SCHEMA!r}"
            )
        entries_raw = raw.get("entries")
        if not isinstance(entries_raw, list):
            raise ValueError(f"{path}: 'entries' must be a list")
        entries: List[BaselineEntry] = []
        for i, item in enumerate(entries_raw):
            if not isinstance(item, dict):
                raise ValueError(f"{path}: entry {i} must be an object")
            rule = item.get("rule")
            key = item.get("key")
            justification = item.get("justification")
            if (
                not isinstance(rule, str)
                or not isinstance(key, str)
                or not isinstance(justification, str)
                or not justification.strip()
            ):
                raise ValueError(
                    f"{path}: entry {i} needs string 'rule', 'key' and "
                    f"a non-empty 'justification'"
                )
            entries.append(
                BaselineEntry(
                    rule=rule, key=key, justification=justification
                )
            )
        return cls(entries=entries, path=str(path))

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Partition findings into (fresh, accepted) and report stale
        entries that matched nothing."""
        by_key: Dict[Tuple[str, str], BaselineEntry] = {
            (e.rule, e.key): e for e in self.entries
        }
        fresh: List[Finding] = []
        accepted: List[Finding] = []
        used: Set[Tuple[str, str]] = set()
        for finding in findings:
            entry = by_key.get((finding.rule, finding.key))
            if entry is not None and finding.key:
                used.add((entry.rule, entry.key))
                accepted.append(
                    dataclasses.replace(finding, suppressed=True)
                )
            else:
                fresh.append(finding)
        stale = [
            e for e in self.entries if (e.rule, e.key) not in used
        ]
        return fresh, accepted, stale


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def load_project(
    package_root: Path,
    assertion_roots: Sequence[Path] = (),
    source_overrides: Optional[Dict[str, str]] = None,
) -> ProjectModel:
    """Parse a package directory into a :class:`ProjectModel`.

    ``package_root`` is the directory containing the package's
    ``__init__.py``; its basename becomes the root of every dotted
    module name.  ``assertion_roots`` are directories (or files) of
    test/assertion code parsed into ``assertion_modules`` — consulted by
    SIM603 but never themselves linted.  ``source_overrides`` maps
    dotted module names to replacement source text, letting tests model
    "what if this line were deleted" without touching disk.
    """
    package_root = Path(package_root)
    overrides = source_overrides or {}
    modules: Dict[str, ModuleModel] = {}
    problems: List[Finding] = []
    for py in sorted(package_root.rglob("*.py")):
        rel = py.relative_to(package_root)
        parts: Tuple[str, ...] = (
            package_root.name,
            *rel.with_suffix("").parts,
        )
        if parts[-1] == "__init__":
            parts = parts[:-1]
        name = ".".join(parts)
        source = overrides.get(name)
        if source is None:
            source = py.read_text(encoding="utf-8")
        module = _parse_module(name, str(py), source, problems)
        if module is not None:
            modules[name] = module
    assertion_modules: Dict[str, ModuleModel] = {}
    for root in assertion_roots:
        root = Path(root)
        files = (
            sorted(root.rglob("*.py")) if root.is_dir() else [root]
        )
        for py in files:
            name = f"<assert>{py}"
            module = _parse_module(name, str(py), py.read_text(
                encoding="utf-8"
            ), problems)
            if module is not None:
                assertion_modules[name] = module
    model = ProjectModel(
        package=package_root.name,
        modules=modules,
        assertion_modules=assertion_modules,
    )
    model.problems.extend(problems)
    return model


def _parse_module(
    name: str, path: str, source: str, problems: List[Finding]
) -> Optional[ModuleModel]:
    try:
        ctx = FileContext(source, path)
    except SyntaxError as exc:
        problems.append(
            Finding(
                rule=META_RULE_ID,
                severity=Severity.ERROR.value,
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
                key=f"meta:parse:{name}",
            )
        )
        return None
    return ModuleModel(name=name, path=path, ctx=ctx)


@dataclasses.dataclass
class ProjectReport:
    """Outcome of one whole-program analysis run.

    ``findings`` gate the exit code; ``baselined`` are accepted findings
    (flagged ``suppressed=True``); ``stale_baseline`` entries matched no
    current finding and are escalated as SIM600 findings so the baseline
    cannot silently rot.
    """

    findings: List[Finding]
    baselined: List[Finding]
    stale_baseline: List[BaselineEntry]
    files_checked: int
    model: ProjectModel

    def summary(self) -> Dict[str, object]:
        """JSON-reporter payload for the ``project`` key."""
        return {
            "modules_checked": self.files_checked,
            "num_findings": len(self.findings),
            "num_baselined": len(self.baselined),
            "stale_baseline": [
                e.to_dict() for e in self.stale_baseline
            ],
            "twin_pairs": [
                {
                    "name": pair.name,
                    "fast": pair.fast.name,
                    "reference": pair.ref.name,
                    "reference_scope": (
                        list(pair.ref_scope)
                        if pair.ref_scope is not None
                        else None
                    ),
                }
                for pair in self.model.twin_pairs()
            ],
        }


def analyze_project(
    package_root: Path,
    assertion_roots: Sequence[Path] = (),
    baseline: Optional[Baseline] = None,
    select: Optional[Iterable[str]] = None,
    source_overrides: Optional[Dict[str, str]] = None,
) -> ProjectReport:
    """Run the SIM6xx project rules over a package.

    Findings suppressed inline (``# simlint: disable=SIM60x`` on the
    anchored line) are dropped; findings matching a ``baseline`` entry
    are moved to ``ProjectReport.baselined``.  ``select`` restricts to
    the named rule ids (meta-findings always survive).
    """
    model = load_project(
        package_root,
        assertion_roots=assertion_roots,
        source_overrides=source_overrides,
    )
    selected = all_project_rules()
    if select is not None:
        wanted = set(select)
        selected = [r for r in selected if r.rule_id in wanted]
    findings: List[Finding] = list(model.problems)
    for rule in selected:
        findings.extend(rule.check(model))
    # Inline suppressions: honoured per anchored line, via the owning
    # module's suppression table.
    ctx_by_path: Dict[str, FileContext] = {
        m.path: m.ctx for m in model.modules.values()
    }
    kept: List[Finding] = []
    for finding in findings:
        ctx = ctx_by_path.get(finding.path)
        if ctx is not None and ctx.suppressed(finding.rule, finding.line):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if baseline is None:
        fresh, accepted, stale = kept, [], []
    else:
        fresh, accepted, stale = baseline.split(kept)
        for entry in stale:
            fresh.append(
                Finding(
                    rule=META_RULE_ID,
                    severity=Severity.WARNING.value,
                    path=baseline.path or "analysis-baseline.json",
                    line=1,
                    col=0,
                    message=(
                        f"stale baseline entry {entry.rule}:"
                        f"{entry.key!r} matches no current finding — "
                        f"delete it"
                    ),
                    key=f"meta:stale:{entry.rule}:{entry.key}",
                )
            )
    return ProjectReport(
        findings=fresh,
        baselined=accepted,
        stale_baseline=stale,
        files_checked=len(model.modules),
        model=model,
    )
