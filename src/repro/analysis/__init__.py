"""Static analysis and runtime invariant checking for the reproduction.

Two complementary halves:

* :mod:`repro.analysis.simlint` — an AST lint framework with
  repo-specific rules (:mod:`repro.analysis.rules`): determinism,
  unit discipline, and accounting hygiene enforced at review time.
  Run via ``python -m repro lint`` or ``make lint``.
* :mod:`repro.analysis.sanitizer` — :class:`SimSanitizer`, opt-in
  runtime invariant checks wired into the cycle simulator and NoC
  (enable with ``REPRO_SANITIZE=1``).

A third, whole-program half sits on top of simlint:

* :mod:`repro.analysis.project` — parses the entire package into a
  cross-module :class:`~repro.analysis.project.ProjectModel` and runs
  the SIM6xx rules (:mod:`repro.analysis.project_rules`): engine-twin
  parity, dead/phantom config knobs, stats-field conservation, and
  dtype contracts.  Run via ``repro lint --project``; accepted
  findings live in ``analysis-baseline.json``.  See docs/ANALYSIS.md.
"""

from repro.analysis.sanitizer import (
    REPRO_SANITIZE_ENV,
    SanitizerError,
    SimSanitizer,
    maybe_sanitizer,
    sanitizer_enabled,
)
from repro.analysis.project import (
    Baseline,
    BaselineEntry,
    ProjectModel,
    ProjectReport,
    ProjectRule,
    all_project_rules,
    analyze_project,
    load_project,
)
from repro.analysis.simlint import (
    FileContext,
    Finding,
    Rule,
    Severity,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

__all__ = [
    "REPRO_SANITIZE_ENV",
    "SanitizerError",
    "SimSanitizer",
    "maybe_sanitizer",
    "sanitizer_enabled",
    "FileContext",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "Baseline",
    "BaselineEntry",
    "ProjectModel",
    "ProjectReport",
    "ProjectRule",
    "all_project_rules",
    "analyze_project",
    "load_project",
]
