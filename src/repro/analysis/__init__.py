"""Static analysis and runtime invariant checking for the reproduction.

Two complementary halves:

* :mod:`repro.analysis.simlint` — an AST lint framework with
  repo-specific rules (:mod:`repro.analysis.rules`): determinism,
  unit discipline, and accounting hygiene enforced at review time.
  Run via ``python -m repro lint`` or ``make lint``.
* :mod:`repro.analysis.sanitizer` — :class:`SimSanitizer`, opt-in
  runtime invariant checks wired into the cycle simulator and NoC
  (enable with ``REPRO_SANITIZE=1``).
"""

from repro.analysis.sanitizer import (
    REPRO_SANITIZE_ENV,
    SanitizerError,
    SimSanitizer,
    maybe_sanitizer,
    sanitizer_enabled,
)
from repro.analysis.simlint import (
    FileContext,
    Finding,
    Rule,
    Severity,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

__all__ = [
    "REPRO_SANITIZE_ENV",
    "SanitizerError",
    "SimSanitizer",
    "maybe_sanitizer",
    "sanitizer_enabled",
    "FileContext",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
