"""simlint: a pure-stdlib AST lint framework for this repository.

The reproduction's credibility rests on properties the test suite only
samples — determinism (every RNG seeded), unit discipline across the
calibrated timing constants (cycles vs ns vs MHz), and honest accounting
of updates through the mesh.  ``simlint`` enforces the static half of
those properties as repo-specific lint rules over the Python AST; the
dynamic half is :mod:`repro.analysis.sanitizer`.

Architecture:

* :class:`Rule` — one registered check: an id (``SIM...``), a severity,
  a one-line description, and a ``check(FileContext) -> [Finding]``
  callable.  Rules self-register through the :func:`register` decorator;
  the shipped rules live in :mod:`repro.analysis.rules`.
* :class:`FileContext` — one parsed file handed to every rule: AST,
  source lines, and the per-line suppression table.
* Suppressions — a trailing ``# simlint: disable=RULE[,RULE...]``
  comment silences the named rules (or ``all``) on that line.
* Reporters — :func:`render_text` and :func:`render_json`.

Run it via ``python -m repro lint`` or ``make lint``.
"""

from __future__ import annotations

import ast
import dataclasses
import enum
import json
import re
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Severity",
    "Finding",
    "Rule",
    "FileContext",
    "register",
    "all_rules",
    "get_rule",
    "lint_source",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
]


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings are correctness/determinism hazards; ``WARNING``
    findings are maintainability hazards.  Both fail the lint gate —
    the distinction exists for reporting and for future policy knobs.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: id of the violated rule (e.g. ``SIM101``).
        severity: the rule's severity (``"error"`` or ``"warning"``).
        path: file the violation is in.
        line: 1-based source line.
        col: 0-based column.
        message: human-readable description of this occurrence.
        key: stable fingerprint (no line numbers) used to match the
            finding against ``analysis-baseline.json`` entries; empty
            for per-file rules, which are never baselined.
        suppressed: ``True`` when the finding was silenced by an inline
            suppression comment or an accepted baseline entry.  Silenced
            findings never affect the exit code but are still reported
            by the JSON reporter so CI artifacts show the full picture.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    key: str = ""
    suppressed: bool = False

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Rule:
    """A registered lint rule.

    Attributes:
        rule_id: stable identifier used in reports and suppressions.
        severity: default severity of the rule's findings.
        description: one-line summary shown by ``repro lint --list-rules``.
        check: callable producing the findings for one file.
    """

    rule_id: str
    severity: Severity
    description: str
    check: Callable[["FileContext"], List[Finding]]


_REGISTRY: Dict[str, Rule] = {}

#: Trailing-comment suppression syntax: ``# simlint: disable=SIM101,SIM202``
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable=([A-Za-z0-9_,\- ]+)"
)


def register(
    rule_id: str, severity: Severity, description: str
) -> Callable[[Callable[["FileContext"], List[Finding]]], Rule]:
    """Decorator registering a check function as a :class:`Rule`."""

    def decorator(check: Callable[["FileContext"], List[Finding]]) -> Rule:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate simlint rule id {rule_id!r}")
        rule = Rule(
            rule_id=rule_id,
            severity=severity,
            description=description,
            check=check,
        )
        _REGISTRY[rule_id] = rule
        return rule

    return decorator


def all_rules() -> List[Rule]:
    """Registered rules, sorted by id (registration triggers on import
    of :mod:`repro.analysis.rules`)."""
    _ensure_rules_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_rules_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown simlint rule {rule_id!r}; known: {known}"
        ) from None


def _ensure_rules_loaded() -> None:
    # Deferred so `import simlint` alone never costs the rule imports,
    # while registry queries always see the shipped rules.
    from repro.analysis import rules  # noqa: F401


class FileContext:
    """One source file as seen by every rule: AST plus line metadata."""

    def __init__(self, source: str, path: str = "<string>") -> None:
        self.source = source
        self.path = path
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self._suppressions = self._parse_suppressions(self.lines)

    @staticmethod
    def _parse_suppressions(
        lines: Sequence[str],
    ) -> Dict[int, FrozenSet[str]]:
        table: Dict[int, FrozenSet[str]] = {}
        for lineno, line in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                names = frozenset(
                    part.strip()
                    for part in match.group(1).split(",")
                    if part.strip()
                )
                table[lineno] = names
        return table

    def suppressed(self, rule_id: str, line: int) -> bool:
        names = self._suppressions.get(line, frozenset())
        return rule_id in names or "all" in names

    def finding(
        self, rule: Rule, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node."""
        return Finding(
            rule=rule.rule_id,
            severity=rule.severity.value,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _select_rules(select: Optional[Iterable[str]]) -> List[Rule]:
    if select is None:
        return all_rules()
    return [get_rule(rule_id) for rule_id in select]


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    keep_suppressed: bool = False,
) -> List[Finding]:
    """Lint one source string; returns findings sorted by location then
    rule id.  Suppressed findings are dropped unless ``keep_suppressed``
    is set, in which case they are returned flagged ``suppressed=True``
    (the JSON reporter uses this to expose suppression state).

    A file that does not parse yields a single synthetic ``SIM000``
    finding rather than crashing the whole run.
    """
    try:
        ctx = FileContext(source, path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="SIM000",
                severity=Severity.ERROR.value,
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule in _select_rules(select):
        for finding in rule.check(ctx):
            if ctx.suppressed(finding.rule, finding.line):
                if keep_suppressed:
                    findings.append(
                        dataclasses.replace(finding, suppressed=True)
                    )
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path: Path,
    select: Optional[Iterable[str]] = None,
    keep_suppressed: bool = False,
) -> List[Finding]:
    return lint_source(
        path.read_text(encoding="utf-8"),
        path=str(path),
        select=select,
        keep_suppressed=keep_suppressed,
    )


def lint_paths(
    paths: Iterable[Path],
    select: Optional[Iterable[str]] = None,
    keep_suppressed: bool = False,
) -> Tuple[List[Finding], int]:
    """Lint files and directories (recursively, ``*.py`` only).

    Returns ``(findings, files_checked)``.
    """
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: List[Finding] = []
    for file_path in files:
        findings.extend(
            lint_file(
                file_path, select=select, keep_suppressed=keep_suppressed
            )
        )
    return findings, len(files)


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def _rule_descriptions(
    rule_ids: Iterable[str],
) -> Dict[str, Dict[str, str]]:
    """Severity + description per rule id, for the JSON reporter.

    Looks up the per-file registry first, then the project-analysis
    registry; unknown ids (e.g. the synthetic ``SIM000``) fall back to a
    generic stanza so the reporter never crashes on a finding.
    """
    out: Dict[str, Dict[str, str]] = {}
    for rule_id in sorted(set(rule_ids)):
        _ensure_rules_loaded()
        rule = _REGISTRY.get(rule_id)
        if rule is not None:
            out[rule_id] = {
                "severity": rule.severity.value,
                "description": rule.description,
            }
            continue
        # Project rules live in their own registry (see
        # repro.analysis.project); imported lazily to keep plain file
        # linting free of that dependency.
        from repro.analysis import project as _project

        project_rule = _project.find_project_rule(rule_id)
        if project_rule is not None:
            out[rule_id] = {
                "severity": project_rule.severity.value,
                "description": project_rule.description,
            }
        else:
            out[rule_id] = {
                "severity": Severity.ERROR.value,
                "description": "synthetic finding (no registered rule)",
            }
    return out


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """The human-facing report: one ``path:line:col: RULE message`` per
    finding plus a summary line with per-rule counts."""
    active = [f for f in findings if not f.suppressed]
    out = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity}] {f.message}"
        for f in active
    ]
    noun = "file" if files_checked == 1 else "files"
    if active:
        counts: Dict[str, int] = {}
        for f in active:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        breakdown = ", ".join(
            f"{rule_id}: {n}" for rule_id, n in sorted(counts.items())
        )
        out.append(
            f"simlint: {len(active)} finding(s) in {files_checked} {noun}"
            f" ({breakdown})"
        )
    else:
        out.append(f"simlint: clean ({files_checked} {noun} checked)")
    return "\n".join(out)


def render_json(
    findings: Sequence[Finding],
    files_checked: int,
    project: Optional[Dict[str, object]] = None,
) -> str:
    """Machine-readable report consumed by CI.

    ``num_findings`` counts every reported finding (including suppressed
    or baselined ones when the caller kept them); ``num_active`` is the
    count that gates the exit code.  ``rules`` maps each rule id seen in
    the report to its severity and description.  ``project`` carries the
    whole-program analysis summary when ``repro lint --project`` ran.
    """
    active = [f for f in findings if not f.suppressed]
    payload: Dict[str, object] = {
        "schema": "repro-simlint/1",
        "files_checked": files_checked,
        "num_findings": len(findings),
        "num_active": len(active),
        "num_suppressed": len(findings) - len(active),
        "rules": _rule_descriptions(f.rule for f in findings),
        "findings": [f.to_dict() for f in findings],
    }
    if project is not None:
        payload["project"] = project
    return json.dumps(payload, indent=2)
