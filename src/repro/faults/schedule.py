"""Seeded fault schedules and the shared graceful-degradation policy.

A :class:`FaultSchedule` is the single source of truth every simulator
layer queries: the mesh engines ask for per-cycle dead-link and
FIFO-stall masks, the cycle-accurate simulator asks for PE stall
windows, and the analytic accelerator derives a derated
:class:`~repro.memory.hbm.HBMConfig`.  All fault windows are half-open
``[start, end)`` cycle intervals and strictly finite — faults are
transient by construction, which bounds every detour/retry loop the
degradation policy can enter.

The schedule is generated **eagerly and deterministically** at
construction: the RNG seed is derived from the user seed, the topology,
and the fault counts via the frozen :func:`~repro.graph.datasets.stable_seed`
formula, so identical inputs reproduce the identical schedule in any
process (CI replays a schedule twice and diffs the digests).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.datasets import stable_seed
from repro.memory.hbm import HBMConfig
from repro.noc.router import (
    EAST,
    LOCAL,
    NORTH,
    NUM_PORTS,
    SOUTH,
    WEST,
    xy_output_port,
)
from repro.noc.topology import MeshTopology

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.config import ScalaGraphConfig

__all__ = [
    "FaultConfig",
    "FaultSchedule",
    "FifoStall",
    "LinkOutage",
    "PEStallWindow",
    "route_with_faults",
]


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of one fault campaign (all windows in simulated cycles).

    Attributes:
        seed: user-facing fault seed; the actual RNG seed is derived
            from it (plus topology and counts) via ``stable_seed``.
        link_outages: number of dead-link windows to draw.
        fifo_stalls: number of frozen-FIFO windows to draw.
        pe_stalls: number of PE stall windows to draw (cycle-accurate
            simulator only).
        horizon: fault start cycles are drawn uniformly from
            ``[0, horizon)``; align it with the expected phase length.
        min_duration: shortest fault window, inclusive.
        max_duration: longest fault window, inclusive.
        hbm_disabled_channels: HBM pseudo channels taken offline
            (derates aggregate bandwidth proportionally).
    """

    seed: int = 0
    link_outages: int = 2
    fifo_stalls: int = 2
    pe_stalls: int = 0
    horizon: int = 256
    min_duration: int = 8
    max_duration: int = 48
    hbm_disabled_channels: int = 0

    def __post_init__(self) -> None:
        if min(self.link_outages, self.fifo_stalls, self.pe_stalls) < 0:
            raise ConfigurationError("fault counts must be >= 0")
        if self.horizon <= 0:
            raise ConfigurationError("fault horizon must be positive")
        if not 0 < self.min_duration <= self.max_duration:
            raise ConfigurationError(
                "fault durations must satisfy 0 < min <= max "
                "(faults are transient by contract)"
            )
        if self.hbm_disabled_channels < 0:
            raise ConfigurationError("hbm_disabled_channels must be >= 0")


@dataclass(frozen=True)
class LinkOutage:
    """One dead mesh link, identified by its upstream endpoint.

    Attributes:
        node: router whose output the link leaves.
        port: output port (NORTH/SOUTH/WEST/EAST; never LOCAL).
        start: first dead cycle (inclusive).
        end: first alive cycle again (exclusive).
    """

    node: int
    port: int
    start: int
    end: int


@dataclass(frozen=True)
class FifoStall:
    """One frozen router input FIFO: dequeues stop, arrivals continue.

    Attributes:
        node: router owning the FIFO.
        port: input port (any of the five, LOCAL included).
        start: first stalled cycle (inclusive).
        end: first free cycle again (exclusive).
    """

    node: int
    port: int
    start: int
    end: int


@dataclass(frozen=True)
class PEStallWindow:
    """One stalled PE: no RU egress, no SPD reduce during the window.

    Attributes:
        pe: the stalled PE's node index.
        start: first stalled cycle (inclusive).
        end: first working cycle again (exclusive).
    """

    pe: int
    start: int
    end: int


def _physical_links(topology: MeshTopology) -> List[Tuple[int, int]]:
    """Every (node, output port) pair that has a physical link."""
    links: List[Tuple[int, int]] = []
    for node in range(topology.num_nodes):
        r, c = topology.coord(node)
        if r > 0:
            links.append((node, NORTH))
        if r + 1 < topology.rows:
            links.append((node, SOUTH))
        if c > 0:
            links.append((node, WEST))
        if c + 1 < topology.cols:
            links.append((node, EAST))
    return links


def derive_fault_seed(config: FaultConfig, topology: MeshTopology) -> int:
    """The RNG seed of a schedule, via the ``stable_seed`` contract.

    Folding the topology and fault counts into the key means a schedule
    never silently reuses another campaign's draw sequence when only a
    non-seed knob changed.
    """
    key = (
        f"faults:v1:{config.seed}:{topology.rows}x{topology.cols}:"
        f"{config.link_outages}:{config.fifo_stalls}:{config.pe_stalls}:"
        f"{config.horizon}:{config.min_duration}:{config.max_duration}"
    )
    return stable_seed(key)


class FaultSchedule:
    """A fully materialised, replayable fault campaign for one mesh.

    Construction draws every fault eagerly with a seeded NumPy RNG (seed
    from :func:`derive_fault_seed`), so two schedules built from the
    same ``(topology, config)`` are identical — :meth:`digest` over
    :meth:`describe` is the replay-determinism witness CI checks.

    Query surface (all pure, cycle-indexed):

    * :meth:`link_dead_mask` / :meth:`fifo_stall_mask` — ``(nodes, 5)``
      boolean matrices for the vectorised engine (the reference engine
      reads the same masks row-wise, keeping both engines literally on
      one code path for fault state),
    * :meth:`pe_stalled` — scalar PE-stall check for the cycle sim,
    * :meth:`degraded_hbm` / :attr:`hbm_bandwidth_fraction` — HBM
      derating for the memory model,
    * :attr:`link_availability` — time-averaged live-link fraction for
      the analytic NoC bound.
    """

    def __init__(
        self, topology: MeshTopology, config: Optional[FaultConfig] = None
    ) -> None:
        self.topology = topology
        self.config = config if config is not None else FaultConfig()
        self.seed = derive_fault_seed(self.config, topology)
        rng = np.random.default_rng(self.seed)
        cfg = self.config
        n = topology.num_nodes

        def window() -> Tuple[int, int]:
            start = int(rng.integers(0, cfg.horizon))
            duration = int(
                rng.integers(cfg.min_duration, cfg.max_duration + 1)
            )
            return start, start + duration

        links = _physical_links(topology)
        self.link_outages: List[LinkOutage] = []
        if links:
            for _ in range(cfg.link_outages):
                node, port = links[int(rng.integers(len(links)))]
                start, end = window()
                self.link_outages.append(LinkOutage(node, port, start, end))
        self.fifo_stalls: List[FifoStall] = []
        for _ in range(cfg.fifo_stalls):
            node = int(rng.integers(n))
            port = int(rng.integers(NUM_PORTS))
            start, end = window()
            self.fifo_stalls.append(FifoStall(node, port, start, end))
        self.pe_stalls: List[PEStallWindow] = []
        for _ in range(cfg.pe_stalls):
            pe = int(rng.integers(n))
            start, end = window()
            self.pe_stalls.append(PEStallWindow(pe, start, end))

        self._num_links = len(links)
        # Per-cycle masks are tiny to rebuild (few faults); a one-entry
        # cache covers the hot pattern of both engines stepping the same
        # cycle during differential runs.
        self._dead_cache: Tuple[int, Optional[np.ndarray]] = (-1, None)
        self._stall_cache: Tuple[int, Optional[np.ndarray]] = (-1, None)
        self._pe_stall_cache: Tuple[int, Optional[np.ndarray]] = (-1, None)

    # ------------------------------------------------------------------
    # Mesh-facing queries
    # ------------------------------------------------------------------
    def link_dead_mask(self, cycle: int) -> np.ndarray:
        """``(nodes, NUM_PORTS)`` booleans: output links dead at ``cycle``."""
        cached_cycle, mask = self._dead_cache
        if cycle != cached_cycle or mask is None:
            mask = np.zeros(
                (self.topology.num_nodes, NUM_PORTS), dtype=bool
            )
            for outage in self.link_outages:
                if outage.start <= cycle < outage.end:
                    mask[outage.node, outage.port] = True
            self._dead_cache = (cycle, mask)
        return mask

    def fifo_stall_mask(self, cycle: int) -> np.ndarray:
        """``(nodes, NUM_PORTS)`` booleans: input FIFOs frozen at ``cycle``."""
        cached_cycle, mask = self._stall_cache
        if cycle != cached_cycle or mask is None:
            mask = np.zeros(
                (self.topology.num_nodes, NUM_PORTS), dtype=bool
            )
            for stall in self.fifo_stalls:
                if stall.start <= cycle < stall.end:
                    mask[stall.node, stall.port] = True
            self._stall_cache = (cycle, mask)
        return mask

    def route(
        self, node: int, dst: int, cycle: int
    ) -> Tuple[Optional[int], bool]:
        """Scalar :func:`route_with_faults` against this schedule's
        dead-link mask — the reference engine's per-packet entry point
        (the vectorised engine consumes :meth:`link_dead_mask` whole)."""
        return route_with_faults(
            self.topology, node, dst, self.link_dead_mask(cycle)[node]
        )

    def any_mesh_faults(self) -> bool:
        """Whether the schedule carries any mesh-visible fault at all."""
        return bool(self.link_outages or self.fifo_stalls)

    def last_mesh_fault_cycle(self) -> int:
        """Cycle after which every mesh fault window has closed."""
        ends = [o.end for o in self.link_outages]
        ends += [s.end for s in self.fifo_stalls]
        return max(ends) if ends else 0

    def next_boundary_cycle(self, cycle: int) -> Optional[int]:
        """First cycle strictly after ``cycle`` at which any fault
        window opens or closes, or None when no edge remains.

        Every mask this schedule serves (:meth:`link_dead_mask`,
        :meth:`fifo_stall_mask`, :meth:`pe_stall_mask`) is constant on
        ``[cycle, next_boundary_cycle(cycle))`` — the contract the
        drain-mode batching in the vectorised scatter engine relies on
        to fast-forward through stall windows without re-evaluating the
        masks each cycle.
        """
        best: Optional[int] = None
        for windows in (self.link_outages, self.fifo_stalls, self.pe_stalls):
            for w in windows:
                for edge in (w.start, w.end):
                    if edge > cycle and (best is None or edge < best):
                        best = edge
        return best

    # ------------------------------------------------------------------
    # Cycle-sim-facing queries
    # ------------------------------------------------------------------
    def pe_stalled(self, pe: int, cycle: int) -> bool:
        """Whether ``pe`` sits in a stall window at ``cycle``."""
        for stall in self.pe_stalls:
            if stall.pe == pe and stall.start <= cycle < stall.end:
                return True
        return False

    def pe_stall_mask(self, cycle: int) -> np.ndarray:
        """``(nodes,)`` booleans: PEs stalled at ``cycle`` — the whole-
        mesh form of :meth:`pe_stalled` for the vectorised scatter
        engine (same one-entry cache pattern as the mesh masks)."""
        cached_cycle, mask = self._pe_stall_cache
        if cycle != cached_cycle or mask is None:
            mask = np.zeros(self.topology.num_nodes, dtype=bool)
            for stall in self.pe_stalls:
                if stall.start <= cycle < stall.end:
                    mask[stall.pe] = True
            self._pe_stall_cache = (cycle, mask)
        return mask

    # ------------------------------------------------------------------
    # Memory / analytic-model-facing queries
    # ------------------------------------------------------------------
    @property
    def hbm_bandwidth_fraction(self) -> float:
        """Bandwidth surviving the disabled pseudo channels, per the
        default :class:`~repro.memory.hbm.HBMConfig` channel count."""
        return self._hbm_fraction(HBMConfig())

    def _hbm_fraction(self, hbm: HBMConfig) -> float:
        disabled = self.config.hbm_disabled_channels
        total = hbm.num_pseudo_channels
        if disabled >= total:
            raise ConfigurationError(
                f"cannot disable {disabled} of {total} HBM pseudo channels"
            )
        return (total - disabled) / total

    def degraded_hbm(self, hbm: HBMConfig) -> HBMConfig:
        """``hbm`` with the disabled channels' bandwidth removed (see
        :meth:`~repro.memory.hbm.HBMConfig.with_disabled_channels`)."""
        return hbm.with_disabled_channels(self.config.hbm_disabled_channels)

    @property
    def link_availability(self) -> float:
        """Time-averaged fraction of live links over the campaign.

        Measured over ``[0, max(horizon, last outage end))`` and floored
        at 1% so analytic NoC bounds stay finite even under pathological
        hand-built schedules.
        """
        if not self.link_outages or not self._num_links:
            return 1.0
        span = max(
            self.config.horizon, max(o.end for o in self.link_outages)
        )
        dead = sum(o.end - o.start for o in self.link_outages)
        return max(0.01, 1.0 - dead / (self._num_links * span))

    def apply_to_config(
        self, config: "ScalaGraphConfig"
    ) -> "ScalaGraphConfig":
        """A :class:`~repro.core.config.ScalaGraphConfig` copy with the
        HBM derated and the analytic NoC link bandwidth scaled by
        :attr:`link_availability` (works on any config dataclass with
        ``hbm`` and ``timing.noc_link_updates_per_cycle`` fields)."""
        timing = replace(
            config.timing,
            noc_link_updates_per_cycle=(
                config.timing.noc_link_updates_per_cycle
                * self.link_availability
            ),
        )
        return replace(
            config, hbm=self.degraded_hbm(config.hbm), timing=timing
        )

    # ------------------------------------------------------------------
    # Replay determinism
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """JSON-able, fully ordered description of the whole campaign."""
        return {
            "schema": "repro-faults/1",
            "seed": self.seed,
            "config": asdict(self.config),
            "topology": [self.topology.rows, self.topology.cols],
            "link_outages": [
                [o.node, o.port, o.start, o.end] for o in self.link_outages
            ],
            "fifo_stalls": [
                [s.node, s.port, s.start, s.end] for s in self.fifo_stalls
            ],
            "pe_stalls": [
                [s.pe, s.start, s.end] for s in self.pe_stalls
            ],
        }

    def digest(self) -> str:
        """SHA-256 over :meth:`describe` — the replay witness."""
        payload = json.dumps(self.describe(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def route_with_faults(
    topology: MeshTopology,
    node: int,
    dst: int,
    dead_row: np.ndarray,
) -> Tuple[Optional[int], bool]:
    """Graceful-degradation routing decision for one head-of-line packet.

    ``dead_row`` is the node's row of :meth:`FaultSchedule.link_dead_mask`
    for the current cycle.  Policy (mirrored exactly by the vectorised
    engine — see ``FastMeshNetwork._arbitrate_and_move``):

    1. Compute the pure XY port.  LOCAL, or an alive link: use it.
    2. Dead X-direction link: deflect one hop along Y *toward* the
       destination row (or toward the mesh interior when already on it).
    3. Dead Y-direction link (XY guarantees the column already matches):
       deflect one hop along X toward the mesh interior (EAST when a
       column exists to the east, else WEST).
    4. Deflection link also dead: make no request this cycle — the
       packet waits (fault windows are finite, so waits are bounded).

    Returns ``(out_port or None, hit)`` where ``hit`` flags that a dead
    link influenced this packet (feeds ``degraded_cycles``).  Deflection
    can ping-pong while an outage lasts (each retry re-routes from
    scratch); it terminates because every window is finite.
    """
    port = xy_output_port(topology, node, dst)
    if port == LOCAL or not dead_row[port]:
        return port, False
    r, c = topology.coord(node)
    dr, _dc = topology.coord(dst)
    if port in (EAST, WEST):
        if topology.rows == 1:
            return None, True  # no Y axis to deflect along
        if r < dr:
            alt = SOUTH
        elif r > dr:
            alt = NORTH
        else:
            alt = SOUTH if r + 1 < topology.rows else NORTH
    else:
        if topology.cols == 1:
            return None, True  # no X axis to deflect along
        alt = EAST if c + 1 < topology.cols else WEST
    if dead_row[alt]:
        return None, True
    return alt, True
