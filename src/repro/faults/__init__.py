"""Deterministic fault injection for the simulated ScalaGraph system.

The paper evaluates a fault-free mesh, HBM, and PE array, yet its
headline claims (mesh scalability, mapping crossovers) are the ones
that shift when links stall or memory channels degrade — partial-
resource operation is the realistic regime at scale.  This package
injects *seeded, replayable* faults into every simulated layer:

* **link outages** — a mesh link goes dead for a bounded window; the
  routers detour around it (XY with one-axis deflection; see
  :func:`~repro.faults.schedule.route_with_faults`),
* **FIFO stalls** — a router input FIFO freezes its dequeues for a
  window (it still accepts arrivals),
* **HBM channel degradation** — pseudo channels drop out, derating
  aggregate bandwidth,
* **PE stall windows** — a PE stops emitting updates and retiring SPD
  reduces for a window of the cycle-accurate simulation.

Determinism is the contract: a :class:`~repro.faults.schedule.FaultSchedule`
is generated eagerly at construction from a seed derived via the same
:func:`~repro.graph.datasets.stable_seed` recipe the datasets use, so
the same seed + config + topology reproduce the identical schedule in
any process — and both cycle-level mesh engines replay it
fault-for-fault (the fastmesh/reference equivalence gate holds with
faults armed; ``tests/test_faults.py`` enforces it).
"""

from repro.faults.schedule import (
    FaultConfig,
    FaultSchedule,
    FifoStall,
    LinkOutage,
    PEStallWindow,
    route_with_faults,
)

__all__ = [
    "FaultConfig",
    "FaultSchedule",
    "FifoStall",
    "LinkOutage",
    "PEStallWindow",
    "route_with_faults",
]
