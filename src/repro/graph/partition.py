"""Graphicionado-style interval partitioning.

Section III-A: *"To process a large graph whose vertex properties cannot
reside in the SPDs entirely, ScalaGraph slices a graph as in Graphicionado,
and processes all partitions in a round-robin manner."*

A partition owns a contiguous destination-vertex interval; within a Scatter
pass over partition ``p`` only edges whose destination falls inside the
interval are processed, so the destination properties of the whole
partition fit in on-chip scratchpad.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class Partition:
    """One destination-vertex interval of a sliced graph.

    Attributes:
        index: partition position in round-robin order.
        lo: first destination vertex ID (inclusive).
        hi: last destination vertex ID (exclusive).
        edge_mask_count: number of edges whose destination lies inside.
    """

    index: int
    lo: int
    hi: int
    edge_mask_count: int

    @property
    def num_vertices(self) -> int:
        return self.hi - self.lo

    def contains(self, vertex: int) -> bool:
        return self.lo <= vertex < self.hi

    def mask(self, destinations: np.ndarray) -> np.ndarray:
        """Boolean mask selecting edges destined inside this partition."""
        return (destinations >= self.lo) & (destinations < self.hi)


def num_partitions_for(
    num_vertices: int, spd_capacity_vertices: int
) -> int:
    """Partitions needed so each interval's properties fit on-chip."""
    if spd_capacity_vertices <= 0:
        raise ConfigurationError("SPD capacity must be positive")
    if num_vertices == 0:
        return 1
    return -(-num_vertices // spd_capacity_vertices)  # ceil division


def slice_intervals(
    graph: CSRGraph, spd_capacity_vertices: int
) -> List[Partition]:
    """Slice ``graph`` into destination-vertex intervals.

    Args:
        graph: the input graph.
        spd_capacity_vertices: how many vertex properties the aggregate
            scratchpad can hold at once.

    Returns:
        Partitions in round-robin processing order.  A graph that fits
        entirely on-chip yields a single partition covering all vertices.
    """
    count = num_partitions_for(graph.num_vertices, spd_capacity_vertices)
    bounds = np.linspace(0, graph.num_vertices, count + 1).astype(np.int64)
    partitions = []
    for i in range(count):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        edges_in = int(
            np.count_nonzero((graph.indices >= lo) & (graph.indices < hi))
        )
        partitions.append(
            Partition(index=i, lo=lo, hi=hi, edge_mask_count=edges_in)
        )
    return partitions


def partition_of(vertex_ids: np.ndarray, partitions: List[Partition]) -> np.ndarray:
    """Map each vertex ID to the index of the partition owning it."""
    bounds = np.array([p.hi for p in partitions], dtype=np.int64)
    return np.searchsorted(bounds, np.asarray(vertex_ids), side="right")
