"""Graph substrate: CSR storage, generators, datasets, partitioning, I/O.

ScalaGraph stores graphs in compressed sparse row (CSR) format
(Section III-B of the paper).  This subpackage provides the CSR container
(:class:`~repro.graph.csr.CSRGraph`), synthetic generators used as
stand-ins for the paper's datasets, the Graphicionado-style interval
partitioner used when vertex properties exceed on-chip capacity, and the
degree-aware edge-lane preprocessing of Section IV-C.
"""

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    erdos_renyi,
    grid_graph,
    path_graph,
    power_law_graph,
    rmat_graph,
    star_graph,
)
from repro.graph.datasets import (
    DATASETS,
    DatasetSpec,
    load_dataset,
    stable_seed,
)
from repro.graph.io import (
    load_csr,
    load_edge_list,
    load_matrix_market,
    save_csr,
    save_edge_list,
)
from repro.graph.partition import Partition, slice_intervals
from repro.graph.preprocess import lane_reorder
from repro.graph.stats import DegreeStats, degree_histogram, degree_statistics
from repro.graph.transforms import (
    apply_permutation,
    largest_out_component_root,
    relabel_by_degree,
    remove_duplicate_edges,
    remove_self_loops,
    symmetrize,
)

__all__ = [
    "CSRGraph",
    "erdos_renyi",
    "grid_graph",
    "path_graph",
    "power_law_graph",
    "rmat_graph",
    "star_graph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "stable_seed",
    "load_csr",
    "load_edge_list",
    "load_matrix_market",
    "save_csr",
    "save_edge_list",
    "Partition",
    "slice_intervals",
    "lane_reorder",
    "apply_permutation",
    "largest_out_component_root",
    "relabel_by_degree",
    "remove_duplicate_edges",
    "remove_self_loops",
    "symmetrize",
    "DegreeStats",
    "degree_histogram",
    "degree_statistics",
]
