"""Degree-aware edge-lane preprocessing (Section IV-C, hardware impl.).

Dispatching the edge workloads of multiple vertices in one cycle would
need a full 16x16 connection between the 64-byte input line and a row of
PEs.  ScalaGraph avoids that hardware by *pre-processing the edge data*:
the edge layout of each vertex is reordered so that an edge's position
within a cacheline equals the column index of the PE it must be
dispatched to.  Given ``K`` PEs per row, the preprocessing keeps ``K``
FIFOs per vertex, pushes each edge into FIFO ``hash(dst) % K``, and emits
the new edge list by visiting the FIFOs round-robin.  Complexity is
O(|E|), the same as edge-list-to-CSR conversion.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.util import grouped_arange


def default_lane_hash(dst: np.ndarray, lanes: int) -> np.ndarray:
    """The simple vertex-ID hash used to spread destinations over PEs."""
    return np.asarray(dst) % lanes


def lane_reorder(
    graph: CSRGraph,
    lanes: int = 16,
    lane_hash: Optional[Callable[[np.ndarray, int], np.ndarray]] = None,
) -> CSRGraph:
    """Reorder each vertex's edge list into round-robin lane order.

    After reordering, consecutive edges of a vertex cycle through lanes
    ``0, 1, ..., lanes-1`` as far as the per-lane supply allows, so a
    64-byte line of edges maps positionally onto a row of PEs.

    Args:
        graph: input CSR graph.
        lanes: PEs per row (16 in the paper's configuration).
        lane_hash: destination-to-lane hash; defaults to ``dst % lanes``.

    Returns:
        A new :class:`CSRGraph` with identical structure but lane-ordered
        per-vertex edge lists (weights are carried along).
    """
    if lanes <= 0:
        raise ConfigurationError("lanes must be positive")
    if graph.num_edges == 0:
        return graph
    hash_fn = lane_hash or default_lane_hash

    src = graph.edge_sources()
    lane = hash_fn(graph.indices, lanes).astype(np.int64)
    if lane.size and (lane.min() < 0 or lane.max() >= lanes):
        raise ConfigurationError("lane_hash produced out-of-range lanes")

    # Round-robin merge of K FIFOs == sort edges of each vertex by
    # (occurrence index within its lane FIFO, lane).  Both keys are
    # computed vectorised with a grouped cumulative count.
    order = np.lexsort((lane, src))  # group by vertex, then lane
    sorted_src = src[order]
    sorted_lane = lane[order]
    # Position of each edge inside its (vertex, lane) FIFO.
    group_key = sorted_src * lanes + sorted_lane
    fifo_pos = grouped_arange(group_key)
    # Emit order within each vertex: round r visits lanes in index order.
    emit_rank = fifo_pos * lanes + sorted_lane
    final = np.lexsort((emit_rank, sorted_src))
    new_order = order[final]

    new_indices = graph.indices[new_order]
    new_weights = graph.weights[new_order] if graph.weights is not None else None
    return CSRGraph(
        indptr=graph.indptr,
        indices=new_indices,
        weights=new_weights,
        name=graph.name,
    )


def lane_of_position(edge_offsets: np.ndarray, lanes: int) -> np.ndarray:
    """PE column implied by an edge's position within its cacheline.

    After :func:`lane_reorder`, edge ``i`` of a vertex is dispatched to
    column ``i % lanes`` of the PE row; this helper makes the dispatch
    rule explicit for the dispatcher model and its tests.
    """
    return np.asarray(edge_offsets) % lanes
