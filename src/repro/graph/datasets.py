"""Stand-ins for the paper's evaluation datasets (Tables I and III).

The paper evaluates on SNAP social graphs and a Graph500 RMAT graph:

=============  ========  =========  ===========  =====================
Graph          Vertices  Edges      Avg. degree  Description
=============  ========  =========  ===========  =====================
Pokec (PK)     1.6 M     30.6 M     ~19          Pokec social
LiveJournal    4.8 M     68.9 M     ~14          Follower network
Orkut (OR)     3.0 M     234.3 M    ~76          Orkut social
RMAT24 (RM)    16.7 M    536.8 M    ~32          Synthetic Graph500
Twitter (TW)   41.6 M    1468.4 M   ~35          Twitter social
=============  ========  =========  ===========  =====================

Shipping or streaming billions of edges is out of scope for a Python
simulator, so each dataset is replaced by an RMAT stand-in whose *average
degree* and *degree skew* match the original (the properties the paper's
results depend on: power-law load imbalance, active-set dynamics, and
locality).  The stand-in scale is configurable; the default sizes keep a
full benchmark sweep tractable while staying large relative to the
simulated PE counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_graph


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for a synthetic stand-in of one paper dataset.

    Attributes:
        key: short name used throughout the paper (PK, LJ, OR, RM, TW).
        full_name: the original dataset's name.
        paper_vertices: vertex count reported in Table III.
        paper_edges: edge count reported in Table III.
        scale: log2 of the stand-in's vertex count.
        edge_factor: stand-in average degree (matches the paper's).
        skew: RMAT ``a`` parameter; larger means heavier power-law skew.
        description: Table III description column.
    """

    key: str
    full_name: str
    paper_vertices: int
    paper_edges: int
    scale: int
    edge_factor: int
    skew: float
    description: str

    @property
    def standin_vertices(self) -> int:
        return 1 << self.scale

    @property
    def standin_edges(self) -> int:
        return self.edge_factor * self.standin_vertices

    def rmat_params(self) -> Tuple[float, float, float]:
        """RMAT (a, b, c) quadrant probabilities for this skew level."""
        a = self.skew
        rest = (1.0 - a) / 3.0
        return a, rest, rest


#: Registry keyed by the paper's two-letter dataset codes.  FL appears
#: only in the Table I motivation study (Figure 4); the evaluation uses
#: the Table III five.
DATASETS: Dict[str, DatasetSpec] = {
    "FL": DatasetSpec(
        key="FL",
        full_name="Flickr",
        paper_vertices=820_000,
        paper_edges=9_840_000,
        scale=13,
        edge_factor=12,
        skew=0.52,
        description="Flickr Social",
    ),
    "PK": DatasetSpec(
        key="PK",
        full_name="Pokec",
        paper_vertices=1_600_000,
        paper_edges=30_600_000,
        scale=13,
        edge_factor=19,
        skew=0.50,
        description="Pokec Social",
    ),
    "LJ": DatasetSpec(
        key="LJ",
        full_name="LiveJournal",
        paper_vertices=4_800_000,
        paper_edges=68_900_000,
        scale=13,
        edge_factor=14,
        skew=0.55,
        description="Follower",
    ),
    "OR": DatasetSpec(
        key="OR",
        full_name="Orkut",
        paper_vertices=3_000_000,
        paper_edges=234_300_000,
        scale=12,
        edge_factor=76,
        skew=0.45,
        description="Orkut Social",
    ),
    "RM": DatasetSpec(
        key="RM",
        full_name="RMAT24",
        paper_vertices=16_700_000,
        paper_edges=536_800_000,
        scale=13,
        edge_factor=32,
        skew=0.57,
        description="Synthetic Graph",
    ),
    "TW": DatasetSpec(
        key="TW",
        full_name="Twitter",
        paper_vertices=41_600_000,
        paper_edges=1_468_400_000,
        scale=14,
        edge_factor=35,
        skew=0.62,
        description="Twitter Social",
    ),
}

#: Dataset order used by the paper's figures.
DATASET_ORDER = ("PK", "LJ", "OR", "RM", "TW")


def load_dataset(
    name: str,
    scale_shift: int = 0,
    seed: Optional[int] = None,
    weighted: bool = False,
) -> CSRGraph:
    """Instantiate the stand-in graph for a paper dataset.

    Args:
        name: dataset code (``PK``, ``LJ``, ``OR``, ``RM``, ``TW``),
            case-insensitive; full names also accepted.
        scale_shift: added to the spec's log2 vertex count — use negative
            values for quick tests (e.g. ``-4`` gives a 1/16-scale graph).
        seed: RNG seed; defaults to :func:`stable_seed` of the key (the
            public determinism contract — two fresh processes produce
            byte-identical graphs for the same spec).
        weighted: attach random integer weights in [0, 255] (for SSSP).

    Returns:
        The stand-in :class:`CSRGraph`, named after the dataset code.
    """
    spec = _resolve(name)
    scale = spec.scale + scale_shift
    if scale < 0:
        raise GraphFormatError(
            f"scale_shift={scale_shift} makes {spec.key} empty (scale {scale})"
        )
    a, b, c = spec.rmat_params()
    graph = rmat_graph(
        scale=scale,
        edge_factor=spec.edge_factor,
        a=a,
        b=b,
        c=c,
        seed=seed if seed is not None else stable_seed(spec.key),
        name=spec.key,
    )
    if weighted:
        graph = graph.with_random_weights(seed=stable_seed(spec.key) + 1)
    return graph


def _resolve(name: str) -> DatasetSpec:
    upper = name.upper()
    if upper in DATASETS:
        return DATASETS[upper]
    for spec in DATASETS.values():
        if spec.full_name.upper() == upper:
            return spec
    raise GraphFormatError(
        f"unknown dataset {name!r}; known: {sorted(DATASETS)}"
    )


def stable_seed(key: str) -> int:
    """Deterministic RNG seed for a dataset key — the public
    determinism contract of the stand-in generators.

    Two properties the rest of the system depends on (the result cache
    keys graphs by content fingerprint; ScalaGraph's deterministic
    dispatch assumes identical inputs across processes):

    * **process-independent** — a pure polynomial hash of the key's
      code points (base 131, mod 2^31), so it does not vary with
      ``PYTHONHASHSEED``, platform, or Python version; and
    * **stable across releases** — the formula is frozen; changing it
      would silently invalidate every cached result and cross-process
      comparison, so treat it as an on-disk format.

    :func:`load_dataset` seeds unweighted generation with
    ``stable_seed(key)`` and weight generation with
    ``stable_seed(key) + 1``; the same spec therefore yields
    byte-identical CSR arrays in any two fresh processes.
    """
    return sum(ord(ch) * 131 ** i for i, ch in enumerate(key)) % (2**31)


#: Backward-compatible alias (pre-dates the public contract).
_stable_seed = stable_seed
