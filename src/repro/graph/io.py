"""Graph serialisation: text edge lists and binary CSR bundles."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

PathLike = Union[str, Path]


def save_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write ``src dst [weight]`` lines (SNAP-compatible)."""
    path = Path(path)
    src = graph.edge_sources()
    with path.open("w") as fh:
        fh.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                 f"{graph.num_edges} edges\n")
        if graph.weights is not None:
            for s, d, w in zip(src, graph.indices, graph.weights):
                fh.write(f"{s} {d} {w}\n")
        else:
            for s, d in zip(src, graph.indices):
                fh.write(f"{s} {d}\n")


def load_edge_list(
    path: PathLike,
    num_vertices: int | None = None,
    name: str | None = None,
) -> CSRGraph:
    """Read a ``src dst [weight]`` text file into a CSR graph.

    Lines starting with ``#`` are comments.  When ``num_vertices`` is not
    given it is inferred as ``max(endpoint) + 1``.
    """
    path = Path(path)
    srcs, dsts, weights = [], [], []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'src dst [weight]', got {line!r}"
                )
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if len(parts) == 3:
                weights.append(int(parts[2]))
    if weights and len(weights) != len(srcs):
        raise GraphFormatError(f"{path}: only some edges carry weights")
    if num_vertices is None:
        num_vertices = (max(max(srcs), max(dsts)) + 1) if srcs else 0
    pairs = np.array(list(zip(srcs, dsts)), dtype=np.int64).reshape(-1, 2)
    return CSRGraph.from_edges(
        num_vertices,
        pairs,
        weights=np.array(weights, dtype=np.int64) if weights else None,
        name=name or path.stem,
    )


def load_matrix_market(path: PathLike, name: str | None = None) -> CSRGraph:
    """Read a MatrixMarket ``coordinate`` file as a directed graph.

    Supports the ``general``/``symmetric`` pattern and real/integer
    fields SuiteSparse graphs use; a symmetric matrix stores each
    off-diagonal edge in both directions.  One-based indices are
    converted to zero-based vertex IDs; entry values become integer edge
    weights (rounded) when present.
    """
    path = Path(path)
    with path.open() as fh:
        header = fh.readline().strip().lower()
        if not header.startswith("%%matrixmarket matrix coordinate"):
            raise GraphFormatError(
                f"{path}: not a MatrixMarket coordinate file ({header!r})"
            )
        parts = header.split()
        field = parts[3] if len(parts) > 3 else "pattern"
        symmetry = parts[4] if len(parts) > 4 else "general"
        if field not in ("pattern", "real", "integer"):
            raise GraphFormatError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise GraphFormatError(
                f"{path}: unsupported symmetry {symmetry!r}"
            )

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        try:
            rows, cols, entries = (int(x) for x in line.split())
        except ValueError as exc:
            raise GraphFormatError(f"{path}: bad size line {line!r}") from exc

        srcs, dsts, weights = [], [], []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}: bad entry {line!r}")
            i, j = int(parts[0]) - 1, int(parts[1]) - 1
            w = (
                int(round(float(parts[2])))
                if field != "pattern" and len(parts) > 2
                else 1
            )
            srcs.append(i)
            dsts.append(j)
            weights.append(w)
            if symmetry == "symmetric" and i != j:
                srcs.append(j)
                dsts.append(i)
                weights.append(w)
        if len([s for s in srcs]) < entries:
            raise GraphFormatError(
                f"{path}: expected {entries} entries, found fewer"
            )

    num_vertices = max(rows, cols)
    pairs = np.array(list(zip(srcs, dsts)), dtype=np.int64).reshape(-1, 2)
    return CSRGraph.from_edges(
        num_vertices,
        pairs,
        weights=(
            np.array(weights, dtype=np.int64) if field != "pattern" else None
        ),
        name=name or path.stem,
    )


def save_csr(graph: CSRGraph, path: PathLike) -> None:
    """Save a graph as a compressed ``.npz`` bundle plus metadata."""
    path = Path(path)
    arrays = {"indptr": graph.indptr, "indices": graph.indices}
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    meta = json.dumps({"name": graph.name})
    np.savez_compressed(path, meta=np.frombuffer(meta.encode(), dtype=np.uint8),
                        **arrays)


def load_csr(path: PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_csr`."""
    path = Path(path)
    with np.load(path) as bundle:
        try:
            indptr = bundle["indptr"]
            indices = bundle["indices"]
        except KeyError as exc:
            raise GraphFormatError(f"{path}: missing CSR array {exc}") from exc
        weights = bundle["weights"] if "weights" in bundle else None
        name = "graph"
        if "meta" in bundle:
            name = json.loads(bytes(bundle["meta"]).decode()).get("name", name)
    return CSRGraph(indptr=indptr, indices=indices, weights=weights, name=name)
