"""Graph transformations used by preprocessing and applications.

These are the standard preparation steps graph-accelerator evaluations
apply before loading a graph: symmetrisation (for undirected analyses
like connected components), self-loop/duplicate cleanup, and
degree-ordered relabelling (a locality optimisation that also evens out
the home-PE hash distribution of hot vertices).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph


def symmetrize(graph: CSRGraph, dedup: bool = False) -> CSRGraph:
    """Store every edge in both directions.

    Weights are carried onto the reverse edges.  With ``dedup``,
    duplicate (src, dst) pairs are dropped after mirroring.
    """
    src = graph.edge_sources()
    pairs = np.concatenate(
        [
            np.stack([src, graph.indices], axis=1),
            np.stack([graph.indices, src], axis=1),
        ]
    )
    weights = None
    if graph.weights is not None:
        weights = np.concatenate([graph.weights, graph.weights])
    return CSRGraph.from_edges(
        graph.num_vertices,
        pairs,
        weights=weights,
        name=f"{graph.name}-sym",
        dedup=dedup,
    )


def remove_self_loops(graph: CSRGraph) -> CSRGraph:
    """Drop edges whose source equals their destination."""
    src = graph.edge_sources()
    keep = src != graph.indices
    pairs = np.stack([src[keep], graph.indices[keep]], axis=1)
    weights = graph.weights[keep] if graph.weights is not None else None
    return CSRGraph.from_edges(
        graph.num_vertices, pairs, weights=weights, name=graph.name
    )


def remove_duplicate_edges(graph: CSRGraph) -> CSRGraph:
    """Collapse parallel edges (keeping the first occurrence's weight)."""
    src = graph.edge_sources()
    pairs = np.stack([src, graph.indices], axis=1)
    return CSRGraph.from_edges(
        graph.num_vertices,
        pairs,
        weights=graph.weights,
        name=graph.name,
        dedup=True,
    )


def relabel_by_degree(
    graph: CSRGraph, descending: bool = True
) -> tuple[CSRGraph, np.ndarray]:
    """Renumber vertices by out-degree.

    Returns ``(relabelled_graph, permutation)`` where
    ``permutation[old_id] = new_id``.  Descending order places hubs at
    low IDs — the common locality trick; ascending spreads them.
    """
    degrees = graph.out_degrees
    order = np.argsort(-degrees if descending else degrees, kind="stable")
    permutation = np.empty(graph.num_vertices, dtype=np.int64)
    permutation[order] = np.arange(graph.num_vertices, dtype=np.int64)
    src = graph.edge_sources()
    pairs = np.stack(
        [permutation[src], permutation[graph.indices]], axis=1
    )
    relabelled = CSRGraph.from_edges(
        graph.num_vertices,
        pairs,
        weights=graph.weights,
        name=f"{graph.name}-bydeg",
    )
    return relabelled, permutation


def apply_permutation(
    properties: np.ndarray, permutation: np.ndarray
) -> np.ndarray:
    """Map per-vertex results of a relabelled run back to original IDs.

    ``out[old_id] = properties[permutation[old_id]]``.
    """
    properties = np.asarray(properties)
    permutation = np.asarray(permutation)
    if properties.shape[0] != permutation.shape[0]:
        raise GraphFormatError("properties/permutation must align")
    return properties[permutation]


def largest_out_component_root(graph: CSRGraph) -> int:
    """A vertex with maximal out-degree — the conventional BFS/SSSP root
    choice for benchmark runs (guarantees a non-trivial traversal)."""
    if graph.num_vertices == 0:
        raise GraphFormatError("empty graph has no root")
    return int(np.argmax(graph.out_degrees))
