"""Compressed sparse row (CSR) graph container.

ScalaGraph (Section III-B) stores graphs in CSR for space efficiency: an
``indptr`` array of ``num_vertices + 1`` edge offsets, an ``indices`` array
of destination vertex IDs, and an optional ``weights`` array.  All arrays
are numpy-backed so that the timing models can evaluate whole iterations
with vectorised kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphFormatError

VertexId = int

_INDEX_DTYPE = np.int64
_WEIGHT_DTYPE = np.int64


@dataclass(frozen=True)
class CSRGraph:
    """A directed graph in compressed sparse row format.

    Attributes:
        indptr: ``int64[num_vertices + 1]`` edge offsets; row ``v`` owns
            edges ``indices[indptr[v]:indptr[v + 1]]``.
        indices: ``int64[num_edges]`` destination vertex IDs.
        weights: optional ``int64[num_edges]`` edge weights (SSSP uses
            random integer weights in ``[0, 255]``, Section V-A).
        name: human-readable label used in reports.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: Optional[np.ndarray] = None
    name: str = "graph"

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=_INDEX_DTYPE)
        indices = np.ascontiguousarray(self.indices, dtype=_INDEX_DTYPE)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        if self.weights is not None:
            weights = np.ascontiguousarray(self.weights, dtype=_WEIGHT_DTYPE)
            object.__setattr__(self, "weights", weights)
        self._validate()

    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indptr.size == 0:
            raise GraphFormatError("indptr must be a non-empty 1-D array")
        if self.indptr[0] != 0:
            raise GraphFormatError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.size:
            raise GraphFormatError(
                f"indptr[-1] ({int(self.indptr[-1])}) must equal the number "
                f"of edges ({self.indices.size})"
            )
        if self.indices.size:
            lo = int(self.indices.min())
            hi = int(self.indices.max())
            if lo < 0 or hi >= self.num_vertices:
                raise GraphFormatError(
                    f"edge destination out of range [0, {self.num_vertices}): "
                    f"saw [{lo}, {hi}]"
                )
        if self.weights is not None and self.weights.shape != self.indices.shape:
            raise GraphFormatError("weights must align with indices")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        return self.indices.size

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex (``int64[num_vertices]``)."""
        return np.diff(self.indptr)

    @property
    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex, computed by a bincount over indices."""
        return np.bincount(self.indices, minlength=self.num_vertices).astype(
            _INDEX_DTYPE
        )

    def max_degree(self) -> int:
        if self.num_vertices == 0:
            return 0
        return int(self.out_degrees.max())

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def neighbors(self, v: VertexId) -> np.ndarray:
        """Destination IDs of vertex ``v``'s out-edges."""
        self._check_vertex(v)
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_weights(self, v: VertexId) -> np.ndarray:
        """Weights of vertex ``v``'s out-edges (all 1 when unweighted)."""
        self._check_vertex(v)
        if self.weights is None:
            return np.ones(int(self.indptr[v + 1] - self.indptr[v]), dtype=_WEIGHT_DTYPE)
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: VertexId) -> int:
        self._check_vertex(v)
        return int(self.indptr[v + 1] - self.indptr[v])

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(src, dst)`` pairs. Intended for tests/examples."""
        for v in range(self.num_vertices):
            for u in self.neighbors(v):
                yield v, int(u)

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every edge (``int64[num_edges]``).

        The expansion of indptr back to one source ID per edge; this is the
        vectorised building block for the mapping/communication models.
        """
        return np.repeat(
            np.arange(self.num_vertices, dtype=_INDEX_DTYPE), self.out_degrees
        )

    def _check_vertex(self, v: VertexId) -> None:
        if not 0 <= v < self.num_vertices:
            raise GraphFormatError(
                f"vertex {v} out of range [0, {self.num_vertices})"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Sequence[Tuple[int, int]] | np.ndarray,
        weights: Optional[Sequence[int] | np.ndarray] = None,
        name: str = "graph",
        dedup: bool = False,
    ) -> "CSRGraph":
        """Build a CSR graph from an edge list.

        Args:
            num_vertices: vertex-ID domain size.
            edges: ``(src, dst)`` pairs as a sequence or an ``(E, 2)`` array.
            weights: optional per-edge weights, aligned with ``edges``.
            name: label for reports.
            dedup: drop duplicate ``(src, dst)`` pairs (keeping the first
                occurrence's weight) before building.
        """
        if num_vertices < 0:
            raise GraphFormatError("num_vertices must be >= 0")
        arr = np.asarray(edges, dtype=_INDEX_DTYPE)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError("edges must be an (E, 2) array of (src, dst)")
        src, dst = arr[:, 0], arr[:, 1]
        if arr.size and (
            src.min() < 0
            or dst.min() < 0
            or src.max() >= num_vertices
            or dst.max() >= num_vertices
        ):
            raise GraphFormatError("edge endpoint out of range")
        w = None
        if weights is not None:
            w = np.asarray(weights, dtype=_WEIGHT_DTYPE)
            if w.shape[0] != arr.shape[0]:
                raise GraphFormatError("weights must align with edges")

        if dedup and arr.size:
            keys = src * num_vertices + dst
            _, keep = np.unique(keys, return_index=True)
            keep.sort()
            src, dst = src[keep], dst[keep]
            if w is not None:
                w = w[keep]

        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        if w is not None:
            w = w[order]
        indptr = np.zeros(num_vertices + 1, dtype=_INDEX_DTYPE)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr=indptr, indices=dst, weights=w, name=name)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_weights(self, weights: np.ndarray, name: Optional[str] = None) -> "CSRGraph":
        """Return a copy carrying the given per-edge weights."""
        return CSRGraph(
            indptr=self.indptr,
            indices=self.indices,
            weights=weights,
            name=name or self.name,
        )

    def with_random_weights(
        self, low: int = 0, high: int = 255, seed: int = 0
    ) -> "CSRGraph":
        """Attach random integer weights in ``[low, high]``.

        Section V-A: for SSSP, each edge is associated with a random integer
        between 0 and 255.
        """
        rng = np.random.default_rng(seed)
        weights = rng.integers(low, high + 1, size=self.num_edges, dtype=_WEIGHT_DTYPE)
        return self.with_weights(weights)

    def reversed(self) -> "CSRGraph":
        """Return the transpose graph (every edge direction flipped)."""
        src = self.edge_sources()
        pairs = np.stack([self.indices, src], axis=1)
        return CSRGraph.from_edges(
            self.num_vertices, pairs, weights=self.weights, name=f"{self.name}^T"
        )

    def subgraph(self, vertices: np.ndarray) -> "CSRGraph":
        """Induced subgraph on ``vertices`` with IDs relabelled to 0..k-1."""
        vertices = np.unique(np.asarray(vertices, dtype=_INDEX_DTYPE))
        remap = -np.ones(self.num_vertices, dtype=_INDEX_DTYPE)
        remap[vertices] = np.arange(vertices.size, dtype=_INDEX_DTYPE)
        src = self.edge_sources()
        keep = (remap[src] >= 0) & (remap[self.indices] >= 0)
        pairs = np.stack([remap[src[keep]], remap[self.indices[keep]]], axis=1)
        w = self.weights[keep] if self.weights is not None else None
        return CSRGraph.from_edges(
            vertices.size, pairs, weights=w, name=f"{self.name}[{vertices.size}]"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        w = ", weighted" if self.is_weighted else ""
        return (
            f"CSRGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}{w})"
        )
