"""Synthetic graph generators.

The paper evaluates on SNAP social graphs (Pokec, LiveJournal, Orkut,
Twitter) and a Graph500 RMAT24 graph (Table III).  Those inputs are not
shipped here, so :mod:`repro.graph.datasets` instantiates parameter-matched
stand-ins from the generators in this module.  RMAT reproduces the
power-law degree skew that drives the paper's load-balance results; the
configuration-model generator gives direct control over the degree
exponent; the deterministic topologies (grid/path/star) serve tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

_INDEX_DTYPE = np.int64


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: Optional[str] = None,
    dedup: bool = False,
) -> CSRGraph:
    """Generate a directed R-MAT graph (Graph500-style).

    Args:
        scale: ``num_vertices = 2 ** scale``.
        edge_factor: edges per vertex (Graph500 default 16).
        a, b, c: recursive quadrant probabilities; ``d = 1 - a - b - c``.
        seed: RNG seed (generation is deterministic given the seed).
        name: label; defaults to ``rmat<scale>``.
        dedup: drop duplicate edges (reduces the edge count below
            ``edge_factor * num_vertices``).
    """
    if scale < 0:
        raise GraphFormatError("scale must be >= 0")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphFormatError("RMAT probabilities must be non-negative")
    num_vertices = 1 << scale
    num_edges = edge_factor * num_vertices
    rng = np.random.default_rng(seed)

    src = np.zeros(num_edges, dtype=_INDEX_DTYPE)
    dst = np.zeros(num_edges, dtype=_INDEX_DTYPE)
    # Each bit of the vertex IDs is chosen independently per RMAT recursion
    # level.  P(src bit = 1) = c + d; P(dst bit = 1 | src bit) follows the
    # conditional quadrant probabilities.
    p_src_hi = c + d
    for _ in range(scale):
        r_src = rng.random(num_edges)
        r_dst = rng.random(num_edges)
        src_hi = r_src < p_src_hi
        # Conditional probability that the destination bit is 1.
        p_dst_hi = np.where(
            src_hi,
            d / (c + d) if (c + d) > 0 else 0.0,
            b / (a + b) if (a + b) > 0 else 0.0,
        )
        dst_hi = r_dst < p_dst_hi
        src = (src << 1) | src_hi
        dst = (dst << 1) | dst_hi

    # Permute vertex IDs so that high-degree vertices are not clustered at
    # low IDs (Graph500 does the same).
    perm = rng.permutation(num_vertices).astype(_INDEX_DTYPE)
    src, dst = perm[src], perm[dst]
    pairs = np.stack([src, dst], axis=1)
    return CSRGraph.from_edges(
        num_vertices, pairs, name=name or f"rmat{scale}", dedup=dedup
    )


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    name: Optional[str] = None,
    allow_self_loops: bool = True,
) -> CSRGraph:
    """Uniform random directed multigraph with ``num_edges`` edges."""
    if num_vertices <= 0 and num_edges > 0:
        raise GraphFormatError("cannot place edges in an empty graph")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=_INDEX_DTYPE)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=_INDEX_DTYPE)
    if not allow_self_loops and num_vertices > 1:
        loops = src == dst
        dst[loops] = (dst[loops] + 1) % num_vertices
    pairs = np.stack([src, dst], axis=1)
    return CSRGraph.from_edges(
        num_vertices, pairs, name=name or f"er{num_vertices}"
    )


def power_law_graph(
    num_vertices: int,
    num_edges: int,
    exponent: float = 2.0,
    seed: int = 0,
    name: Optional[str] = None,
) -> CSRGraph:
    """Directed configuration-model graph with power-law out/in degrees.

    Endpoint IDs are drawn from a Zipf-like distribution with the given
    exponent, so both out- and in-degree follow a power law.  Lower
    exponents yield heavier skew (Twitter-like); higher exponents approach
    uniform (Orkut-like).
    """
    if exponent <= 0:
        raise GraphFormatError("exponent must be positive")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    probs = ranks ** (-exponent)
    probs /= probs.sum()
    src = rng.choice(num_vertices, size=num_edges, p=probs).astype(_INDEX_DTYPE)
    dst = rng.choice(num_vertices, size=num_edges, p=probs).astype(_INDEX_DTYPE)
    # Decorrelate IDs so popularity is not a function of vertex index.
    perm = rng.permutation(num_vertices).astype(_INDEX_DTYPE)
    pairs = np.stack([perm[src], perm[dst]], axis=1)
    return CSRGraph.from_edges(
        num_vertices, pairs, name=name or f"plaw{num_vertices}"
    )


def grid_graph(rows: int, cols: int, name: Optional[str] = None) -> CSRGraph:
    """4-neighbour grid with edges in both directions (deterministic)."""
    if rows <= 0 or cols <= 0:
        raise GraphFormatError("grid dimensions must be positive")
    vid = np.arange(rows * cols, dtype=_INDEX_DTYPE).reshape(rows, cols)
    pairs = []
    right = np.stack([vid[:, :-1].ravel(), vid[:, 1:].ravel()], axis=1)
    down = np.stack([vid[:-1, :].ravel(), vid[1:, :].ravel()], axis=1)
    for fwd in (right, down):
        pairs.append(fwd)
        pairs.append(fwd[:, ::-1])
    edges = np.concatenate(pairs, axis=0) if pairs else np.zeros((0, 2))
    return CSRGraph.from_edges(
        rows * cols, edges, name=name or f"grid{rows}x{cols}"
    )


def path_graph(num_vertices: int, name: Optional[str] = None) -> CSRGraph:
    """Directed path 0 -> 1 -> ... -> n-1 (deterministic)."""
    if num_vertices < 0:
        raise GraphFormatError("num_vertices must be >= 0")
    if num_vertices < 2:
        return CSRGraph.from_edges(num_vertices, [], name=name or "path")
    src = np.arange(num_vertices - 1, dtype=_INDEX_DTYPE)
    pairs = np.stack([src, src + 1], axis=1)
    return CSRGraph.from_edges(
        num_vertices, pairs, name=name or f"path{num_vertices}"
    )


def star_graph(
    num_leaves: int, outward: bool = True, name: Optional[str] = None
) -> CSRGraph:
    """Star graph: hub vertex 0 plus ``num_leaves`` leaves.

    The extreme power-law case; used to exercise load-imbalance handling.
    """
    if num_leaves < 0:
        raise GraphFormatError("num_leaves must be >= 0")
    leaves = np.arange(1, num_leaves + 1, dtype=_INDEX_DTYPE)
    hub = np.zeros(num_leaves, dtype=_INDEX_DTYPE)
    pairs = (
        np.stack([hub, leaves], axis=1)
        if outward
        else np.stack([leaves, hub], axis=1)
    )
    return CSRGraph.from_edges(
        num_leaves + 1, pairs, name=name or f"star{num_leaves}"
    )
