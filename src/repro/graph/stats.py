"""Graph statistics: degree distributions and skew metrics.

Used to validate that the synthetic dataset stand-ins preserve the
structural properties the paper's results depend on — power-law degree
skew above all (Section II-C: "the power-law edge distribution of
real-world graphs, where a few vertices connect with most edges").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class DegreeStats:
    """Summary statistics of a degree distribution.

    Attributes:
        mean: average degree (edges / vertices).
        median: 50th-percentile degree.
        maximum: largest degree observed.
        p99: 99th-percentile degree.
        gini: Gini coefficient of the degree distribution (0 = uniform,
            1 = one vertex owns every edge).
        top1pct_edge_share: fraction of all edges owned by the top 1% of
            vertices by degree — the load-imbalance driver.
        power_law_exponent: fitted exponent of the degree tail
            (Clauset-style MLE over degrees >= 2).
    """

    mean: float
    median: float
    maximum: int
    p99: float
    gini: float
    top1pct_edge_share: float
    power_law_exponent: float

    @property
    def skewed(self) -> bool:
        """A practical power-law test: the top 1% of vertices own a
        disproportionate share of the edges."""
        return self.top1pct_edge_share > 0.05


def degree_statistics(
    graph: CSRGraph, direction: str = "out"
) -> DegreeStats:
    """Compute degree-distribution statistics.

    Args:
        graph: the graph.
        direction: ``'out'`` or ``'in'``.
    """
    if direction == "out":
        degrees = np.asarray(graph.out_degrees, dtype=np.float64)
    elif direction == "in":
        degrees = np.asarray(graph.in_degrees(), dtype=np.float64)
    else:
        raise GraphFormatError(f"direction must be in/out, got {direction!r}")
    if degrees.size == 0:
        raise GraphFormatError("empty graph has no degree distribution")

    total = degrees.sum()
    ordered = np.sort(degrees)[::-1]
    top = max(int(np.ceil(degrees.size * 0.01)), 1)
    top_share = float(ordered[:top].sum() / total) if total else 0.0
    return DegreeStats(
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        maximum=int(degrees.max()),
        p99=float(np.percentile(degrees, 99)),
        gini=_gini(degrees),
        top1pct_edge_share=top_share,
        power_law_exponent=_power_law_exponent(degrees),
    )


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution (0 = uniform,
    -> 1 = maximally concentrated)."""
    values = np.sort(values)
    n = values.size
    total = values.sum()
    if total == 0 or n == 0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * values).sum() / (n * total)) - (n + 1) / n)


def _power_law_exponent(degrees: np.ndarray, d_min: int = 2) -> float:
    """Maximum-likelihood exponent of a discrete power-law tail.

    Clauset-Shalizi-Newman estimator:
    ``alpha = 1 + n / sum(ln(d_i / (d_min - 0.5)))`` over degrees >= d_min.
    Returns inf when the tail is empty (degenerate distributions).
    """
    tail = degrees[degrees >= d_min]
    if tail.size == 0:
        return float("inf")
    return float(1.0 + tail.size / np.log(tail / (d_min - 0.5)).sum())


def degree_histogram(
    graph: CSRGraph, direction: str = "out", bins: int = 10
) -> list[tuple[int, int, int]]:
    """Logarithmic degree histogram as ``(lo, hi, count)`` rows."""
    degrees = (
        graph.out_degrees if direction == "out" else graph.in_degrees()
    )
    degrees = np.asarray(degrees)
    positive = degrees[degrees > 0]
    if positive.size == 0:
        return [(0, 0, int(degrees.size))]
    edges = np.unique(
        np.geomspace(1, max(positive.max(), 2), bins + 1).astype(np.int64)
    )
    rows = []
    zero_count = int(np.count_nonzero(degrees == 0))
    if zero_count:
        rows.append((0, 0, zero_count))
    for lo, hi in zip(edges, edges[1:]):
        count = int(np.count_nonzero((degrees >= lo) & (degrees < hi)))
        rows.append((int(lo), int(hi) - 1, count))
    tail = int(np.count_nonzero(degrees >= edges[-1]))
    rows.append((int(edges[-1]), int(degrees.max()), tail))
    return rows
