"""Exception hierarchy for the ScalaGraph reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphFormatError(ReproError):
    """An input graph is malformed (bad CSR arrays, negative IDs, ...)."""


class ConfigurationError(ReproError):
    """An accelerator/NoC configuration is invalid or unsupported."""


class SynthesisError(ReproError):
    """A hardware configuration fails to synthesise (route failure).

    Mirrors the paper's observation that crossbar-based designs beyond a
    PE-count limit cannot be placed and routed on the FPGA at all
    (Section II-B, Table IV: '-').
    """


class CapacityError(ReproError):
    """On-chip storage (SPD, replica store) cannot hold the working set."""


class SimulationError(ReproError):
    """A simulator reached an inconsistent state."""
