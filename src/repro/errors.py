"""Exception hierarchy for the ScalaGraph reproduction library."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphFormatError(ReproError):
    """An input graph is malformed (bad CSR arrays, negative IDs, ...)."""


class ConfigurationError(ReproError):
    """An accelerator/NoC configuration is invalid or unsupported."""


class SynthesisError(ReproError):
    """A hardware configuration fails to synthesise (route failure).

    Mirrors the paper's observation that crossbar-based designs beyond a
    PE-count limit cannot be placed and routed on the FPGA at all
    (Section II-B, Table IV: '-').
    """


class CapacityError(ReproError):
    """On-chip storage (SPD, replica store) cannot hold the working set."""


class SimulationError(ReproError):
    """A simulator reached an inconsistent state."""


class WorkerCrashError(ReproError):
    """A parallel sweep exhausted its retries on one or more cells.

    Raised by :func:`repro.experiments.parallel.run_matrix_parallel`
    only when its retry budget is spent *and* the serial in-process
    fallback is disabled; completed cells are already persisted (cache
    and checkpoint), so re-invoking the sweep recomputes only the cells
    named here.

    Attributes:
        cells: the (graph, algorithm, system) triples left uncomputed.
        causes: per-cell original failure context — the exception that
            made the cell's *last* attempt fail (a ``BrokenProcessPool``
            for a SIGKILLed worker, a synthesized ``TimeoutError`` for a
            cell that blew its wall-clock budget).  Keys are the same
            triples as :attr:`cells`; cells whose cause was not
            captured are absent.  The first available cause is also
            chained as ``__cause__`` so tracebacks show what actually
            went wrong inside the pool, not just the give-up.
    """

    def __init__(
        self,
        cells: Iterable[Tuple[str, str, str]],
        causes: Optional[
            Mapping[Tuple[str, str, str], BaseException]
        ] = None,
    ) -> None:
        self.cells = list(cells)
        self.causes: Dict[Tuple[str, str, str], BaseException] = dict(
            causes or {}
        )
        labels = ", ".join("/".join(cell) for cell in self.cells)
        detail = ""
        if self.causes:
            shown = sorted(
                {
                    f"{type(exc).__name__}: {exc}"
                    if str(exc)
                    else type(exc).__name__
                    for exc in self.causes.values()
                }
            )
            detail = f" (causes: {'; '.join(shown)})"
        super().__init__(
            f"{len(self.cells)} cell(s) failed after exhausting retries: "
            f"{labels}{detail}"
        )


class ServiceError(ReproError):
    """Base class for sweep-service (``repro.service``) errors."""


class ProtocolError(ServiceError):
    """A service request/response payload is malformed or invalid.

    Maps to an HTTP 400: the submission itself is wrong (unknown
    dataset/algorithm/system, bad field types, chaos hooks without the
    chaos gate), as opposed to a well-formed request the service cannot
    currently take on (:class:`AdmissionError`).
    """


class AdmissionError(ServiceError):
    """The service refused to enqueue a well-formed request.

    Maps to an HTTP 429 (admission queue full, client table full) or
    503 (draining).  Load shedding is explicit by design: the caller
    learns immediately instead of queueing into an unbounded backlog.

    Attributes:
        reason: machine-readable refusal category (``queue-full``,
            ``client-table-full``, ``draining``).
        retry_after_s: suggested client backoff in seconds.
    """

    def __init__(self, reason: str, retry_after_s: float = 1.0) -> None:
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(
            f"request not admitted ({reason}); retry after "
            f"{retry_after_s:g}s"
        )


class DeadlineExceededError(ServiceError):
    """A request's SLO deadline expired before its work completed.

    Attributes:
        budget_s: the deadline budget the request carried, in seconds.
    """

    def __init__(self, message: str, budget_s: Optional[float] = None) -> None:
        self.budget_s = budget_s
        super().__init__(message)


class CircuitOpenError(ServiceError):
    """A config-family's circuit breaker is open; full-fidelity
    execution is being shed for that family.

    Attributes:
        family: the tripped config-family label.
    """

    def __init__(self, family: str) -> None:
        self.family = family
        super().__init__(
            f"circuit breaker open for config family {family!r}; "
            "serving degraded responses"
        )


class EngineFallbackWarning(UserWarning):
    """A vectorized engine tripped a sanitizer invariant and the run
    was transparently retried on the reference engine(s).

    Structured so harnesses can filter on the failed engine and the
    violated invariant without parsing prose.

    Attributes:
        engine: the engine(s) that were active when the invariant
            tripped (e.g. ``vectorized``, or
            ``noc:vectorized+cycle:vectorized`` from the cycle
            simulator's dual-engine selection).
        error: the :class:`SanitizerError` that triggered the fallback.
    """

    def __init__(self, engine: str, error: "SanitizerError") -> None:
        self.engine = engine
        self.error = error
        super().__init__(
            f"engine {engine!r} violated sanitizer invariant "
            f"{error.invariant!r} (cycle {error.cycle}); "
            "falling back to the reference engine(s) for this run"
        )


class SanitizerError(SimulationError):
    """A runtime invariant checked by the SimSanitizer was violated.

    Structured so CI logs and tests can name the broken invariant
    without parsing prose.

    Attributes:
        invariant: machine-readable name of the violated invariant
            (e.g. ``update-conservation``, ``fifo-depth``).
        cycle: simulated cycle at which the violation was detected, or
            None for non-cycle checks.
        context: which simulator/component raised (e.g. ``cycle_sim``).
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        cycle: Optional[int] = None,
        context: str = "sim",
    ) -> None:
        self.invariant = invariant
        self.cycle = cycle
        self.context = context
        where = f" at cycle {cycle}" if cycle is not None else ""
        super().__init__(
            f"[{context}:{invariant}]{where}: {message}"
        )
