"""Exception hierarchy for the ScalaGraph reproduction library."""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphFormatError(ReproError):
    """An input graph is malformed (bad CSR arrays, negative IDs, ...)."""


class ConfigurationError(ReproError):
    """An accelerator/NoC configuration is invalid or unsupported."""


class SynthesisError(ReproError):
    """A hardware configuration fails to synthesise (route failure).

    Mirrors the paper's observation that crossbar-based designs beyond a
    PE-count limit cannot be placed and routed on the FPGA at all
    (Section II-B, Table IV: '-').
    """


class CapacityError(ReproError):
    """On-chip storage (SPD, replica store) cannot hold the working set."""


class SimulationError(ReproError):
    """A simulator reached an inconsistent state."""


class SanitizerError(SimulationError):
    """A runtime invariant checked by the SimSanitizer was violated.

    Structured so CI logs and tests can name the broken invariant
    without parsing prose.

    Attributes:
        invariant: machine-readable name of the violated invariant
            (e.g. ``update-conservation``, ``fifo-depth``).
        cycle: simulated cycle at which the violation was detected, or
            None for non-cycle checks.
        context: which simulator/component raised (e.g. ``cycle_sim``).
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        cycle: Optional[int] = None,
        context: str = "sim",
    ) -> None:
        self.invariant = invariant
        self.cycle = cycle
        self.context = context
        where = f" at cycle {cycle}" if cycle is not None else ""
        super().__init__(
            f"[{context}:{invariant}]{where}: {message}"
        )
