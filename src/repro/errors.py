"""Exception hierarchy for the ScalaGraph reproduction library."""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphFormatError(ReproError):
    """An input graph is malformed (bad CSR arrays, negative IDs, ...)."""


class ConfigurationError(ReproError):
    """An accelerator/NoC configuration is invalid or unsupported."""


class SynthesisError(ReproError):
    """A hardware configuration fails to synthesise (route failure).

    Mirrors the paper's observation that crossbar-based designs beyond a
    PE-count limit cannot be placed and routed on the FPGA at all
    (Section II-B, Table IV: '-').
    """


class CapacityError(ReproError):
    """On-chip storage (SPD, replica store) cannot hold the working set."""


class SimulationError(ReproError):
    """A simulator reached an inconsistent state."""


class WorkerCrashError(ReproError):
    """A parallel sweep exhausted its retries on one or more cells.

    Raised by :func:`repro.experiments.parallel.run_matrix_parallel`
    only when its retry budget is spent *and* the serial in-process
    fallback is disabled; completed cells are already persisted (cache
    and checkpoint), so re-invoking the sweep recomputes only the cells
    named here.

    Attributes:
        cells: the (graph, algorithm, system) triples left uncomputed.
    """

    def __init__(self, cells) -> None:
        self.cells = list(cells)
        labels = ", ".join("/".join(cell) for cell in self.cells)
        super().__init__(
            f"{len(self.cells)} cell(s) failed after exhausting retries: "
            f"{labels}"
        )


class EngineFallbackWarning(UserWarning):
    """A vectorized engine tripped a sanitizer invariant and the run
    was transparently retried on the reference engine(s).

    Structured so harnesses can filter on the failed engine and the
    violated invariant without parsing prose.

    Attributes:
        engine: the engine(s) that were active when the invariant
            tripped (e.g. ``vectorized``, or
            ``noc:vectorized+cycle:vectorized`` from the cycle
            simulator's dual-engine selection).
        error: the :class:`SanitizerError` that triggered the fallback.
    """

    def __init__(self, engine: str, error: "SanitizerError") -> None:
        self.engine = engine
        self.error = error
        super().__init__(
            f"engine {engine!r} violated sanitizer invariant "
            f"{error.invariant!r} (cycle {error.cycle}); "
            "falling back to the reference engine(s) for this run"
        )


class SanitizerError(SimulationError):
    """A runtime invariant checked by the SimSanitizer was violated.

    Structured so CI logs and tests can name the broken invariant
    without parsing prose.

    Attributes:
        invariant: machine-readable name of the violated invariant
            (e.g. ``update-conservation``, ``fifo-depth``).
        cycle: simulated cycle at which the violation was detected, or
            None for non-cycle checks.
        context: which simulator/component raised (e.g. ``cycle_sim``).
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        cycle: Optional[int] = None,
        context: str = "sim",
    ) -> None:
        self.invariant = invariant
        self.cycle = cycle
        self.context = context
        where = f" at cycle {cycle}" if cycle is not None else ""
        super().__init__(
            f"[{context}:{invariant}]{where}: {message}"
        )
