"""Plain-text formatting of experiment results.

The benchmark harnesses print the same rows/series the paper's tables
and figures report; these helpers keep the formatting uniform.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append(
            [
                float_fmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(list(headers)))
    lines.append(fmt_line(["-" * w for w in widths]))
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[object, float]],
    x_label: str = "x",
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render named series sharing an x-axis (one figure line each)."""
    xs: List[object] = []
    for points in series.values():
        for x in points:
            if x not in xs:
                xs.append(x)
    headers = [x_label] + list(series.keys())
    rows = []
    for x in xs:
        row: List[object] = [x]
        for name in series:
            value = series[name].get(x)
            row.append("-" if value is None else float(value))
        rows.append(row)
    return format_table(headers, rows, title=title, float_fmt=float_fmt)


def normalize(
    values: Mapping[object, float], baseline_key: object
) -> Dict[object, float]:
    """Normalise a series to one of its entries (paper-figure style)."""
    baseline = values[baseline_key]
    if baseline == 0:
        raise ValueError("cannot normalise to a zero baseline")
    return {key: value / baseline for key, value in values.items()}
