"""Parallel fan-out of the experiment matrix.

The paper's evaluation is a (graph x algorithm x system) sweep whose
cells are independent; :func:`run_matrix_parallel` fans them out over a
``concurrent.futures.ProcessPoolExecutor`` and merges the results back
deterministically, so a parallel sweep's :class:`ExperimentMatrix` is
identical — per-cell ``to_dict()`` output included — to the serial
:func:`~repro.experiments.runner.run_matrix`'s.

Design notes:

* The unit of work is one **(graph, algorithm) cell with all of its
  missing systems**, not one (graph, algorithm, system) triple: the
  functional reference execution is shared across systems, and
  splitting it over workers would recompute it per system.
* Work items cross the process boundary as plain strings/ints and come
  back as :class:`SimulationReport` (numpy arrays pickle natively), so
  pickling normally cannot fail; if it does — or the pool itself breaks
  (sandboxes without working semaphores, dying workers) — the runner
  falls back to in-process serial execution rather than raising.
* With a :class:`~repro.experiments.store.ResultCache`, cached cells
  are loaded in the parent before any worker is spawned; only stale
  cells are dispatched, and fresh results are written back.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.stats import SimulationReport
from repro.errors import ConfigurationError
from repro.experiments.runner import (
    ALGORITHM_ORDER,
    GRAPH_ORDER,
    SYSTEM_ORDER,
    ExperimentMatrix,
    execute_cell,
)
from repro.experiments.store import ResultCache

#: (graph, algorithm, missing-systems) work unit shipped to a worker.
_CellJob = Tuple[str, str, Tuple[str, ...]]


def _cell_worker(
    graph_name: str,
    algorithm_name: str,
    systems: Tuple[str, ...],
    scale_shift: int,
    max_iterations: Optional[int],
) -> List[Tuple[str, SimulationReport]]:
    """Top-level (hence picklable) worker entry point."""
    return execute_cell(
        graph_name, algorithm_name, systems, scale_shift, max_iterations
    )


def run_matrix_parallel(
    graphs: Sequence[str] = GRAPH_ORDER,
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    systems: Sequence[str] = SYSTEM_ORDER,
    scale_shift: int = 0,
    max_iterations: Optional[int] = None,
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    refresh: bool = False,
) -> ExperimentMatrix:
    """Run the sweep with cell-level process parallelism.

    Args:
        max_workers: worker processes; ``None`` lets the executor pick
            (bounded by the number of dispatched cells), ``1`` runs
            serially in-process without spawning a pool.
        cache: optional on-disk result cache; hits skip computation
            entirely and fresh cells are written back.
        refresh: recompute every cell even when cached.

    Returns:
        The same :class:`ExperimentMatrix` the serial runner produces —
        deterministic cell order, identical reports.
    """
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(
            f"max_workers must be >= 1 (got {max_workers})"
        )
    graphs = tuple(graphs)
    algorithms = tuple(algorithms)
    systems = tuple(systems)

    cached: Dict[Tuple[str, str, str], SimulationReport] = {}
    jobs: List[_CellJob] = []
    for graph_name in graphs:
        for algorithm_name in algorithms:
            missing: List[str] = []
            for system_label in systems:
                report = None
                if cache is not None and not refresh:
                    report = cache.get(
                        graph_name,
                        algorithm_name,
                        system_label,
                        scale_shift=scale_shift,
                        max_iterations=max_iterations,
                    )
                if report is None:
                    missing.append(system_label)
                else:
                    cached[(graph_name, algorithm_name, system_label)] = report
            if missing:
                jobs.append((graph_name, algorithm_name, tuple(missing)))

    computed: Dict[Tuple[str, str, str], SimulationReport] = {}
    if jobs:
        if max_workers == 1 or len(jobs) == 1:
            _run_jobs_serial(jobs, scale_shift, max_iterations, computed)
        else:
            _run_jobs_pooled(
                jobs, scale_shift, max_iterations, max_workers, computed
            )

    if cache is not None:
        for (graph_name, algorithm_name, system_label), report in (
            computed.items()
        ):
            cache.put(
                graph_name,
                algorithm_name,
                system_label,
                report,
                scale_shift=scale_shift,
                max_iterations=max_iterations,
            )

    matrix = ExperimentMatrix()
    for graph_name in graphs:
        for algorithm_name in algorithms:
            for system_label in systems:
                key = (graph_name, algorithm_name, system_label)
                matrix.reports[key] = (
                    computed[key] if key in computed else cached[key]
                )
    return matrix


# ----------------------------------------------------------------------
# Execution strategies
# ----------------------------------------------------------------------
def _run_jobs_serial(
    jobs: Sequence[_CellJob],
    scale_shift: int,
    max_iterations: Optional[int],
    out: Dict[Tuple[str, str, str], SimulationReport],
) -> None:
    for graph_name, algorithm_name, missing in jobs:
        for system_label, report in execute_cell(
            graph_name, algorithm_name, missing, scale_shift, max_iterations
        ):
            out[(graph_name, algorithm_name, system_label)] = report


def _run_jobs_pooled(
    jobs: Sequence[_CellJob],
    scale_shift: int,
    max_iterations: Optional[int],
    max_workers: Optional[int],
    out: Dict[Tuple[str, str, str], SimulationReport],
) -> None:
    """Fan the jobs over a process pool.

    Graceful degradation: when the pool cannot be used at all (no
    multiprocessing support, broken workers) or a payload will not
    pickle, whatever cells are still missing are recomputed serially
    in-process; partial results from a pool that broke mid-flight are
    kept and never overwritten.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    if max_workers is not None:
        max_workers = min(max_workers, len(jobs))
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(
                    _cell_worker,
                    graph_name,
                    algorithm_name,
                    missing,
                    scale_shift,
                    max_iterations,
                ): (graph_name, algorithm_name)
                for graph_name, algorithm_name, missing in jobs
            }
            for future, (graph_name, algorithm_name) in futures.items():
                for system_label, report in future.result():
                    out[(graph_name, algorithm_name, system_label)] = report
    except (BrokenProcessPool, pickle.PicklingError, OSError, ImportError):
        # No/broken multiprocessing support, or an unpicklable payload:
        # recompute whatever is still missing in-process.
        missing_jobs = [
            (graph_name, algorithm_name, tuple(
                s
                for s in missing
                if (graph_name, algorithm_name, s) not in out
            ))
            for graph_name, algorithm_name, missing in jobs
            if any(
                (graph_name, algorithm_name, s) not in out for s in missing
            )
        ]
        _run_jobs_serial(missing_jobs, scale_shift, max_iterations, out)
