"""Parallel fan-out of the experiment matrix.

The paper's evaluation is a (graph x algorithm x system) sweep whose
cells are independent; :func:`run_matrix_parallel` fans them out over a
``concurrent.futures.ProcessPoolExecutor`` and merges the results back
deterministically, so a parallel sweep's :class:`ExperimentMatrix` is
identical — per-cell ``to_dict()`` output included — to the serial
:func:`~repro.experiments.runner.run_matrix`'s.

Design notes:

* The unit of work is one **(graph, algorithm) cell with all of its
  missing systems**, not one (graph, algorithm, system) triple: the
  functional reference execution is shared across systems, and
  splitting it over workers would recompute it per system.
* Work items cross the process boundary as plain strings/ints and come
  back as :class:`SimulationReport` (numpy arrays pickle natively), so
  pickling normally cannot fail; if it does — or multiprocessing is
  unavailable altogether — the runner falls back to in-process serial
  execution rather than raising.
* **Crash isolation** (:class:`RetryPolicy`): a worker that dies (OOM
  kill, segfault) breaks the whole ``ProcessPoolExecutor``; instead of
  aborting the sweep, the runner requeues the in-flight cells, rebuilds
  the pool, and retries each cell up to ``max_retries`` times with
  exponential backoff.  Cells that exhaust their retries are recomputed
  serially in-process (``serial_fallback=True``, the default) or
  reported via :class:`~repro.errors.WorkerCrashError`.
* **Timeouts**: with ``cell_timeout`` set, a cell that exceeds its
  wall-clock budget is cancelled (or, if already running, its pool is
  torn down) and retried like a crashed cell.
* **Incremental persistence**: with a
  :class:`~repro.experiments.store.ResultCache`, cached cells are
  loaded in the parent before any worker is spawned and fresh results
  are written back *per completed cell*, not at sweep end — a crash
  never discards finished work.  A
  :class:`~repro.experiments.checkpoint.SweepCheckpoint` journal
  additionally makes interrupted sweeps resumable even without a
  cache: at most the in-flight cells are lost.
"""

from __future__ import annotations

import pickle
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.stats import SimulationReport
from repro.errors import ConfigurationError, WorkerCrashError
from repro.experiments.checkpoint import SweepCheckpoint
from repro.experiments.runner import (
    ALGORITHM_ORDER,
    GRAPH_ORDER,
    SYSTEM_ORDER,
    ExperimentMatrix,
    execute_cell,
)
from repro.experiments.store import CODE_MODEL_VERSION, ResultCache

#: (graph, algorithm, missing-systems) work unit shipped to a worker.
_CellJob = Tuple[str, str, Tuple[str, ...]]

#: Callback fired in the parent for every completed (g, a, s) result.
_OnResult = Callable[[Tuple[str, str, str], SimulationReport], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Resilience knobs of the pooled runner.

    Attributes:
        cell_timeout: wall-clock seconds one cell (its whole worker
            call) may take before it is cancelled and retried; None
            disables timeouts.
        max_retries: times a crashed/timed-out cell is retried on a
            fresh pool before it is given up on (0 = no retries).
        backoff: base of the exponential retry delay; retry *n* sleeps
            ``backoff * 2**(n-1)`` seconds (capped at 2 s).
        poll_interval: seconds the parent blocks per wait() call while
            supervising in-flight cells; bounds timeout-detection
            latency.
        serial_fallback: recompute cells that exhausted their retries
            serially in-process (True, the default) instead of raising
            :class:`~repro.errors.WorkerCrashError`.
    """

    cell_timeout: Optional[float] = None
    max_retries: int = 2
    backoff: float = 0.05
    poll_interval: float = 0.1
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ConfigurationError("cell_timeout must be positive or None")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff < 0:
            raise ConfigurationError("backoff must be >= 0")
        if self.poll_interval <= 0:
            raise ConfigurationError("poll_interval must be positive")


def _cell_worker(
    graph_name: str,
    algorithm_name: str,
    systems: Tuple[str, ...],
    scale_shift: int,
    max_iterations: Optional[int],
) -> List[Tuple[str, SimulationReport]]:
    """Top-level (hence picklable) worker entry point."""
    return execute_cell(
        graph_name, algorithm_name, systems, scale_shift, max_iterations
    )


def run_matrix_parallel(
    graphs: Sequence[str] = GRAPH_ORDER,
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    systems: Sequence[str] = SYSTEM_ORDER,
    scale_shift: int = 0,
    max_iterations: Optional[int] = None,
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    refresh: bool = False,
    policy: Optional[RetryPolicy] = None,
    checkpoint: Optional[Path] = None,
) -> ExperimentMatrix:
    """Run the sweep with cell-level process parallelism.

    Args:
        max_workers: worker processes; ``None`` lets the executor pick
            (bounded by the number of dispatched cells), ``1`` runs
            serially in-process without spawning a pool.
        cache: optional on-disk result cache; hits skip computation
            entirely and fresh cells are written back as they complete.
        refresh: recompute every cell even when cached/checkpointed.
        policy: crash-isolation/timeout/retry knobs of the pooled path
            (defaults to :class:`RetryPolicy`'s defaults).
        checkpoint: optional path to a
            :class:`~repro.experiments.checkpoint.SweepCheckpoint`
            journal.  Completed cells are journaled as they land and an
            interrupted sweep re-invoked with the same path resumes
            from the journal, losing at most the in-flight cells.

    Returns:
        The same :class:`ExperimentMatrix` the serial runner produces —
        deterministic cell order, identical reports.
    """
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(
            f"max_workers must be >= 1 (got {max_workers})"
        )
    graphs = tuple(graphs)
    algorithms = tuple(algorithms)
    systems = tuple(systems)

    ckpt: Optional[SweepCheckpoint] = None
    resumed: Dict[Tuple[str, str, str], SimulationReport] = {}
    if checkpoint is not None:
        ckpt = SweepCheckpoint(
            checkpoint,
            signature={
                "graphs": list(graphs),
                "algorithms": list(algorithms),
                "systems": list(systems),
                "scale_shift": scale_shift,
                "max_iterations": max_iterations,
                "model_version": (
                    cache.model_version
                    if cache is not None
                    else CODE_MODEL_VERSION
                ),
            },
        )
        if not refresh:
            resumed = ckpt.load()

    cached: Dict[Tuple[str, str, str], SimulationReport] = {}
    jobs: List[_CellJob] = []
    for graph_name in graphs:
        for algorithm_name in algorithms:
            missing: List[str] = []
            for system_label in systems:
                key = (graph_name, algorithm_name, system_label)
                report = None
                if cache is not None and not refresh:
                    report = cache.get(
                        graph_name,
                        algorithm_name,
                        system_label,
                        scale_shift=scale_shift,
                        max_iterations=max_iterations,
                    )
                if report is None and key in resumed:
                    report = resumed[key]
                    if cache is not None:
                        # Promote the journaled cell into the cache so
                        # later sweeps hit without the checkpoint file.
                        cache.put(
                            graph_name,
                            algorithm_name,
                            system_label,
                            report,
                            scale_shift=scale_shift,
                            max_iterations=max_iterations,
                        )
                if report is None:
                    missing.append(system_label)
                else:
                    cached[key] = report
            if missing:
                jobs.append((graph_name, algorithm_name, tuple(missing)))

    def persist(
        key: Tuple[str, str, str], report: SimulationReport
    ) -> None:
        # Incremental write-back: runs in the parent the moment a cell
        # completes, so a crash later in the sweep loses nothing.
        if cache is not None:
            cache.put(
                key[0],
                key[1],
                key[2],
                report,
                scale_shift=scale_shift,
                max_iterations=max_iterations,
            )
        if ckpt is not None:
            ckpt.append(key, report)

    on_result = persist if (cache is not None or ckpt is not None) else None

    computed: Dict[Tuple[str, str, str], SimulationReport] = {}
    if jobs:
        if ckpt is not None:
            ckpt.start(reset=refresh)
        try:
            if max_workers == 1 or len(jobs) == 1:
                _run_jobs_serial(
                    jobs, scale_shift, max_iterations, computed,
                    on_result=on_result,
                )
            else:
                _run_jobs_pooled(
                    jobs, scale_shift, max_iterations, max_workers, computed,
                    policy=policy, on_result=on_result,
                )
        finally:
            if ckpt is not None:
                ckpt.close()

    matrix = ExperimentMatrix()
    for graph_name in graphs:
        for algorithm_name in algorithms:
            for system_label in systems:
                key = (graph_name, algorithm_name, system_label)
                matrix.reports[key] = (
                    computed[key] if key in computed else cached[key]
                )
    return matrix


# ----------------------------------------------------------------------
# Execution strategies
# ----------------------------------------------------------------------
def _run_jobs_serial(
    jobs: Sequence[_CellJob],
    scale_shift: int,
    max_iterations: Optional[int],
    out: Dict[Tuple[str, str, str], SimulationReport],
    on_result: Optional[_OnResult] = None,
) -> None:
    for graph_name, algorithm_name, missing in jobs:
        for system_label, report in execute_cell(
            graph_name, algorithm_name, missing, scale_shift, max_iterations
        ):
            key = (graph_name, algorithm_name, system_label)
            out[key] = report
            if on_result is not None:
                on_result(key, report)


def _terminate_pool(pool) -> None:
    """Tear a pool down without waiting on its (possibly hung) workers."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        proc.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def _run_jobs_pooled(
    jobs: Sequence[_CellJob],
    scale_shift: int,
    max_iterations: Optional[int],
    max_workers: Optional[int],
    out: Dict[Tuple[str, str, str], SimulationReport],
    policy: Optional[RetryPolicy] = None,
    on_result: Optional[_OnResult] = None,
) -> None:
    """Fan the jobs over a process pool with crash isolation.

    A dying worker breaks the whole ``ProcessPoolExecutor`` (every
    outstanding future raises ``BrokenProcessPool``); the supervisor
    loop below requeues the in-flight cells, rebuilds the pool, and
    retries them under the :class:`RetryPolicy`.  Cells that exhaust
    their retries fall back to in-process serial execution (or raise
    :class:`~repro.errors.WorkerCrashError` when the policy forbids the
    fallback).  When the pool cannot be used at all (no multiprocessing
    support) or a payload will not pickle, whatever cells are still
    missing are recomputed serially; completed results are never
    discarded or overwritten.
    """
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    policy = policy or RetryPolicy()
    if max_workers is not None:
        max_workers = min(max_workers, len(jobs))

    pending: Deque[Tuple[_CellJob, int]] = deque((job, 0) for job in jobs)
    failed: List[_CellJob] = []
    # Last failure context per job, so a cell given up on after N pool
    # rebuilds still reports *why* its attempts failed (the original
    # BrokenProcessPool / timeout), not just a bare give-up.
    last_cause: Dict[_CellJob, BaseException] = {}

    def record(job: _CellJob, results) -> None:
        graph_name, algorithm_name, _ = job
        last_cause.pop(job, None)
        for system_label, report in results:
            key = (graph_name, algorithm_name, system_label)
            out[key] = report
            if on_result is not None:
                on_result(key, report)

    def requeue(
        job: _CellJob,
        attempts: int,
        cause: Optional[BaseException] = None,
    ) -> None:
        if cause is not None:
            last_cause[job] = cause
        if attempts > policy.max_retries:
            failed.append(job)
            return
        if policy.backoff > 0 and attempts > 0:
            time.sleep(min(policy.backoff * 2 ** (attempts - 1), 2.0))
        pending.append((job, attempts))

    try:
        while pending:
            pool = ProcessPoolExecutor(max_workers=max_workers)
            limit = getattr(pool, "_max_workers", None) or len(jobs)
            # future -> (job, attempts, deadline)
            inflight: Dict = {}
            broken = False
            try:
                while (pending or inflight) and not broken:
                    while pending and len(inflight) < limit and not broken:
                        job, attempts = pending.popleft()
                        try:
                            future = pool.submit(
                                _cell_worker,
                                job[0],
                                job[1],
                                job[2],
                                scale_shift,
                                max_iterations,
                            )
                        except BrokenProcessPool as exc:
                            broken = True
                            requeue(job, attempts + 1, cause=exc)
                            break
                        deadline = (
                            None
                            if policy.cell_timeout is None
                            else time.monotonic() + policy.cell_timeout
                        )
                        inflight[future] = (job, attempts, deadline)
                    done, _ = wait(
                        set(inflight),
                        timeout=policy.poll_interval,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        job, attempts, _ = inflight.pop(future)
                        try:
                            results = future.result(timeout=0)
                        except BrokenProcessPool as exc:
                            # A worker died; this future may be the
                            # victim or a bystander — both retry.
                            broken = True
                            requeue(job, attempts + 1, cause=exc)
                        else:
                            record(job, results)
                    if broken:
                        continue
                    now = time.monotonic()
                    expired = [
                        future
                        for future, (_, _, deadline) in inflight.items()
                        if deadline is not None and now >= deadline
                    ]
                    for future in expired:
                        job, attempts, _ = inflight.pop(future)
                        if not future.cancel():
                            # Already running: the only way to reclaim
                            # the worker is to tear the pool down.
                            broken = True
                        requeue(
                            job,
                            attempts + 1,
                            cause=TimeoutError(
                                f"cell {job[0]}/{job[1]} exceeded its "
                                f"{policy.cell_timeout:g}s wall-clock "
                                "budget"
                            ),
                        )
            finally:
                # Whatever is still in flight goes back to the queue: a
                # cancelled-before-start cell keeps its attempt count, a
                # victim of a broken/torn-down pool is charged one.
                for future, (job, attempts, _) in inflight.items():
                    if future.cancel():
                        pending.appendleft((job, attempts))
                    else:
                        requeue(job, attempts + 1)
                inflight.clear()
                _terminate_pool(pool)
    except (pickle.PicklingError, OSError, ImportError):
        # No/broken multiprocessing support, or an unpicklable payload:
        # recompute whatever is still missing in-process.
        _run_jobs_serial(
            _still_missing(jobs, out),
            scale_shift,
            max_iterations,
            out,
            on_result=on_result,
        )
        return

    if failed:
        if policy.serial_fallback:
            _run_jobs_serial(
                _still_missing(failed, out),
                scale_shift,
                max_iterations,
                out,
                on_result=on_result,
            )
        else:
            cells = [
                (graph_name, algorithm_name, system_label)
                for graph_name, algorithm_name, missing in failed
                for system_label in missing
                if (graph_name, algorithm_name, system_label) not in out
            ]
            causes = {
                (graph_name, algorithm_name, system_label): last_cause[
                    (graph_name, algorithm_name, missing)
                ]
                for graph_name, algorithm_name, missing in failed
                for system_label in missing
                if (graph_name, algorithm_name, missing) in last_cause
                and (graph_name, algorithm_name, system_label) not in out
            }
            error = WorkerCrashError(cells, causes=causes)
            # Chain the first original failure so the traceback shows
            # what actually broke inside the pool.
            raise error from next(iter(causes.values()), None)


def _still_missing(
    jobs: Sequence[_CellJob],
    out: Dict[Tuple[str, str, str], SimulationReport],
) -> List[_CellJob]:
    """The sub-jobs whose systems are not computed yet."""
    remaining: List[_CellJob] = []
    for graph_name, algorithm_name, missing in jobs:
        left = tuple(
            system_label
            for system_label in missing
            if (graph_name, algorithm_name, system_label) not in out
        )
        if left:
            remaining.append((graph_name, algorithm_name, left))
    return remaining
