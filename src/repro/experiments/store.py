"""Persistence for experiment results.

Full sweeps take minutes; this module provides two layers:

* :func:`save_matrix` / :func:`load_matrix_summaries` — save a whole
  :class:`~repro.experiments.runner.ExperimentMatrix` as one JSON file
  for analyses and regression comparisons (gold property arrays are
  summarised, not embedded — rerun the reference engine if you need
  them).
* :class:`ResultCache` — a per-cell on-disk cache the matrix runners
  consult, keyed by (dataset fingerprint, run-config hash, code-model
  version), so re-running a sweep recomputes only stale cells.  Cached
  cells round-trip through :meth:`SimulationReport.to_dict` exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import repro
from repro.core.stats import SimulationReport
from repro.errors import ReproError
from repro.experiments.runner import (
    WEIGHTED_ALGORITHMS,
    ExperimentMatrix,
)
from repro.graph.datasets import DATASETS

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

#: Attempts one ``put`` makes before propagating a persistent OSError.
_PUT_ATTEMPTS = 3

#: Version stamp mixed into every cache key.  The package version covers
#: intentional releases; the trailing revision must be bumped whenever a
#: timing-model change alters report contents between releases —
#: otherwise stale cells would be served silently.
CODE_MODEL_VERSION = f"{repro.__version__}+cache1"


def save_matrix(matrix: ExperimentMatrix, path: PathLike) -> None:
    """Write a matrix's reports to a JSON file."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "cells": [
            {
                "graph": graph,
                "algorithm": algorithm,
                "system": system,
                "report": report.to_dict(include_iterations=True),
            }
            for (graph, algorithm, system), report in matrix.reports.items()
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_matrix_summaries(
    path: PathLike,
) -> Dict[Tuple[str, str, str], dict]:
    """Load saved reports as plain dicts keyed like the matrix.

    Returns summary dicts (not SimulationReport objects — the gold
    properties are not persisted), suitable for plotting/regression
    comparison.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load experiment store {path}: {exc}") from exc
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ReproError(
            f"{path}: unsupported format version "
            f"{payload.get('format_version')!r}"
        )
    out: Dict[Tuple[str, str, str], dict] = {}
    for cell in payload["cells"]:
        key = (cell["graph"], cell["algorithm"], cell["system"])
        out[key] = cell["report"]
    return out


def dataset_fingerprint(
    graph_name: str, algorithm: str, scale_shift: int = 0
) -> str:
    """Deterministic fingerprint of one cell's input graph.

    The benchmark graphs are synthesised deterministically from a
    :class:`~repro.graph.datasets.DatasetSpec`, so the fingerprint
    hashes the full generation recipe — spec key, effective scale, edge
    factor, skew, and whether the algorithm loads weights — without
    materialising the graph.  Any change to the stand-in recipe (or a
    new weighted algorithm) changes the fingerprint and invalidates the
    cached cells that depend on it.
    """
    upper = graph_name.upper()
    spec = DATASETS.get(upper)
    if spec is None:
        for candidate in DATASETS.values():
            if candidate.full_name.upper() == upper:
                spec = candidate
                break
    if spec is None:
        raise ReproError(f"cannot fingerprint unknown dataset {graph_name!r}")
    material = {
        "key": spec.key,
        "scale": spec.scale + scale_shift,
        "edge_factor": spec.edge_factor,
        "skew": spec.skew,
        "weighted": algorithm.lower() in WEIGHTED_ALGORITHMS,
    }
    return hashlib.sha256(
        json.dumps(material, sort_keys=True).encode()
    ).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0  # unreadable or version-mismatched entries

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
        }


class ResultCache:
    """On-disk cache of per-cell :class:`SimulationReport` results.

    One JSON file per cell under ``root``, named by the SHA-256 of the
    cell's key material: the dataset fingerprint, the run configuration
    (system label, algorithm, iteration cap), and
    :data:`CODE_MODEL_VERSION`.  Anything that could change a cell's
    report changes its key, so invalidation is automatic — stale files
    are simply never looked up again (``prune`` removes them).

    Cached reports are rebuilt with :meth:`SimulationReport.from_dict`;
    their :meth:`~SimulationReport.to_dict` output is identical to the
    freshly computed report's, so warm and cold sweeps serialise the
    same (gold property arrays are summarised, not persisted).
    """

    def __init__(
        self,
        root: PathLike,
        model_version: str = CODE_MODEL_VERSION,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.model_version = model_version
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key(
        self,
        graph_name: str,
        algorithm: str,
        system: str,
        scale_shift: int = 0,
        max_iterations: Optional[int] = None,
    ) -> str:
        material = {
            "dataset": dataset_fingerprint(graph_name, algorithm, scale_shift),
            "graph": graph_name,
            "algorithm": algorithm,
            "system": system,
            "max_iterations": max_iterations,
            "model_version": self.model_version,
        }
        return hashlib.sha256(
            json.dumps(material, sort_keys=True).encode()
        ).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    # Get / put
    # ------------------------------------------------------------------
    def get(
        self,
        graph_name: str,
        algorithm: str,
        system: str,
        scale_shift: int = 0,
        max_iterations: Optional[int] = None,
    ) -> Optional[SimulationReport]:
        """The cached report for one cell, or None on a miss.

        Unreadable or version-mismatched entries count as misses (and
        as ``stats.invalid``) rather than raising — a corrupt cache
        must never break a sweep.  The offending file is deleted so the
        recomputed result can be re-cached cleanly (a truncated entry —
        e.g. from a worker killed mid-write outside the atomic-rename
        path — would otherwise shadow every future write-back attempt's
        read).
        """
        path = self._path(
            self.key(graph_name, algorithm, system, scale_shift, max_iterations)
        )
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            payload = json.loads(path.read_text())
            if payload.get("format_version") != _FORMAT_VERSION:
                raise ReproError("format version mismatch")
            report = SimulationReport.from_dict(payload["report"])
        except (OSError, KeyError, TypeError, ValueError, ReproError):
            self.stats.invalid += 1
            self.stats.misses += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass  # unreadable *and* undeletable: still just a miss
            return None
        self.stats.hits += 1
        return report

    def put(
        self,
        graph_name: str,
        algorithm: str,
        system: str,
        report: SimulationReport,
        scale_shift: int = 0,
        max_iterations: Optional[int] = None,
    ) -> None:
        """Persist one cell's report, safely under concurrent writers.

        Multiple processes may put the same key at once (daemon workers
        racing a batch CLI sweep), so the staging file must be unique
        per writer: a shared ``<key>.tmp`` would let two writers
        interleave partial content before one of them renames it into
        place.  Each call therefore stages through its own
        ``mkstemp``-created file, fsyncs it, and publishes with the
        atomic ``os.replace`` — readers only ever observe a complete
        payload (last writer wins).  A transient ``OSError`` on the
        rename (e.g. a concurrent ``clear()`` removing the directory
        entry) is retried a couple of times before propagating; the
        staging file is always cleaned up.
        """
        key = self.key(
            graph_name, algorithm, system, scale_shift, max_iterations
        )
        payload = {
            "format_version": _FORMAT_VERSION,
            "cell": {
                "graph": graph_name,
                "algorithm": algorithm,
                "system": system,
                "scale_shift": scale_shift,
                "max_iterations": max_iterations,
                "model_version": self.model_version,
            },
            "report": report.to_dict(include_iterations=True),
        }
        path = self._path(key)
        text = json.dumps(payload)
        last_error: Optional[OSError] = None
        for _ in range(_PUT_ATTEMPTS):
            try:
                fd, tmp_name = tempfile.mkstemp(
                    dir=self.root, prefix=".put-", suffix=".tmp"
                )
            except OSError as exc:
                # Cache directory vanished under us (concurrent clear):
                # recreate and retry.
                last_error = exc
                self.root.mkdir(parents=True, exist_ok=True)
                continue
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(text)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp_name, path)
            except OSError as exc:
                last_error = exc
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass  # best-effort staging cleanup
                continue
            self.stats.stores += 1
            return
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def prune(self) -> int:
        """Delete entries written under a different model version.

        Returns the number of files removed.
        """
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                payload = json.loads(path.read_text())
                version = payload["cell"]["model_version"]
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                version = None
            if version != self.model_version:
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed.

        Also sweeps stale ``.put-*.tmp`` staging files left behind by
        writers that crashed between ``mkstemp`` and ``os.replace``
        (they are harmless — never read — but accumulate).
        """
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.root.glob(".put-*.tmp"):
            path.unlink(missing_ok=True)
        return removed


def compare_to_saved(
    matrix: ExperimentMatrix,
    path: PathLike,
    metric: str = "gteps",
    tolerance: float = 0.05,
) -> Dict[Tuple[str, str, str], Tuple[float, float]]:
    """Regression check: cells whose metric drifted beyond tolerance.

    Returns ``{cell: (saved_value, current_value)}`` for every drifted
    cell (empty dict = no regressions).
    """
    saved = load_matrix_summaries(path)
    drifted = {}
    for key, report in matrix.reports.items():
        if key not in saved:
            continue
        old = float(saved[key][metric])
        new = float(getattr(report, metric))
        if old == 0:
            if new != 0:
                drifted[key] = (old, new)
            continue
        if abs(new - old) / abs(old) > tolerance:
            drifted[key] = (old, new)
    return drifted
