"""Persistence for experiment results.

Full sweeps take minutes; this module saves an
:class:`~repro.experiments.runner.ExperimentMatrix`'s reports as JSON so
analyses and regression comparisons can reload them without re-running
(gold property arrays are summarised, not embedded — rerun the reference
engine if you need them).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Tuple, Union

from repro.errors import ReproError
from repro.experiments.runner import ExperimentMatrix

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_matrix(matrix: ExperimentMatrix, path: PathLike) -> None:
    """Write a matrix's reports to a JSON file."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "cells": [
            {
                "graph": graph,
                "algorithm": algorithm,
                "system": system,
                "report": report.to_dict(include_iterations=True),
            }
            for (graph, algorithm, system), report in matrix.reports.items()
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_matrix_summaries(
    path: PathLike,
) -> Dict[Tuple[str, str, str], dict]:
    """Load saved reports as plain dicts keyed like the matrix.

    Returns summary dicts (not SimulationReport objects — the gold
    properties are not persisted), suitable for plotting/regression
    comparison.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load experiment store {path}: {exc}") from exc
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ReproError(
            f"{path}: unsupported format version "
            f"{payload.get('format_version')!r}"
        )
    out: Dict[Tuple[str, str, str], dict] = {}
    for cell in payload["cells"]:
        key = (cell["graph"], cell["algorithm"], cell["system"])
        out[key] = cell["report"]
    return out


def compare_to_saved(
    matrix: ExperimentMatrix,
    path: PathLike,
    metric: str = "gteps",
    tolerance: float = 0.05,
) -> Dict[Tuple[str, str, str], Tuple[float, float]]:
    """Regression check: cells whose metric drifted beyond tolerance.

    Returns ``{cell: (saved_value, current_value)}`` for every drifted
    cell (empty dict = no regressions).
    """
    saved = load_matrix_summaries(path)
    drifted = {}
    for key, report in matrix.reports.items():
        if key not in saved:
            continue
        old = float(saved[key][metric])
        new = float(getattr(report, metric))
        if old == 0:
            if new != 0:
                drifted[key] = (old, new)
            continue
        if abs(new - old) / abs(old) > tolerance:
            drifted[key] = (old, new)
    return drifted
