"""System registry and matrix runner for the paper's experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import make_algorithm
from repro.algorithms.base import VertexProgram
from repro.algorithms.reference import ReferenceResult, run_reference
from repro.baselines import GraphDynS, Gunrock
from repro.core import ScalaGraph, ScalaGraphConfig
from repro.core.stats import SimulationReport
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASET_ORDER, load_dataset

#: Orders used by the paper's figures.
GRAPH_ORDER: Tuple[str, ...] = DATASET_ORDER
ALGORITHM_ORDER: Tuple[str, ...] = ("bfs", "sssp", "cc", "pagerank")

#: The systems of Figure 14/15, by their figure labels.
SYSTEM_BUILDERS: Dict[str, Callable[[], object]] = {
    "Gunrock": Gunrock,
    "GraphDynS-128": GraphDynS.with_128_pes,
    "GraphDynS-512": GraphDynS.with_512_pes,
    "ScalaGraph-128": lambda: ScalaGraph(ScalaGraphConfig(pe_cols=4)),
    "ScalaGraph-512": lambda: ScalaGraph(ScalaGraphConfig()),
}

SYSTEM_ORDER: Tuple[str, ...] = tuple(SYSTEM_BUILDERS)


def build_system(label: str):
    """Instantiate a compared system by its figure label."""
    if label not in SYSTEM_BUILDERS:
        raise KeyError(
            f"unknown system {label!r}; known: {sorted(SYSTEM_BUILDERS)}"
        )
    return SYSTEM_BUILDERS[label]()


#: Algorithms that read edge weights (Section V-A weights SSSP's graphs;
#: the SSWP/SpMV extensions need them too).
WEIGHTED_ALGORITHMS = frozenset({"sssp", "sswp", "spmv"})


def load_benchmark_graph(
    name: str, algorithm: str, scale_shift: int = 0
) -> CSRGraph:
    """A dataset stand-in, weighted when the algorithm needs it."""
    return load_dataset(
        name,
        scale_shift=scale_shift,
        weighted=(algorithm.lower() in WEIGHTED_ALGORITHMS),
    )


@dataclass
class ExperimentMatrix:
    """Results of a (graph x algorithm x system) sweep.

    ``reports[(graph, algorithm, system)]`` holds the full
    :class:`SimulationReport`; helper methods slice it the way the
    paper's figures do.
    """

    reports: Dict[Tuple[str, str, str], SimulationReport] = field(
        default_factory=dict
    )

    def gteps(self, graph: str, algorithm: str, system: str) -> float:
        return self.reports[(graph, algorithm, system)].gteps

    def systems(self) -> List[str]:
        seen: List[str] = []
        for _, _, system in self.reports:
            if system not in seen:
                seen.append(system)
        return seen

    def cells(self) -> List[Tuple[str, str]]:
        seen: List[Tuple[str, str]] = []
        for graph, algorithm, _ in self.reports:
            if (graph, algorithm) not in seen:
                seen.append((graph, algorithm))
        return seen

    def speedup(self, numerator: str, denominator: str) -> float:
        """Geometric-mean GTEPS ratio over all (graph, algorithm) cells."""
        ratios = [
            self.gteps(g, a, numerator) / self.gteps(g, a, denominator)
            for g, a in self.cells()
        ]
        return geometric_mean(ratios)

    def speedup_by_algorithm(
        self, numerator: str, denominator: str
    ) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for algorithm in {a for _, a in self.cells()}:
            ratios = [
                self.gteps(g, a, numerator) / self.gteps(g, a, denominator)
                for g, a in self.cells()
                if a == algorithm
            ]
            out[algorithm] = geometric_mean(ratios)
        return out


def run_matrix(
    graphs: Sequence[str] = GRAPH_ORDER,
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    systems: Sequence[str] = SYSTEM_ORDER,
    scale_shift: int = 0,
    max_iterations: Optional[int] = None,
) -> ExperimentMatrix:
    """Run every system on every (graph, algorithm) cell.

    The functional reference execution is computed once per cell and
    shared by all systems, so the sweep's cost is dominated by the
    timing models.
    """
    matrix = ExperimentMatrix()
    for graph_name in graphs:
        for algorithm_name in algorithms:
            graph = load_benchmark_graph(
                graph_name, algorithm_name, scale_shift
            )
            program = make_algorithm(algorithm_name)
            reference = run_reference(program, graph, max_iterations)
            for system_label in systems:
                system = build_system(system_label)
                report = system.run(
                    program, graph, reference=reference
                )
                matrix.reports[
                    (graph_name, algorithm_name, system_label)
                ] = report
    return matrix


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the conventional average for speedup ratios)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def run_single(
    system_label: str,
    graph_name: str,
    algorithm_name: str,
    scale_shift: int = 0,
    program: Optional[VertexProgram] = None,
    reference: Optional[ReferenceResult] = None,
) -> SimulationReport:
    """Run one cell (convenience for examples and tests)."""
    graph = load_benchmark_graph(graph_name, algorithm_name, scale_shift)
    prog = program or make_algorithm(algorithm_name)
    system = build_system(system_label)
    return system.run(prog, graph, reference=reference)
