"""System registry and matrix runner for the paper's experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import make_algorithm
from repro.algorithms.base import VertexProgram
from repro.algorithms.reference import ReferenceResult, run_reference
from repro.baselines import GraphDynS, Gunrock
from repro.core import ScalaGraph, ScalaGraphConfig
from repro.core.stats import SimulationReport
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASET_ORDER, load_dataset

#: Orders used by the paper's figures.
GRAPH_ORDER: Tuple[str, ...] = DATASET_ORDER
ALGORITHM_ORDER: Tuple[str, ...] = ("bfs", "sssp", "cc", "pagerank")

#: The systems of Figure 14/15, by their figure labels.
SYSTEM_BUILDERS: Dict[str, Callable[[], object]] = {
    "Gunrock": Gunrock,
    "GraphDynS-128": GraphDynS.with_128_pes,
    "GraphDynS-512": GraphDynS.with_512_pes,
    "ScalaGraph-128": lambda: ScalaGraph(ScalaGraphConfig(pe_cols=4)),
    "ScalaGraph-512": lambda: ScalaGraph(ScalaGraphConfig()),
}

SYSTEM_ORDER: Tuple[str, ...] = tuple(SYSTEM_BUILDERS)


def build_system(label: str):
    """Instantiate a compared system by its figure label."""
    if label not in SYSTEM_BUILDERS:
        raise KeyError(
            f"unknown system {label!r}; known: {sorted(SYSTEM_BUILDERS)}"
        )
    return SYSTEM_BUILDERS[label]()


#: Algorithms that read edge weights (Section V-A weights SSSP's graphs;
#: the SSWP/SpMV extensions need them too).
WEIGHTED_ALGORITHMS = frozenset({"sssp", "sswp", "spmv"})


def load_benchmark_graph(
    name: str, algorithm: str, scale_shift: int = 0
) -> CSRGraph:
    """A dataset stand-in, weighted when the algorithm needs it."""
    return load_dataset(
        name,
        scale_shift=scale_shift,
        weighted=(algorithm.lower() in WEIGHTED_ALGORITHMS),
    )


@dataclass
class ExperimentMatrix:
    """Results of a (graph x algorithm x system) sweep.

    ``reports[(graph, algorithm, system)]`` holds the full
    :class:`SimulationReport`; helper methods slice it the way the
    paper's figures do.
    """

    reports: Dict[Tuple[str, str, str], SimulationReport] = field(
        default_factory=dict
    )

    def gteps(self, graph: str, algorithm: str, system: str) -> float:
        return self.reports[(graph, algorithm, system)].gteps

    def systems(self) -> List[str]:
        seen: List[str] = []
        for _, _, system in self.reports:
            if system not in seen:
                seen.append(system)
        return seen

    def cells(self) -> List[Tuple[str, str]]:
        seen: List[Tuple[str, str]] = []
        for graph, algorithm, _ in self.reports:
            if (graph, algorithm) not in seen:
                seen.append((graph, algorithm))
        return seen

    def speedup(self, numerator: str, denominator: str) -> float:
        """Geometric-mean GTEPS ratio over all (graph, algorithm) cells."""
        ratios = [
            self.gteps(g, a, numerator) / self.gteps(g, a, denominator)
            for g, a in self.cells()
        ]
        return geometric_mean(ratios)

    def sort_nominal(
        self,
        graphs: Sequence[str],
        algorithms: Sequence[str],
        systems: Sequence[str],
    ) -> None:
        """Reorder :attr:`reports` into nominal sweep order.

        Insertion order is observable (:meth:`systems` / :meth:`cells`
        preserve it), so runners that fill cells out of order — cache
        hits first, parallel completions as they land — normalise with
        this before returning.  Keys outside the nominal sweep keep
        their relative order at the end.
        """
        ordered: Dict[Tuple[str, str, str], SimulationReport] = {}
        for graph in graphs:
            for algorithm in algorithms:
                for system in systems:
                    key = (graph, algorithm, system)
                    if key in self.reports:
                        ordered[key] = self.reports[key]
        for key, report in self.reports.items():
            if key not in ordered:
                ordered[key] = report
        self.reports = ordered

    def speedup_by_algorithm(
        self, numerator: str, denominator: str
    ) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for algorithm in {a for _, a in self.cells()}:
            ratios = [
                self.gteps(g, a, numerator) / self.gteps(g, a, denominator)
                for g, a in self.cells()
                if a == algorithm
            ]
            out[algorithm] = geometric_mean(ratios)
        return out


def execute_cell(
    graph_name: str,
    algorithm_name: str,
    systems: Sequence[str],
    scale_shift: int = 0,
    max_iterations: Optional[int] = None,
) -> List[Tuple[str, SimulationReport]]:
    """Run the given systems on one (graph, algorithm) cell.

    The functional reference execution is computed once and shared by
    all systems, so a cell's cost is dominated by the timing models.
    This is the unit of work both the serial and the parallel runner
    fan out (the arguments are all picklable primitives, so it can
    cross a process boundary).
    """
    graph = load_benchmark_graph(graph_name, algorithm_name, scale_shift)
    program = make_algorithm(algorithm_name)
    reference = run_reference(program, graph, max_iterations)
    return [
        (
            system_label,
            build_system(system_label).run(
                program, graph, reference=reference
            ),
        )
        for system_label in systems
    ]


def run_matrix(
    graphs: Sequence[str] = GRAPH_ORDER,
    algorithms: Sequence[str] = ALGORITHM_ORDER,
    systems: Sequence[str] = SYSTEM_ORDER,
    scale_shift: int = 0,
    max_iterations: Optional[int] = None,
    cache=None,
    refresh: bool = False,
) -> ExperimentMatrix:
    """Run every system on every (graph, algorithm) cell, serially.

    Args:
        cache: optional :class:`~repro.experiments.store.ResultCache`;
            cells whose key is already cached are loaded instead of
            recomputed, and fresh results are written back.
        refresh: recompute every cell even when cached (the cache is
            then overwritten with the fresh results).

    See :func:`repro.experiments.parallel.run_matrix_parallel` for the
    multi-process variant; both produce identical matrices.
    """
    matrix = ExperimentMatrix()
    for graph_name in graphs:
        for algorithm_name in algorithms:
            missing = list(systems)
            if cache is not None and not refresh:
                missing = []
                for system_label in systems:
                    report = cache.get(
                        graph_name,
                        algorithm_name,
                        system_label,
                        scale_shift=scale_shift,
                        max_iterations=max_iterations,
                    )
                    if report is None:
                        missing.append(system_label)
                    else:
                        matrix.reports[
                            (graph_name, algorithm_name, system_label)
                        ] = report
            if not missing:
                continue
            for system_label, report in execute_cell(
                graph_name,
                algorithm_name,
                missing,
                scale_shift,
                max_iterations,
            ):
                matrix.reports[
                    (graph_name, algorithm_name, system_label)
                ] = report
                if cache is not None:
                    cache.put(
                        graph_name,
                        algorithm_name,
                        system_label,
                        report,
                        scale_shift=scale_shift,
                        max_iterations=max_iterations,
                    )
    if cache is not None:
        # Deterministic key order regardless of which cells were cached.
        matrix.sort_nominal(graphs, algorithms, systems)
    return matrix


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the conventional average for speedup ratios)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def run_single(
    system_label: str,
    graph_name: str,
    algorithm_name: str,
    scale_shift: int = 0,
    program: Optional[VertexProgram] = None,
    reference: Optional[ReferenceResult] = None,
) -> SimulationReport:
    """Run one cell (convenience for examples and tests)."""
    graph = load_benchmark_graph(graph_name, algorithm_name, scale_shift)
    prog = program or make_algorithm(algorithm_name)
    system = build_system(system_label)
    return system.run(prog, graph, reference=reference)
