"""Crash-safe sweep checkpointing.

A :class:`SweepCheckpoint` is an append-only JSONL journal of completed
(graph, algorithm, system) cells.  The parallel runner appends each
cell's report the moment it lands (fsync'd), so an interrupted sweep —
killed workers, OOM, ctrl-C, power loss — loses at most the cells that
were literally in flight; re-invoking the sweep with the same
checkpoint path resumes from the journal instead of recomputing.

The journal is self-describing: its first line is a header carrying a
digest of the sweep's identity (axes, scale shift, iteration cap, model
version).  A checkpoint written for a *different* sweep is ignored and
rewritten rather than trusted — resuming PageRank cells into a BFS
sweep would silently corrupt the matrix.  A torn final line (the writer
died mid-append) is tolerated: parsing stops at the first undecodable
line and everything before it is kept.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, TextIO, Tuple

from repro.core.stats import SimulationReport

_SCHEMA = "repro-sweep-checkpoint/1"

#: A (graph, algorithm, system) cell key.
CellKey = Tuple[str, str, str]


def _signature_digest(signature: Dict) -> str:
    return hashlib.sha256(
        json.dumps(signature, sort_keys=True, default=str).encode()
    ).hexdigest()


class SweepCheckpoint:
    """Append-only journal of a sweep's completed cells.

    Args:
        path: journal file location (created on first append; parent
            directories are created as needed).
        signature: JSON-serialisable description of the sweep's identity
            (axes, scale shift, iteration cap, model version).  Only its
            digest is stored; a stored digest that does not match means
            the journal belongs to a different sweep and is discarded.
    """

    def __init__(self, path: os.PathLike, signature: Dict) -> None:
        self.path = Path(path)
        self.digest = _signature_digest(signature)
        self._fh: Optional[TextIO] = None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> Dict[CellKey, SimulationReport]:
        """Completed cells journaled by a previous (interrupted) run.

        Returns an empty mapping when the file is absent, carries a
        mismatched signature, or is corrupt before any cell landed.
        Parsing stops at the first torn/undecodable line; for duplicate
        keys the last complete entry wins.
        """
        try:
            raw = self.path.read_text()
        except OSError:
            return {}
        lines = raw.splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except ValueError:
            return {}
        if (
            not isinstance(header, dict)
            or header.get("schema") != _SCHEMA
            or header.get("signature") != self.digest
        ):
            return {}
        cells: Dict[CellKey, SimulationReport] = {}
        for line in lines[1:]:
            try:
                entry = json.loads(line)
                key = tuple(entry["key"])
                if len(key) != 3:
                    raise ValueError("malformed cell key")
                report = SimulationReport.from_dict(entry["report"])
            except (KeyError, TypeError, ValueError):
                break  # torn tail: keep everything before it
            cells[key] = report  # type: ignore[index]
        return cells

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def start(self, reset: bool = False) -> None:
        """Open the journal for appending.

        An existing journal with a matching header is kept (its cells
        stay resumable); anything else — or ``reset=True`` — is
        rewritten with a fresh header.
        """
        keep = not reset and self._header_matches()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not keep:
            self._fh = self.path.open("w")
            self._fh.write(
                json.dumps({"schema": _SCHEMA, "signature": self.digest})
                + "\n"
            )
            self._flush()
        else:
            self._fh = self.path.open("a")

    def _header_matches(self) -> bool:
        try:
            with self.path.open() as fh:
                header = json.loads(fh.readline())
        except (OSError, ValueError):
            return False
        return (
            isinstance(header, dict)
            and header.get("schema") == _SCHEMA
            and header.get("signature") == self.digest
        )

    def append(self, key: CellKey, report: SimulationReport) -> None:
        """Journal one completed cell (flushed and fsync'd: after this
        returns the cell survives any crash)."""
        if self._fh is None:
            self.start()
        assert self._fh is not None
        self._fh.write(
            json.dumps(
                {
                    "key": list(key),
                    "report": report.to_dict(include_iterations=True),
                }
            )
            + "\n"
        )
        self._flush()

    def _flush(self) -> None:
        assert self._fh is not None
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepCheckpoint":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
