"""Experiment harness shared by ``benchmarks/`` and ``examples/``.

Provides the system registry (build any of the paper's compared systems
by its figure label), a matrix runner that shares one functional
reference execution across all systems, and plain-text table/series
formatters that print rows in the shape of the paper's tables and
figures.
"""

from repro.experiments.breakdown import (
    bar_chart,
    bottleneck_histogram,
    compare_reports,
    describe,
    phase_shares,
)
from repro.experiments.checkpoint import SweepCheckpoint
from repro.experiments.parallel import RetryPolicy, run_matrix_parallel
from repro.experiments.runner import (
    ALGORITHM_ORDER,
    GRAPH_ORDER,
    SYSTEM_BUILDERS,
    ExperimentMatrix,
    build_system,
    execute_cell,
    geometric_mean,
    load_benchmark_graph,
    run_matrix,
)
from repro.experiments.store import (
    CODE_MODEL_VERSION,
    CacheStats,
    ResultCache,
    compare_to_saved,
    dataset_fingerprint,
    load_matrix_summaries,
    save_matrix,
)
from repro.experiments.tables import format_series, format_table, normalize

__all__ = [
    "ALGORITHM_ORDER",
    "GRAPH_ORDER",
    "SYSTEM_BUILDERS",
    "CODE_MODEL_VERSION",
    "CacheStats",
    "ExperimentMatrix",
    "ResultCache",
    "build_system",
    "dataset_fingerprint",
    "execute_cell",
    "geometric_mean",
    "load_benchmark_graph",
    "run_matrix",
    "RetryPolicy",
    "SweepCheckpoint",
    "run_matrix_parallel",
    "format_series",
    "format_table",
    "normalize",
    "bar_chart",
    "bottleneck_histogram",
    "compare_reports",
    "describe",
    "phase_shares",
    "compare_to_saved",
    "load_matrix_summaries",
    "save_matrix",
]
