"""Report analysis: bottleneck breakdowns and ASCII charts.

Turns a :class:`~repro.core.stats.SimulationReport` into the diagnostics
an architect actually reads: which bound dominated each iteration, where
the cycles went, and quick terminal bar charts for sweeps.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Mapping, Sequence

from repro.core.stats import SimulationReport


def bottleneck_histogram(report: SimulationReport) -> Dict[str, int]:
    """How many iterations each Scatter bound dominated."""
    counts = Counter(it.scatter_bottleneck for it in report.iterations)
    return dict(counts)


def phase_shares(report: SimulationReport) -> Dict[str, float]:
    """Fraction of total cycles spent per phase (overlap credited to
    the pipeline)."""
    scatter = sum(it.scatter_cycles for it in report.iterations)
    apply = sum(it.apply_cycles for it in report.iterations)
    overlap = sum(it.overlap_cycles for it in report.iterations)
    total = max(report.total_cycles, 1e-12)
    return {
        "scatter": scatter / total,
        "apply": apply / total,
        "hidden_by_pipelining": overlap / total,
    }


def describe(report: SimulationReport) -> str:
    """A multi-line diagnostic block for one run."""
    lines = [report.summary()]
    histogram = bottleneck_histogram(report)
    if histogram:
        total = sum(histogram.values())
        parts = ", ".join(
            f"{name} {count}/{total}"
            for name, count in sorted(
                histogram.items(), key=lambda kv: -kv[1]
            )
        )
        lines.append(f"  scatter bottlenecks: {parts}")
    shares = phase_shares(report)
    lines.append(
        "  cycles: scatter {scatter:.0%}, apply {apply:.0%}, "
        "hidden by pipelining {hidden_by_pipelining:.0%}".format(**shares)
    )
    if report.total_noc_messages:
        lines.append(
            f"  NoC: {report.total_noc_messages:,} messages, "
            f"{report.total_noc_hops:,} hops, "
            f"{report.total_coalesced:,} coalesced "
            f"({report.total_coalesced / max(report.total_edges_traversed, 1):.0%} "
            "of updates)"
        )
    lines.append(
        f"  off-chip: {report.total_offchip_bytes / 1e6:.2f} MB "
        f"({report.total_offchip_bytes / max(report.total_edges_traversed, 1):.1f} "
        "B/edge)"
    )
    return "\n".join(lines)


def bar_chart(
    values: Mapping[object, float],
    width: int = 40,
    label_fmt: str = "{}",
    value_fmt: str = "{:.2f}",
) -> str:
    """A horizontal ASCII bar chart (terminal figure for sweeps)."""
    if not values:
        return "(empty)"
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    labels = [label_fmt.format(k) for k in values]
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values.values()):
        bar = "#" * max(int(round(width * value / peak)), 0)
        lines.append(
            f"{label.rjust(label_width)} | {bar} {value_fmt.format(value)}"
        )
    return "\n".join(lines)


def compare_reports(
    reports: Sequence[SimulationReport], metric: str = "gteps"
) -> str:
    """Bar-chart several runs against each other on one metric."""
    values = {}
    for report in reports:
        key = f"{report.accelerator} ({report.algorithm}/{report.graph_name})"
        values[key] = float(getattr(report, metric))
    return bar_chart(values)
