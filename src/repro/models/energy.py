"""Power and energy models (Figures 15 and 16).

Figure 16 reports ScalaGraph's power breakdown under the default Vivado
toggle rate: HBM 65.43%, SPD 16.30%, GU 9.99%, RU 5.25%, Dispatch 2.02%,
Prefetch 1.01%.  Section V-B adds that ScalaGraph-128's NoC consumes only
53.5% of the power of GraphDynS-128's crossbar.  Energy is power times
simulated execution time; the Figure 15 comparison normalises against the
Gunrock/V100 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.models.frequency import Interconnect

#: Figure 16 power breakdown of ScalaGraph-512 (fractions sum to 1).
POWER_BREAKDOWN: Dict[str, float] = {
    "hbm": 0.6543,
    "spd": 0.1630,
    "gu": 0.0999,
    "ru": 0.0525,
    "dispatch": 0.0202,
    "prefetch": 0.0101,
}

#: Board power of the reference ScalaGraph-512 configuration (watts,
#: including HBM), as xbutil would report under load.  U280 designs with
#: both HBM stacks saturated draw 50-70 W; 60 W anchors the model so
#: that the Figure 15 energy ratios land on the paper's factors.
SCALAGRAPH_512_WATTS = 60.0

#: NVIDIA V100 (Gunrock baseline) power under graph workloads, as
#: nvidia-smi reports it (Section V-B).  Irregular, memory-bound graph
#: kernels run the card well below its 300 W TDP.
V100_WATTS = 160.0

#: Section V-B: ScalaGraph-128's NoC uses 53.5% of the power of
#: GraphDynS-128's crossbar => the crossbar costs 1/0.535 of the mesh RU
#: budget at equal PE count.
CROSSBAR_TO_MESH_POWER_RATIO = 1.0 / 0.535

#: Reference PE count of the breakdown above.
_REFERENCE_PES = 512


@dataclass(frozen=True)
class ComponentPower:
    """Per-component power of one accelerator configuration (watts)."""

    components: Dict[str, float]

    @property
    def total_watts(self) -> float:
        return sum(self.components.values())

    @property
    def noc_watts(self) -> float:
        """Interconnect share (RU/crossbar + links)."""
        return self.components.get("ru", 0.0)

    def fraction(self, name: str) -> float:
        return self.components[name] / self.total_watts

    def breakdown(self) -> Dict[str, float]:
        total = self.total_watts
        return {k: v / total for k, v in self.components.items()}


def accelerator_power_watts(
    num_pes: int,
    interconnect: Interconnect | str = Interconnect.MESH,
    frequency_mhz: float = 250.0,
) -> ComponentPower:
    """Power of an accelerator configuration.

    The HBM share is roughly bandwidth-bound and held constant; on-chip
    components scale with the PE count; all dynamic components scale with
    the clock.  A crossbar interconnect multiplies the NoC share by
    ``1 / 0.535`` at 128 PEs and quadratically beyond (its switching
    capacitance grows with the port count squared while the mesh grows
    linearly).
    """
    kind = Interconnect.parse(interconnect)
    if num_pes <= 0:
        raise ConfigurationError("num_pes must be positive")
    if frequency_mhz <= 0:
        raise ConfigurationError("frequency must be positive")
    pe_scale = num_pes / _REFERENCE_PES
    clock_scale = frequency_mhz / 250.0

    components: Dict[str, float] = {}
    for name, fraction in POWER_BREAKDOWN.items():
        watts = SCALAGRAPH_512_WATTS * fraction
        if name == "hbm":
            components[name] = watts  # bandwidth-bound, PE-independent
            continue
        watts *= pe_scale * clock_scale
        if name == "ru":
            if kind in (
                Interconnect.CROSSBAR,
                Interconnect.MULTISTAGE_CROSSBAR,
                Interconnect.BENES,
            ):
                # Crossbar-family interconnects: the paper's 53.5%
                # datapoint anchors the ratio at 128 ports; the
                # O(N^2)/O(N) complexity gap widens it linearly beyond.
                watts *= CROSSBAR_TO_MESH_POWER_RATIO * max(num_pes / 128, 1.0)
            elif kind is Interconnect.TORUS:
                # Wrap-around wires add ~10% link capacitance.
                watts *= 1.10
        components[name] = watts
    return ComponentPower(components=components)


def gpu_power_watts() -> float:
    """Board power of the Gunrock/V100 baseline."""
    return V100_WATTS


def energy_joules(power_watts: float, seconds: float) -> float:
    """Energy of a run: the Figure 15 metric."""
    if power_watts < 0 or seconds < 0:
        raise ConfigurationError("power and time must be non-negative")
    return power_watts * seconds
