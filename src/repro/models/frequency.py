"""Maximal synthesis frequency vs PE count, per interconnect.

The paper measures (Vivado 2019.1, Alveo U280):

* **Table IV** — ScalaGraph's mesh: 304/293/292/285/274/258 MHz at
  32/64/128/256/512/1024 PEs; GraphDynS's crossbar: 270/227/112 MHz at
  32/64/128 and *route failure* at >= 256.
* **Figure 4a** — AccuGraph/GraphDynS drop from ~300 MHz to ~100 MHz
  beyond 64 PEs; the crossbar-free variants hold ~300 MHz.
* **Figure 8** — Benes (O(N log N)) and the multi-stage crossbar scale
  further than the crossbar but fail to compile at 512 PEs; only the
  mesh supports 1,024+ PEs with negligible loss.

This module interpolates those published points geometrically in
log2(PEs) and extrapolates with each topology's complexity law.  A
configuration beyond a topology's route-failure limit raises
:class:`~repro.errors.SynthesisError` (the Table IV '-' entries).
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Tuple

from repro.errors import ConfigurationError, SynthesisError


class Interconnect(enum.Enum):
    """On-chip interconnects compared in Figure 8."""

    CROSSBAR = "crossbar"  # O(N^2): Graphicionado/AccuGraph/GraphDynS
    MULTISTAGE_CROSSBAR = "multistage_crossbar"  # GraphPulse/Chronos
    BENES = "benes"  # O(N log N)
    MESH = "mesh"  # O(N): ScalaGraph
    TORUS = "torus"  # O(N) + wrap links (future-work NoC exploration)

    @classmethod
    def parse(cls, value: "Interconnect | str") -> "Interconnect":
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError as exc:
            known = sorted(i.value for i in cls)
            raise ConfigurationError(
                f"unknown interconnect {value!r}; known: {known}"
            ) from exc


#: Largest PE count that still synthesises (beyond it the router cannot
#: find a legal placement: Section II-B / Figure 8).
_ROUTE_FAILURE_LIMIT: Dict[Interconnect, int] = {
    Interconnect.CROSSBAR: 128,
    Interconnect.MULTISTAGE_CROSSBAR: 256,
    Interconnect.BENES: 256,
    Interconnect.MESH: 1 << 20,  # bounded by chip resources, not routing
    Interconnect.TORUS: 1 << 20,
}

#: Calibration points: PEs -> MHz.  Sources in the module docstring;
#: points not published directly are interpolated from the paper's
#: qualitative statements (e.g. Benes frequency halving from 16 to 64
#: PEs, per reference [38]).
_CALIBRATION: Dict[Interconnect, Dict[int, float]] = {
    Interconnect.MESH: {
        4: 305.0,
        32: 304.0,
        64: 293.0,
        128: 292.0,
        256: 285.0,
        512: 274.0,
        1024: 258.0,
    },
    Interconnect.CROSSBAR: {
        4: 300.0,
        8: 300.0,
        16: 292.0,
        32: 270.0,
        64: 227.0,
        128: 112.0,
    },
    Interconnect.BENES: {
        4: 300.0,
        16: 285.0,
        32: 252.0,
        64: 190.0,
        128: 135.0,
        256: 92.0,
    },
    Interconnect.MULTISTAGE_CROSSBAR: {
        4: 300.0,
        16: 295.0,
        32: 280.0,
        64: 240.0,
        128: 165.0,
        256: 98.0,
    },
    # Torus: mesh minus ~8% for the chip-spanning wrap-around wires
    # (long FPGA routes cost a pipeline stage or clock margin).
    Interconnect.TORUS: {
        4: 281.0,
        32: 280.0,
        64: 270.0,
        128: 269.0,
        256: 262.0,
        512: 252.0,
        1024: 237.0,
    },
}

#: Per-doubling frequency decay used beyond the last calibration point.
_EXTRAPOLATION_DECAY: Dict[Interconnect, float] = {
    Interconnect.MESH: 0.95,  # ~5%/doubling: 2048 -> ~245 MHz
    Interconnect.CROSSBAR: 0.5,
    Interconnect.BENES: 0.65,
    Interconnect.MULTISTAGE_CROSSBAR: 0.6,
    Interconnect.TORUS: 0.95,
}


def route_failure_limit(interconnect: Interconnect | str) -> int:
    """Largest PE count the topology can place-and-route."""
    return _ROUTE_FAILURE_LIMIT[Interconnect.parse(interconnect)]


def synthesizes(interconnect: Interconnect | str, num_pes: int) -> bool:
    """Whether a configuration synthesises at all."""
    if num_pes <= 0:
        return False
    return num_pes <= route_failure_limit(interconnect)


def max_frequency_mhz(interconnect: Interconnect | str, num_pes: int) -> float:
    """Maximal clock (MHz) of ``num_pes`` PEs behind the interconnect.

    Raises:
        SynthesisError: when the configuration fails to route.
        ConfigurationError: on a non-positive PE count.
    """
    kind = Interconnect.parse(interconnect)
    if num_pes <= 0:
        raise ConfigurationError("num_pes must be positive")
    if num_pes > _ROUTE_FAILURE_LIMIT[kind]:
        raise SynthesisError(
            f"{kind.value} with {num_pes} PEs fails to route "
            f"(limit {_ROUTE_FAILURE_LIMIT[kind]})"
        )
    table = _CALIBRATION[kind]
    points = sorted(table.items())
    smallest_n, smallest_f = points[0]
    if num_pes <= smallest_n:
        return smallest_f
    largest_n, largest_f = points[-1]
    if num_pes >= largest_n:
        doublings = math.log2(num_pes / largest_n)
        return largest_f * _EXTRAPOLATION_DECAY[kind] ** doublings
    return _log_interpolate(points, num_pes)


def _log_interpolate(
    points: list[Tuple[int, float]], num_pes: int
) -> float:
    """Geometric interpolation in log2(PE count)."""
    for (n0, f0), (n1, f1) in zip(points, points[1:]):
        if n0 <= num_pes <= n1:
            if n0 == n1:
                return f0
            t = (math.log2(num_pes) - math.log2(n0)) / (
                math.log2(n1) - math.log2(n0)
            )
            return f0 * (f1 / f0) ** t
    raise ConfigurationError("interpolation out of range")  # pragma: no cover
