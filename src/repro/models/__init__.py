"""Hardware models: synthesis frequency, power/energy, FPGA resources.

The authors' numbers come from Vivado synthesis and on-board power
queries; here they are replaced by analytic models calibrated on every
datapoint the paper publishes (Table IV, Figures 4a, 8, 15, 16), with
complexity-law extrapolation between and beyond those points.
"""

from repro.models.frequency import (
    Interconnect,
    max_frequency_mhz,
    route_failure_limit,
    synthesizes,
)
from repro.models.energy import (
    ComponentPower,
    POWER_BREAKDOWN,
    accelerator_power_watts,
    energy_joules,
    gpu_power_watts,
)
from repro.models.area import ResourceUtilization, resource_utilization

__all__ = [
    "Interconnect",
    "max_frequency_mhz",
    "route_failure_limit",
    "synthesizes",
    "ComponentPower",
    "POWER_BREAKDOWN",
    "accelerator_power_watts",
    "energy_joules",
    "gpu_power_watts",
    "ResourceUtilization",
    "resource_utilization",
]
