"""FPGA resource-utilisation model (Figure 16, left table).

The paper reports Alveo U280 (XCU280: 1.3M LUTs, 2.6M registers, 9 MB
BRAM) utilisation:

==================  =====  =====  =====
Accelerator          LUT    REG    BRAM
==================  =====  =====  =====
GraphDynS-128       22.8%  11.6%  74.7%
ScalaGraph-128      10.9%   6.4%  70.8%
GraphDynS-512       85.1%  43.8%  76.1%
ScalaGraph-512      39.2%  22.9%  73.2%
==================  =====  =====  =====

The model decomposes each percentage into a fixed framework cost, a
per-PE cost, and an interconnect cost — O(N) links for the mesh, O(R^2)
per crossbar of radix R (GraphDynS-512 instantiates four 128-radix
crossbars) — with coefficients fitted to the four published rows.
Section V-E's LUT-exhaustion bound (>1,024 mesh PEs exceeds the chip)
emerges from the same coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.frequency import Interconnect

#: U280 chip totals (paper, Section V-A).
U280_LUTS = 1_300_000
U280_REGISTERS = 2_600_000
U280_BRAM_BYTES = 9 * (1 << 20)

# Fitted coefficients (percent of chip).  Derivation: solve the
# ScalaGraph rows for {base, per-PE} with a linear mesh cost, then the
# GraphDynS rows for the crossbar's quadratic coefficient given the same
# per-PE cost.
_LUT_BASE = 1.47
_LUT_PER_PE = 0.0737
_LUT_PER_CROSSBAR_PORT2 = 7.27e-4  # percent per (radix^2)

_REG_BASE = 0.90
_REG_PER_PE = 0.0430
_REG_PER_CROSSBAR_PORT2 = 3.18e-4

_BRAM_BASE_MESH = 70.0  # scratchpad (6/9 MB) + framework buffers
_BRAM_PER_PE_MESH = 0.00625
_BRAM_BASE_XBAR = 74.2  # VOQ storage raises the fixed cost
_BRAM_PER_PE_XBAR = 0.00365


@dataclass(frozen=True)
class ResourceUtilization:
    """Utilisation of one configuration, in percent of the U280."""

    lut_pct: float
    reg_pct: float
    bram_pct: float

    @property
    def fits(self) -> bool:
        """Whether the design fits the chip at all."""
        return max(self.lut_pct, self.reg_pct, self.bram_pct) <= 100.0

    def as_row(self) -> tuple[float, float, float]:
        return (self.lut_pct, self.reg_pct, self.bram_pct)


def resource_utilization(
    num_pes: int,
    interconnect: Interconnect | str = Interconnect.MESH,
    crossbar_radix: int = 128,
) -> ResourceUtilization:
    """Model the U280 resource utilisation of a configuration.

    Args:
        num_pes: total PEs.
        interconnect: mesh (ScalaGraph) or crossbar-family (GraphDynS).
        crossbar_radix: ports per crossbar instance; designs larger than
            one radix instantiate ``num_pes / radix`` crossbars connected
            by a tile-level mesh (the GraphDynS-512 construction,
            Section V-A).
    """
    kind = Interconnect.parse(interconnect)
    if num_pes <= 0:
        raise ConfigurationError("num_pes must be positive")

    if kind is Interconnect.MESH:
        lut = _LUT_BASE + _LUT_PER_PE * num_pes
        reg = _REG_BASE + _REG_PER_PE * num_pes
        bram = _BRAM_BASE_MESH + _BRAM_PER_PE_MESH * num_pes
        return ResourceUtilization(lut, reg, bram)

    if crossbar_radix <= 0:
        raise ConfigurationError("crossbar_radix must be positive")
    radix = min(crossbar_radix, num_pes)
    instances = -(-num_pes // radix)  # ceil
    xbar_lut = _LUT_PER_CROSSBAR_PORT2 * radix * radix * instances
    xbar_reg = _REG_PER_CROSSBAR_PORT2 * radix * radix * instances
    lut = _LUT_BASE + _LUT_PER_PE * num_pes + xbar_lut
    reg = _REG_BASE + _REG_PER_PE * num_pes + xbar_reg
    bram = _BRAM_BASE_XBAR + _BRAM_PER_PE_XBAR * num_pes
    return ResourceUtilization(lut, reg, bram)


def max_mesh_pes_that_fit() -> int:
    """Largest power-of-two mesh PE count fitting the U280's LUTs.

    Section V-E: 'When the number of PEs exceeds 1,024, the LUT resources
    on FPGA will be exhausted.'
    """
    n = 1
    while resource_utilization(n * 2, Interconnect.MESH).fits:
        n *= 2
    return n
