"""Validation utilities: check results and cross-check simulators.

Downstream users integrating new algorithms or hardware configurations
can call these to confirm (a) a report's functional results match an
independent reference execution, and (b) the analytic timing model stays
within its validated envelope of the cycle-accurate simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.algorithms.base import VertexProgram
from repro.algorithms.reference import run_reference
from repro.core.stats import SimulationReport
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of a validation check."""

    ok: bool
    detail: str

    def raise_on_failure(self) -> None:
        if not self.ok:
            raise SimulationError(f"validation failed: {self.detail}")


def validate_report(
    report: SimulationReport,
    program: VertexProgram,
    graph: CSRGraph,
    rtol: float = 1e-9,
    max_iterations: Optional[int] = None,
) -> ValidationResult:
    """Re-run the reference engine and compare against the report.

    Checks the functional properties (exactly for integer-lattice
    programs, within ``rtol`` for floating-point ones) and the basic
    accounting invariants.
    """
    if report.properties is None:
        return ValidationResult(False, "report carries no properties")
    reference = run_reference(program, graph, max_iterations)
    if reference.properties.shape != report.properties.shape:
        return ValidationResult(False, "property shapes differ")
    if not np.allclose(
        report.properties,
        reference.properties,
        rtol=rtol,
        atol=0.0,
        equal_nan=True,
    ):
        bad = int(
            np.count_nonzero(
                ~np.isclose(
                    report.properties,
                    reference.properties,
                    rtol=rtol,
                    equal_nan=True,
                )
            )
        )
        return ValidationResult(
            False, f"{bad} vertex properties differ from the reference"
        )
    if report.total_edges_traversed != reference.total_edges_traversed:
        return ValidationResult(
            False,
            "edge-traversal count differs "
            f"({report.total_edges_traversed} vs "
            f"{reference.total_edges_traversed})",
        )
    if report.total_cycles < 0:
        return ValidationResult(False, "negative cycle count")
    if not 0 <= report.pe_utilization <= 1:
        return ValidationResult(False, "PE utilisation out of [0, 1]")
    return ValidationResult(True, "report matches the reference execution")


def validate_timing_envelope(
    program: VertexProgram,
    graph: CSRGraph,
    config=None,
    max_ratio: float = 2.5,
    max_iterations: Optional[int] = None,
) -> ValidationResult:
    """Cross-check the analytic timing model against the cycle-accurate
    simulator on a small configuration.

    Use graphs of at most a few thousand edges — the cycle-accurate
    simulator is pure Python.
    """
    from repro.core import CycleAccurateScalaGraph, ScalaGraph, ScalaGraphConfig

    config = config or ScalaGraphConfig(num_tiles=1, pe_rows=4, pe_cols=4)
    cycle = CycleAccurateScalaGraph(config).run(
        program, graph, max_iterations=max_iterations
    )
    analytic = ScalaGraph(config).run(
        program, graph, max_iterations=max_iterations
    )
    overhead = config.timing.phase_overhead_cycles
    measured = sum(cycle.stats.scatter_cycles)
    modelled = sum(
        max(it.scatter_cycles - overhead, 1.0) for it in analytic.iterations
    )
    if modelled <= 0:
        return ValidationResult(False, "analytic model produced zero cycles")
    ratio = measured / modelled
    if not (1.0 / max_ratio) < ratio < max_ratio:
        return ValidationResult(
            False,
            f"cycle-accurate/analytic ratio {ratio:.2f} outside "
            f"[{1 / max_ratio:.2f}, {max_ratio:.2f}]",
        )
    return ValidationResult(
        True, f"timing models agree (ratio {ratio:.2f})"
    )
