"""Topology abstractions and distance math for on-chip networks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.errors import ConfigurationError

Coordinate = Tuple[int, int]


def manhattan_distance(a: Coordinate, b: Coordinate) -> int:
    """Hop count between two mesh coordinates under XY routing."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


@dataclass(frozen=True)
class MeshTopology:
    """A ``rows x cols`` 2D mesh of PEs.

    Node IDs are row-major: node ``(r, c)`` has ID ``r * cols + c``.
    ScalaGraph uses a 16x16 matrix per tile (Section III-A).
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigurationError("mesh dimensions must be positive")

    @property
    def num_nodes(self) -> int:
        return self.rows * self.cols

    def coord(self, node: int) -> Coordinate:
        self._check(node)
        return divmod(node, self.cols)

    def node(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ConfigurationError(
                f"coordinate ({row}, {col}) outside {self.rows}x{self.cols} mesh"
            )
        return row * self.cols + col

    def neighbors(self, node: int) -> Iterator[int]:
        """Adjacent nodes (N/S/W/E order, existing ones only)."""
        r, c = self.coord(node)
        if r > 0:
            yield self.node(r - 1, c)
        if r < self.rows - 1:
            yield self.node(r + 1, c)
        if c > 0:
            yield self.node(r, c - 1)
        if c < self.cols - 1:
            yield self.node(r, c + 1)

    def hop_distance(self, a: int, b: int) -> int:
        return manhattan_distance(self.coord(a), self.coord(b))

    def rows_of(self, nodes: np.ndarray) -> np.ndarray:
        return np.asarray(nodes) // self.cols

    def cols_of(self, nodes: np.ndarray) -> np.ndarray:
        return np.asarray(nodes) % self.cols

    def average_distance(self) -> float:
        """Mean XY hop distance over all ordered node pairs.

        For an ``n x m`` mesh the expected |row delta| is
        ``(n^2 - 1) / (3n)`` and analogously for columns; their sum is the
        O(sqrt(K)) term of the paper's Table II communication analysis.
        """
        n, m = self.rows, self.cols
        return (n * n - 1) / (3 * n) + (m * m - 1) / (3 * m)

    def average_column_distance(self) -> float:
        """Mean |row delta| — the only routed dimension under the paper's
        row-oriented mapping (Section IV-A)."""
        n = self.rows
        return (n * n - 1) / (3 * n)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(
                f"node {node} outside mesh with {self.num_nodes} nodes"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MeshTopology({self.rows}x{self.cols})"
