"""2D-torus NoC: the paper's "other NoCs" future work, implemented.

Section III-A: *"the design of ScalaGraph is fully compatible with that
of other NoCs via minor modifications. As for the problem of determining
or even designing the most appropriate NoC, we leave it as an
interesting future work."*

A torus adds wrap-around links to the mesh, halving worst-case and
average hop distances at the cost of longer physical wires (which on an
FPGA costs some frequency).  This module provides the topology math and
exact link-load accounting for column-only (row-oriented mapping)
traffic under shortest-direction routing, so the ablation bench can ask
whether ScalaGraph's NoC choice is the right one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.noc.topology import MeshTopology
from repro.noc.traffic import LinkLoadReport


@dataclass(frozen=True)
class TorusTopology(MeshTopology):
    """A ``rows x cols`` 2D torus (mesh + wrap-around links).

    Inherits the mesh's row-major node numbering; distances and
    neighbourhoods account for the wrap links.
    """

    def hop_distance(self, a: int, b: int) -> int:
        ar, ac = self.coord(a)
        br, bc = self.coord(b)
        dr = abs(ar - br)
        dc = abs(ac - bc)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)

    def neighbors(self, node: int):
        r, c = self.coord(node)
        seen = set()
        for rr, cc in (
            ((r - 1) % self.rows, c),
            ((r + 1) % self.rows, c),
            (r, (c - 1) % self.cols),
            (r, (c + 1) % self.cols),
        ):
            nb = self.node(rr, cc)
            if nb != node and nb not in seen:
                seen.add(nb)
                yield nb

    def average_distance(self) -> float:
        """Mean shortest-path distance over ordered node pairs."""
        return _ring_average(self.rows) + _ring_average(self.cols)

    def average_column_distance(self) -> float:
        """Mean |row delta| on the row rings — the only routed dimension
        under the row-oriented mapping."""
        return _ring_average(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TorusTopology({self.rows}x{self.cols})"


def _ring_average(n: int) -> float:
    """Mean shortest distance between two uniform points on an n-ring."""
    if n <= 1:
        return 0.0
    distances = np.minimum(np.arange(n), n - np.arange(n))
    return float(distances.mean())


def ring_direction(src: np.ndarray, dst: np.ndarray, n: int) -> np.ndarray:
    """+1 (downward/rightward), -1, or 0 for shortest-ring routing.

    Ties (exactly half-ring) break toward +1, deterministically.
    """
    delta = (np.asarray(dst) - np.asarray(src)) % n
    direction = np.where(delta == 0, 0, np.where(delta <= n / 2, 1, -1))
    return direction


def torus_column_link_loads(
    rows: int,
    column: np.ndarray,
    src_row: np.ndarray,
    dst_row: np.ndarray,
    num_cols: int,
) -> LinkLoadReport:
    """Directed link loads of column-only traffic on a torus.

    Vertical rings have ``rows`` links per direction (link ``k`` joins
    rows ``k`` and ``(k+1) % rows``); each packet takes the shorter way
    around.  Returned ``south``/``north`` arrays are ``(rows, cols)``
    (one extra row vs the mesh report: the wrap link).
    """
    if rows <= 0 or num_cols <= 0:
        raise ConfigurationError("torus dimensions must be positive")
    column = np.asarray(column, dtype=np.int64)
    src_row = np.asarray(src_row, dtype=np.int64)
    dst_row = np.asarray(dst_row, dtype=np.int64)

    south = np.zeros((rows, num_cols), dtype=np.int64)
    north = np.zeros((rows, num_cols), dtype=np.int64)
    direction = ring_direction(src_row, dst_row, rows)

    # Downward (south) passengers cross links src, src+1, ..., dst-1
    # (mod rows); upward cross src-1, ..., dst (mod rows) in the north
    # arrays.  Use difference arrays on a doubled ring.
    for sign, loads in ((1, south), (-1, north)):
        mask = direction == sign
        if not np.any(mask):
            continue
        col = column[mask]
        if sign == 1:
            start = src_row[mask]
            length = (dst_row[mask] - src_row[mask]) % rows
        else:
            start = (src_row[mask] - 1) % rows
            length = (src_row[mask] - dst_row[mask]) % rows
        # Walk `length` links from `start` in ring order (descending for
        # north).  Difference trick on an unrolled 2*rows ring.
        diff = np.zeros((2 * rows + 1, num_cols), dtype=np.int64)
        if sign == 1:
            np.add.at(diff, (start, col), 1)
            np.add.at(diff, (start + length, col), -1)
        else:
            # North traverses links start, start-1, ...; mirror the ring.
            m_start = (rows - 1) - start
            np.add.at(diff, (m_start, col), 1)
            np.add.at(diff, (m_start + length, col), -1)
        acc = np.cumsum(diff[:-1], axis=0)
        wrapped = acc[:rows] + acc[rows : 2 * rows]
        if sign == 1:
            loads += wrapped
        else:
            loads += wrapped[::-1]

    total = int(south.sum() + north.sum())
    return LinkLoadReport(
        east=np.zeros((rows, max(num_cols - 1, 0)), dtype=np.int64),
        west=np.zeros((rows, max(num_cols - 1, 0)), dtype=np.int64),
        south=south,
        north=north,
        total_flit_hops=total,
        num_packets=int(column.size),
    )
