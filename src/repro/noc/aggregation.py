"""Update aggregation: the Figure 11 register-array pipeline.

Row-oriented mapping leaves routing conflicts within columns; ScalaGraph
reduces them by *pre-executing the Reduce function* on in-flight updates
(Section IV-B).  Each PE's routing unit carries a four-stage pipeline,
each stage holding four registers sharing one reduce unit.  An incoming
update is hashed to a register column and flows down the stages until it
finds a matching vertex ID (coalesce) or an empty register (store); reads
pop the first stage and shift the column up systolically.

Two models live here:

* :class:`AggregationPipeline` — a faithful cycle-level register array
  used by unit tests and the detailed simulations.
* :func:`window_coalesce_count` / :func:`window_coalesce` — the
  statistical window model used by the at-scale timing simulations: with
  ``R`` registers of residency an update coalesces iff the previous
  update to the same vertex lies within the last ``R`` slots of the
  stream.  This reproduces the Figure 18(a) register-count sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # hook is duck-typed; no runtime import needed
    from repro.analysis.sanitizer import SimSanitizer

ReduceFn = Callable[[float, float], float]


def aggregation_geometry(registers: int) -> Tuple[int, int]:
    """``(num_stages, num_columns)`` of the register array holding
    exactly ``registers`` registers.

    The paper's 16-register default forms the 4x4 Figure 11 array; the
    general rule keeps ~4 registers per stage (``stages = registers //
    4``) and then walks down to the largest stage count that divides the
    register budget, so the array's capacity always equals the
    configured count — no silent quantisation (``registers=9`` is a 1x9
    array, not a 2x4 one that drops a register).
    """
    if registers <= 0:
        raise ConfigurationError("registers must be positive")
    stages = max(registers // 4, 1)
    while registers % stages:
        stages -= 1
    return stages, registers // stages


@dataclass
class _Register:
    vertex: int
    value: float


@dataclass
class AggregationStats:
    """Counters kept by the cycle-level pipeline."""

    offered: int = 0
    coalesced: int = 0
    stored: int = 0
    rejected: int = 0
    emitted: int = 0

    @property
    def coalesce_rate(self) -> float:
        return self.coalesced / self.offered if self.offered else 0.0


class AggregationPipeline:
    """The Figure 11 register array: ``num_stages x num_columns``.

    The paper's default is 4 stages x 4 registers = 16 registers
    (Section V-C: "Consider hardware complexity, we use 16 registers by
    default").
    """

    def __init__(
        self,
        num_stages: int = 4,
        num_columns: int = 4,
        reduce_fn: ReduceFn = lambda a, b: a + b,
        column_hash: Optional[Callable[[int], int]] = None,
        sanitizer: Optional["SimSanitizer"] = None,
    ) -> None:
        if num_stages <= 0 or num_columns <= 0:
            raise ConfigurationError("pipeline dimensions must be positive")
        self.num_stages = num_stages
        self.num_columns = num_columns
        self.reduce_fn = reduce_fn
        #: Optional runtime ledger audit (repro.analysis.sanitizer).
        self.sanitizer = sanitizer
        self._column_hash = column_hash or (lambda vid: vid % num_columns)
        # _array[stage][column] is Optional[_Register]; stage 0 is the
        # output stage.
        self._array: List[List[Optional[_Register]]] = [
            [None] * num_columns for _ in range(num_stages)
        ]
        self._rr_column = 0
        self.stats = AggregationStats()

    @property
    def capacity(self) -> int:
        return self.num_stages * self.num_columns

    def occupancy(self) -> int:
        return sum(
            1
            for stage in self._array
            for reg in stage
            if reg is not None
        )

    def column_of(self, vertex: int) -> int:
        col = self._column_hash(vertex)
        if not 0 <= col < self.num_columns:
            raise ConfigurationError("column_hash out of range")
        return col

    # ------------------------------------------------------------------
    # Write path (Figure 11: pipelined compare-and-reduce down a column)
    # ------------------------------------------------------------------
    def offer(self, vertex: int, value: float) -> str:
        """Insert one update; returns ``'coalesced'``, ``'stored'`` or
        ``'rejected'`` (column full with no matching vertex — the caller
        must forward the update unaggregated, as a FIFO would)."""
        self.stats.offered += 1
        col = self.column_of(vertex)
        for stage in range(self.num_stages):
            reg = self._array[stage][col]
            if reg is None:
                self._array[stage][col] = _Register(vertex, value)
                self.stats.stored += 1
                self._audit()
                return "stored"
            if reg.vertex == vertex:
                reg.value = self.reduce_fn(reg.value, value)
                self.stats.coalesced += 1
                self._audit()
                return "coalesced"
        self.stats.rejected += 1
        self._audit()
        return "rejected"

    def _audit(self) -> None:
        if self.sanitizer is not None:
            self.sanitizer.check_aggregation_ledger(self)

    # ------------------------------------------------------------------
    # Read path (systolic shift toward stage 0)
    # ------------------------------------------------------------------
    def emit(self, column: Optional[int] = None) -> Optional[Tuple[int, float]]:
        """Pop the stage-0 register of a column (round-robin when None),
        shifting the column's deeper registers one stage forward.  Returns
        ``(vertex, value)`` or None when the chosen column is empty."""
        if column is None:
            column = self._next_nonempty_column()
            if column is None:
                return None
        out = self._array[0][column]
        if out is None:
            # Column may hold data only in deeper stages; compact first.
            self._shift_up(column)
            out = self._array[0][column]
            if out is None:
                return None
        self._array[0][column] = None
        self._shift_up(column)
        self.stats.emitted += 1
        self._audit()
        return out.vertex, out.value

    def drain(self) -> List[Tuple[int, float]]:
        """Emit everything (used at end of a Scatter phase).

        Under the prefix-dense column invariant (stores fill the first
        empty stage top-down, pops shift deeper stages up) a non-empty
        pipeline always has an emittable stage-0 register, so a ``None``
        emit while occupancy remains means registers were corrupted —
        raise instead of silently dropping the residue.
        """
        emitted = []
        while self.occupancy():
            item = self.emit()
            if item is None:
                raise SimulationError(
                    f"aggregation drain stuck with {self.occupancy()} "
                    "registers occupied but nothing emittable; the "
                    "prefix-dense column invariant was violated"
                )
            emitted.append(item)
        return emitted

    def _shift_up(self, column: int) -> None:
        for stage in range(self.num_stages - 1):
            if self._array[stage][column] is None:
                self._array[stage][column] = self._array[stage + 1][column]
                self._array[stage + 1][column] = None

    def _next_nonempty_column(self) -> Optional[int]:
        for step in range(self.num_columns):
            col = (self._rr_column + step) % self.num_columns
            if any(
                self._array[stage][col] is not None
                for stage in range(self.num_stages)
            ):
                self._rr_column = (col + 1) % self.num_columns
                return col
        return None


def run_ranks(sorted_keys: np.ndarray) -> np.ndarray:
    """Rank of each element within its run of equal consecutive keys.

    ``sorted_keys`` must already be sorted (or at least grouped); the
    result for ``[3, 3, 7, 7, 7]`` is ``[0, 1, 0, 1, 2]``.  This is the
    primitive behind conflict-free scatter rounds: elements of rank
    ``r`` hit each key at most once.
    """
    n = sorted_keys.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    boundary = np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
    starts = np.flatnonzero(boundary)
    group = np.cumsum(boundary) - 1
    return np.arange(n, dtype=np.int64) - starts[group]


class BatchedAggregationArray:
    """Every PE's Figure 11 register array in one struct-of-arrays state.

    Semantically this is ``num_pes`` independent
    :class:`AggregationPipeline` instances (same geometry, same default
    ``vid % num_columns`` column hash, same round-robin read pointer),
    but offers and emits are batched whole-cycle array operations for
    the vectorised scatter engine (:mod:`repro.core.fastsim`).  A batch
    is processed in *rounds*: offers are ranked within their
    ``(pe, column)`` group, and rank ``r`` touches each column at most
    once, so a round is one conflict-free fancy-indexed pass; rounds run
    in rank order, which preserves the reference's per-column offer
    order exactly (offers to different columns never interact).

    Registers are ``(num_pes, num_columns, num_stages)`` arrays with
    ``vid == -1`` marking an empty register; columns are prefix-dense
    (occupied stages first), mirroring the reference invariant.  The
    column-major layout keeps each ``(pe, column)`` register column
    contiguous, so the hot offer/emit paths are flat row gathers on the
     2-D views ``_vid2``/``_val2`` (``pe * num_columns + col`` rows)
    instead of strided two-array advanced indexing.
    """

    def __init__(
        self,
        num_pes: int,
        num_stages: int,
        num_columns: int,
        reduce_ufunc: np.ufunc = np.add,
        sanitizer: Optional["SimSanitizer"] = None,
    ) -> None:
        if num_pes <= 0 or num_stages <= 0 or num_columns <= 0:
            raise ConfigurationError("array dimensions must be positive")
        self.num_pes = num_pes
        self.num_stages = num_stages
        self.num_columns = num_columns
        self.reduce_ufunc = reduce_ufunc
        self.sanitizer = sanitizer
        self.vid = np.full(
            (num_pes, num_columns, num_stages), -1, dtype=np.int64
        )
        self.val = np.zeros((num_pes, num_columns, num_stages))
        # Flat (pe * num_columns + col, stage) views of the registers —
        # the row index is exactly the offer key, so the hot paths are
        # contiguous row takes/puts.
        self._vid2 = self.vid.reshape(num_pes * num_columns, num_stages)
        self._val2 = self.val.reshape(num_pes * num_columns, num_stages)
        self._vid_flat = self.vid.reshape(-1)
        self._val_flat = self.val.reshape(-1)
        self._arange_cols = np.arange(num_columns, dtype=np.int64)
        #: Live registers per PE (kept incrementally; audited on demand).
        self.occ = np.zeros(num_pes, dtype=np.int64)
        # Scalar mirror of occ.sum(), maintained at the two occ writes
        # so the per-cycle drain check costs no reduction.
        self._total_occ = 0
        #: Round-robin read column per PE.
        self.rr = np.zeros(num_pes, dtype=np.int64)
        # Per-PE ledger counters, same meaning as AggregationStats.
        # Maintained only when a sanitizer is armed — they exist to be
        # audited by check_aggregation_ledger_arrays, and the unarmed
        # fast path skips the bookkeeping.  `occ` is load-bearing
        # (engine control flow) and always maintained.
        self.offered = np.zeros(num_pes, dtype=np.int64)
        self.coalesced = np.zeros(num_pes, dtype=np.int64)
        self.stored = np.zeros(num_pes, dtype=np.int64)
        self.rejected = np.zeros(num_pes, dtype=np.int64)
        self.emitted = np.zeros(num_pes, dtype=np.int64)

    @property
    def capacity(self) -> int:
        return self.num_stages * self.num_columns

    def total_occupancy(self) -> int:
        return self._total_occ

    # ------------------------------------------------------------------
    # Write path: one cycle's worth of offers, batched
    # ------------------------------------------------------------------
    def offer_batch(
        self, pe: np.ndarray, vertex: np.ndarray, value: np.ndarray
    ) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray]:
        """Offer one cycle's dispatched updates to their PEs' arrays.

        Mirrors the reference dispatch loop: a full column with no match
        evicts its stage-0 register (systolic shift) and stores the
        newcomer in the freed last stage.  Returns ``(num_coalesced,
        evict_pe, evict_vertex, evict_value)`` with evictions ordered by
        the position of the offer that caused them — exactly the order
        the reference appends them to the out-FIFOs.
        """
        n = int(pe.size)
        if n == 0:
            empty = np.zeros(0, dtype=np.int64)
            return 0, empty, empty, np.zeros(0)
        col = vertex % self.num_columns
        key = pe * self.num_columns + col
        order = np.argsort(key, kind="stable")
        rank = np.empty(n, dtype=np.int64)
        rank[order] = run_ranks(key[order])
        # Pre-slice the rounds: a stable sort by rank keeps each round's
        # offers in stream order (ascending original position).
        by_rank = np.argsort(rank, kind="stable")
        n_rounds = int(rank[by_rank[-1]]) + 1
        round_bounds = np.searchsorted(rank[by_rank], np.arange(n_rounds + 1))
        # Per-PE ledgers exist to be audited; the unarmed path skips
        # them (`occ` is load-bearing and always maintained).
        audit = self.sanitizer is not None

        coalesced_total = 0
        ev_pos: List[np.ndarray] = []
        ev_pe: List[np.ndarray] = []
        ev_vid: List[np.ndarray] = []
        ev_val: List[np.ndarray] = []
        vid2, val2 = self._vid2, self._val2
        for r in range(n_rounds):
            sel = by_rank[round_bounds[r]:round_bounds[r + 1]]
            # PE indices are only needed for sparse subsets below —
            # recovered from the key digits on demand (k // columns)
            # instead of a full gather per round.
            k = key.take(sel)  # flat (pe, column) register-column rows
            v, x = vertex.take(sel), value.take(sel)
            if audit:
                np.add.at(self.offered, k // self.num_columns, 1)
            # (k, num_stages) copies of each offer's target column.
            block_v = vid2.take(k, axis=0)
            match = block_v == v[:, None]
            has_match = match.any(axis=1)
            if has_match.any():
                m = has_match.nonzero()[0]
                stage = match.take(m, axis=0).argmax(axis=1)
                km = k.take(m)
                fi = km * self.num_stages
                fi += stage
                self._val_flat[fi] = self.reduce_ufunc(
                    self._val_flat.take(fi), x.take(m)
                )
                if audit:
                    np.add.at(self.coalesced, km // self.num_columns, 1)
                coalesced_total += int(m.size)
            rest = (~has_match).nonzero()[0]
            if rest.size == 0:
                continue
            empty = block_v.take(rest, axis=0) == -1
            has_empty = empty.any(axis=1)
            if has_empty.all():
                st = None  # every spill finds an empty stage
                i = rest
                stage = empty.argmax(axis=1)
            else:
                st = has_empty.nonzero()[0]
                i = rest.take(st)
                stage = empty.take(st, axis=0).argmax(axis=1)
            if i.size:
                ki = k.take(i)
                fi = ki * self.num_stages
                fi += stage
                self._vid_flat[fi] = v.take(i)
                self._val_flat[fi] = x.take(i)
                pi = ki // self.num_columns
                if audit:
                    np.add.at(self.stored, pi, 1)
                self.occ += np.bincount(pi, minlength=self.num_pes)
                self._total_occ += int(i.size)
            if st is None:
                continue
            rj = rest[(~has_empty).nonzero()[0]]
            if rj.size:
                # Rejected: evict stage 0 of the full column, shift the
                # column up, store the newcomer in the freed last stage.
                # Ledger mirrors the reference's emit + second offer.
                kj = k.take(rj)
                pj = kj // self.num_columns
                ev_pos.append(sel[rj])
                ev_pe.append(pj.copy())
                col_v = vid2.take(kj, axis=0)
                col_x = val2.take(kj, axis=0)
                ev_vid.append(col_v[:, 0].copy())
                ev_val.append(col_x[:, 0].copy())
                col_v[:, :-1] = col_v[:, 1:]
                col_x[:, :-1] = col_x[:, 1:]
                col_v[:, -1] = v[rj]
                col_x[:, -1] = x[rj]
                vid2[kj] = col_v
                val2[kj] = col_x
                if audit:
                    np.add.at(self.rejected, pj, 1)
                    np.add.at(self.emitted, pj, 1)
                    np.add.at(self.offered, pj, 1)
                    np.add.at(self.stored, pj, 1)
        if not ev_pe:
            empty = np.zeros(0, dtype=np.int64)
            return coalesced_total, empty, empty, np.zeros(0)
        pos = np.concatenate(ev_pos)
        stream_order = np.argsort(pos, kind="stable")
        return (
            coalesced_total,
            np.concatenate(ev_pe)[stream_order],
            np.concatenate(ev_vid)[stream_order],
            np.concatenate(ev_val)[stream_order],
        )

    # ------------------------------------------------------------------
    # Read path: round-robin emit for the drain phase, batched
    # ------------------------------------------------------------------
    def emit_round_robin(
        self, pes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pop one register from each listed PE (all must be non-empty):
        the stage-0 entry of its next non-empty column in round-robin
        order, shifting that column up — exactly
        :meth:`AggregationPipeline.emit` with ``column=None``."""
        occupied = self.vid[pes, :, 0] != -1  # prefix-dense columns
        step = (
            self._arange_cols - self.rr.take(pes)[:, None]
        ) % self.num_columns
        col = np.where(occupied, step, self.num_columns).argmin(axis=1)
        if int(self.occ.take(pes).min()) <= 0:
            raise SimulationError(
                "emit_round_robin called on an empty register array"
            )
        rows = pes * self.num_columns + col
        col_v = self._vid2.take(rows, axis=0)
        col_x = self._val2.take(rows, axis=0)
        v = col_v[:, 0].copy()
        x = col_x[:, 0].copy()
        col_v[:, :-1] = col_v[:, 1:]
        col_x[:, :-1] = col_x[:, 1:]
        col_v[:, -1] = -1
        col_x[:, -1] = 0.0
        self._vid2[rows] = col_v
        self._val2[rows] = col_x
        self.rr[pes] = (col + 1) % self.num_columns
        self.occ[pes] -= 1
        self._total_occ -= int(pes.size)
        if self.sanitizer is not None:
            self.emitted[pes] += 1
        return v, x


# ----------------------------------------------------------------------
# Statistical window model (used at scale)
# ----------------------------------------------------------------------
def window_coalesce_count(vertex_ids: np.ndarray, window: int) -> int:
    """How many updates of a stream coalesce with a residency of
    ``window`` slots.

    An update coalesces when the previous update to the same vertex is at
    most ``window`` positions earlier in the stream (it is then still
    resident in the register array).  ``window = 0`` models the plain
    FIFO of Figure 18(a)'s zero-register case: nothing coalesces.

    Vectorised: O(E log E) in the stream length.
    """
    vertex_ids = np.asarray(vertex_ids)
    if window <= 0 or vertex_ids.size < 2:
        return 0
    positions = np.arange(vertex_ids.size, dtype=np.int64)
    order = np.argsort(vertex_ids, kind="stable")
    sorted_ids = vertex_ids[order]
    sorted_pos = positions[order]
    same = sorted_ids[1:] == sorted_ids[:-1]
    gaps = sorted_pos[1:] - sorted_pos[:-1]
    return int(np.count_nonzero(same & (gaps <= window)))


def window_coalesce(
    vertex_ids: np.ndarray,
    values: np.ndarray,
    window: int,
    reduce_ufunc: np.ufunc = np.add,
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply the window model functionally, returning the reduced stream.

    Used by tests to check that coalescing is *value-preserving*: reducing
    the output stream per vertex equals reducing the input stream per
    vertex.  Pure-Python loop — intended for small streams.

    Semantics match :func:`window_coalesce_count` exactly: an update
    coalesces iff the previous update to the same vertex (coalesced or
    not) lies at most ``window`` positions earlier in the *input*
    stream — every touch refreshes residency.  Consequently
    ``len(vertex_ids) - len(out_ids) == window_coalesce_count(vertex_ids,
    window)`` on any stream.
    """
    vertex_ids = np.asarray(vertex_ids)
    values = np.asarray(values, dtype=np.float64)
    out_ids: List[int] = []
    out_vals: List[float] = []
    # Per vertex: (input position of its last touch, output slot).
    resident: dict[int, Tuple[int, int]] = {}
    for pos, (vid, val) in enumerate(zip(vertex_ids, values)):
        vid = int(vid)
        entry = resident.get(vid)
        if entry is not None and pos - entry[0] <= window:
            slot = entry[1]
            out_vals[slot] = float(reduce_ufunc(out_vals[slot], val))
        else:
            slot = len(out_ids)
            out_ids.append(vid)
            out_vals.append(float(val))
        resident[vid] = (pos, slot)
    return np.array(out_ids, dtype=np.int64), np.array(out_vals)
