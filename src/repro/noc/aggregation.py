"""Update aggregation: the Figure 11 register-array pipeline.

Row-oriented mapping leaves routing conflicts within columns; ScalaGraph
reduces them by *pre-executing the Reduce function* on in-flight updates
(Section IV-B).  Each PE's routing unit carries a four-stage pipeline,
each stage holding four registers sharing one reduce unit.  An incoming
update is hashed to a register column and flows down the stages until it
finds a matching vertex ID (coalesce) or an empty register (store); reads
pop the first stage and shift the column up systolically.

Two models live here:

* :class:`AggregationPipeline` — a faithful cycle-level register array
  used by unit tests and the detailed simulations.
* :func:`window_coalesce_count` / :func:`window_coalesce` — the
  statistical window model used by the at-scale timing simulations: with
  ``R`` registers of residency an update coalesces iff the previous
  update to the same vertex lies within the last ``R`` slots of the
  stream.  This reproduces the Figure 18(a) register-count sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # hook is duck-typed; no runtime import needed
    from repro.analysis.sanitizer import SimSanitizer

ReduceFn = Callable[[float, float], float]


@dataclass
class _Register:
    vertex: int
    value: float


@dataclass
class AggregationStats:
    """Counters kept by the cycle-level pipeline."""

    offered: int = 0
    coalesced: int = 0
    stored: int = 0
    rejected: int = 0
    emitted: int = 0

    @property
    def coalesce_rate(self) -> float:
        return self.coalesced / self.offered if self.offered else 0.0


class AggregationPipeline:
    """The Figure 11 register array: ``num_stages x num_columns``.

    The paper's default is 4 stages x 4 registers = 16 registers
    (Section V-C: "Consider hardware complexity, we use 16 registers by
    default").
    """

    def __init__(
        self,
        num_stages: int = 4,
        num_columns: int = 4,
        reduce_fn: ReduceFn = lambda a, b: a + b,
        column_hash: Optional[Callable[[int], int]] = None,
        sanitizer: Optional["SimSanitizer"] = None,
    ) -> None:
        if num_stages <= 0 or num_columns <= 0:
            raise ConfigurationError("pipeline dimensions must be positive")
        self.num_stages = num_stages
        self.num_columns = num_columns
        self.reduce_fn = reduce_fn
        #: Optional runtime ledger audit (repro.analysis.sanitizer).
        self.sanitizer = sanitizer
        self._column_hash = column_hash or (lambda vid: vid % num_columns)
        # _array[stage][column] is Optional[_Register]; stage 0 is the
        # output stage.
        self._array: List[List[Optional[_Register]]] = [
            [None] * num_columns for _ in range(num_stages)
        ]
        self._rr_column = 0
        self.stats = AggregationStats()

    @property
    def capacity(self) -> int:
        return self.num_stages * self.num_columns

    def occupancy(self) -> int:
        return sum(
            1
            for stage in self._array
            for reg in stage
            if reg is not None
        )

    def column_of(self, vertex: int) -> int:
        col = self._column_hash(vertex)
        if not 0 <= col < self.num_columns:
            raise ConfigurationError("column_hash out of range")
        return col

    # ------------------------------------------------------------------
    # Write path (Figure 11: pipelined compare-and-reduce down a column)
    # ------------------------------------------------------------------
    def offer(self, vertex: int, value: float) -> str:
        """Insert one update; returns ``'coalesced'``, ``'stored'`` or
        ``'rejected'`` (column full with no matching vertex — the caller
        must forward the update unaggregated, as a FIFO would)."""
        self.stats.offered += 1
        col = self.column_of(vertex)
        for stage in range(self.num_stages):
            reg = self._array[stage][col]
            if reg is None:
                self._array[stage][col] = _Register(vertex, value)
                self.stats.stored += 1
                self._audit()
                return "stored"
            if reg.vertex == vertex:
                reg.value = self.reduce_fn(reg.value, value)
                self.stats.coalesced += 1
                self._audit()
                return "coalesced"
        self.stats.rejected += 1
        self._audit()
        return "rejected"

    def _audit(self) -> None:
        if self.sanitizer is not None:
            self.sanitizer.check_aggregation_ledger(self)

    # ------------------------------------------------------------------
    # Read path (systolic shift toward stage 0)
    # ------------------------------------------------------------------
    def emit(self, column: Optional[int] = None) -> Optional[Tuple[int, float]]:
        """Pop the stage-0 register of a column (round-robin when None),
        shifting the column's deeper registers one stage forward.  Returns
        ``(vertex, value)`` or None when the chosen column is empty."""
        if column is None:
            column = self._next_nonempty_column()
            if column is None:
                return None
        out = self._array[0][column]
        if out is None:
            # Column may hold data only in deeper stages; compact first.
            self._shift_up(column)
            out = self._array[0][column]
            if out is None:
                return None
        self._array[0][column] = None
        self._shift_up(column)
        self.stats.emitted += 1
        self._audit()
        return out.vertex, out.value

    def drain(self) -> List[Tuple[int, float]]:
        """Emit everything (used at end of a Scatter phase)."""
        emitted = []
        while self.occupancy():
            item = self.emit()
            if item is None:  # pragma: no cover - defensive
                break
            emitted.append(item)
        return emitted

    def _shift_up(self, column: int) -> None:
        for stage in range(self.num_stages - 1):
            if self._array[stage][column] is None:
                self._array[stage][column] = self._array[stage + 1][column]
                self._array[stage + 1][column] = None

    def _next_nonempty_column(self) -> Optional[int]:
        for step in range(self.num_columns):
            col = (self._rr_column + step) % self.num_columns
            if any(
                self._array[stage][col] is not None
                for stage in range(self.num_stages)
            ):
                self._rr_column = (col + 1) % self.num_columns
                return col
        return None


# ----------------------------------------------------------------------
# Statistical window model (used at scale)
# ----------------------------------------------------------------------
def window_coalesce_count(vertex_ids: np.ndarray, window: int) -> int:
    """How many updates of a stream coalesce with a residency of
    ``window`` slots.

    An update coalesces when the previous update to the same vertex is at
    most ``window`` positions earlier in the stream (it is then still
    resident in the register array).  ``window = 0`` models the plain
    FIFO of Figure 18(a)'s zero-register case: nothing coalesces.

    Vectorised: O(E log E) in the stream length.
    """
    vertex_ids = np.asarray(vertex_ids)
    if window <= 0 or vertex_ids.size < 2:
        return 0
    positions = np.arange(vertex_ids.size, dtype=np.int64)
    order = np.argsort(vertex_ids, kind="stable")
    sorted_ids = vertex_ids[order]
    sorted_pos = positions[order]
    same = sorted_ids[1:] == sorted_ids[:-1]
    gaps = sorted_pos[1:] - sorted_pos[:-1]
    return int(np.count_nonzero(same & (gaps <= window)))


def window_coalesce(
    vertex_ids: np.ndarray,
    values: np.ndarray,
    window: int,
    reduce_ufunc: np.ufunc = np.add,
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply the window model functionally, returning the reduced stream.

    Used by tests to check that coalescing is *value-preserving*: reducing
    the output stream per vertex equals reducing the input stream per
    vertex.  Pure-Python loop — intended for small streams.
    """
    vertex_ids = np.asarray(vertex_ids)
    values = np.asarray(values, dtype=np.float64)
    out_ids: List[int] = []
    out_vals: List[float] = []
    # Maps vertex -> index in the output arrays while still in-window.
    resident: dict[int, int] = {}
    for vid, val in zip(vertex_ids, values):
        vid = int(vid)
        slot = resident.get(vid)
        if slot is not None and len(out_ids) - slot <= window:
            out_vals[slot] = float(reduce_ufunc(out_vals[slot], val))
        else:
            resident[vid] = len(out_ids)
            out_ids.append(vid)
            out_vals.append(float(val))
    return np.array(out_ids, dtype=np.int64), np.array(out_vals)
