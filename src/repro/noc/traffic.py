"""Vectorised NoC traffic accounting: hop counts and link loads.

The at-scale timing model does not push millions of packets through the
cycle-level mesh; instead it computes, per Scatter phase, the exact load
each directed mesh link would carry under XY routing, and bounds the NoC
service time by the busiest link (plus the pipeline fill latency).  The
cycle-level :class:`~repro.noc.mesh.MeshNetwork` validates this model on
small instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.noc.topology import MeshTopology


@dataclass(frozen=True)
class LinkLoadReport:
    """Per-direction link loads of one traffic batch on a mesh.

    Attributes:
        east/west: ``(rows, cols-1)`` loads of horizontal links; entry
            ``[r, c]`` is the directed link between columns c and c+1.
        south/north: ``(rows-1, cols)`` loads of vertical links; entry
            ``[r, c]`` is the directed link between rows r and r+1.
        total_flit_hops: total link traversals (the paper's "amount of
            traffic injected into the on-chip network").
        num_packets: packets accounted.
    """

    east: np.ndarray
    west: np.ndarray
    south: np.ndarray
    north: np.ndarray
    total_flit_hops: int
    num_packets: int

    @property
    def max_link_load(self) -> int:
        """Load of the busiest directed link — the service-time bound."""
        candidates = [
            arr.max() if arr.size else 0
            for arr in (self.east, self.west, self.south, self.north)
        ]
        return int(max(candidates))

    @property
    def average_hops(self) -> float:
        return (
            self.total_flit_hops / self.num_packets if self.num_packets else 0.0
        )


def xy_hop_counts(
    topology: MeshTopology, src: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    """Per-packet hop counts under XY routing (Manhattan distance)."""
    src = np.asarray(src)
    dst = np.asarray(dst)
    dr = np.abs(topology.rows_of(src) - topology.rows_of(dst))
    dc = np.abs(topology.cols_of(src) - topology.cols_of(dst))
    return dr + dc


def mesh_link_loads(
    topology: MeshTopology, src: np.ndarray, dst: np.ndarray
) -> LinkLoadReport:
    """Exact directed link loads of a packet batch under XY routing.

    XY (X-then-Y) routing sends each packet horizontally along its source
    row, then vertically along its destination column.  Loads are computed
    with difference arrays, O(P + links).
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ConfigurationError("src/dst must align")
    rows, cols = topology.rows, topology.cols
    sr, sc = src // cols, src % cols
    dr, dc = dst // cols, dst % cols

    east = _range_loads(sr[dc > sc], sc[dc > sc], dc[dc > sc], rows, cols - 1)
    west = _range_loads(sr[dc < sc], dc[dc < sc], sc[dc < sc], rows, cols - 1)
    # Vertical segments run along the destination column.
    south = _range_loads(
        dc[dr > sr], sr[dr > sr], dr[dr > sr], cols, rows - 1
    ).T.copy() if rows > 1 else np.zeros((0, cols), dtype=np.int64)
    north = _range_loads(
        dc[dr < sr], dr[dr < sr], sr[dr < sr], cols, rows - 1
    ).T.copy() if rows > 1 else np.zeros((0, cols), dtype=np.int64)

    total = int(east.sum() + west.sum() + south.sum() + north.sum())
    return LinkLoadReport(
        east=east,
        west=west,
        south=south,
        north=north,
        total_flit_hops=total,
        num_packets=int(src.size),
    )


def column_link_loads(
    rows: int,
    column: np.ndarray,
    src_row: np.ndarray,
    dst_row: np.ndarray,
    num_cols: int,
) -> LinkLoadReport:
    """Link loads for column-only traffic (the row-oriented mapping).

    Under ROM all inter-PE communication stays within a column
    (Section IV-A), so only vertical links carry load.
    """
    column = np.asarray(column, dtype=np.int64)
    src_row = np.asarray(src_row, dtype=np.int64)
    dst_row = np.asarray(dst_row, dtype=np.int64)
    down = dst_row > src_row
    up = dst_row < src_row
    south = (
        _range_loads(column[down], src_row[down], dst_row[down], num_cols, rows - 1)
        .T.copy()
        if rows > 1
        else np.zeros((0, num_cols), dtype=np.int64)
    )
    north = (
        _range_loads(column[up], dst_row[up], src_row[up], num_cols, rows - 1)
        .T.copy()
        if rows > 1
        else np.zeros((0, num_cols), dtype=np.int64)
    )
    total = int(south.sum() + north.sum())
    return LinkLoadReport(
        east=np.zeros((rows, max(num_cols - 1, 0)), dtype=np.int64),
        west=np.zeros((rows, max(num_cols - 1, 0)), dtype=np.int64),
        south=south,
        north=north,
        total_flit_hops=total,
        num_packets=int(column.size),
    )


def _range_loads(
    lane: np.ndarray,
    start: np.ndarray,
    stop: np.ndarray,
    num_lanes: int,
    num_links: int,
) -> np.ndarray:
    """Sum of half-open index ranges [start, stop) per lane.

    Returns an ``(num_lanes, num_links)`` array where entry ``[l, k]``
    counts ranges on lane ``l`` covering link ``k`` (the link between
    positions k and k+1).
    """
    loads = np.zeros((num_lanes, num_links + 1), dtype=np.int64)
    if lane.size:
        np.add.at(loads, (lane, start), 1)
        np.add.at(loads, (lane, stop), -1)
        np.cumsum(loads, axis=1, out=loads)
    return loads[:, :num_links]
