"""Network-on-chip substrate: mesh, crossbar, Benes, and aggregation.

ScalaGraph replaces the centralised crossbar of prior accelerators with a
2D-mesh NoC (Section III-A).  This subpackage provides:

* cycle-level simulators for the mesh — the auditable reference
  (:mod:`repro.noc.mesh`) and the vectorised struct-of-arrays engine
  (:mod:`repro.noc.fastmesh`), equivalence-gated against each other and
  selected via :func:`~repro.noc.fastmesh.make_mesh_network` — and the
  VOQ crossbar (:mod:`repro.noc.crossbar`),
* the Benes multistage network (:mod:`repro.noc.benes`) used in the
  Figure 8 frequency comparison,
* the four-stage aggregation pipeline of Figure 11
  (:mod:`repro.noc.aggregation`) plus its statistical window model used by
  the at-scale timing simulations, and
* vectorised traffic/link-load accounting (:mod:`repro.noc.traffic`).
"""

from repro.noc.topology import MeshTopology, manhattan_distance
from repro.noc.packet import Packet
from repro.noc.mesh import MeshNetwork, MeshStats
from repro.noc.fastmesh import (
    AUTO_VECTORIZE_MIN_NODES,
    FastMeshNetwork,
    make_mesh_network,
    resolve_engine,
)
from repro.noc.crossbar import CrossbarSwitch, CrossbarStats
from repro.noc.benes import BenesNetwork
from repro.noc.aggregation import (
    AggregationPipeline,
    BatchedAggregationArray,
    aggregation_geometry,
    window_coalesce_count,
)
from repro.noc.traffic import (
    column_link_loads,
    mesh_link_loads,
    xy_hop_counts,
)

__all__ = [
    "MeshTopology",
    "manhattan_distance",
    "Packet",
    "MeshNetwork",
    "MeshStats",
    "AUTO_VECTORIZE_MIN_NODES",
    "FastMeshNetwork",
    "make_mesh_network",
    "resolve_engine",
    "CrossbarSwitch",
    "CrossbarStats",
    "BenesNetwork",
    "AggregationPipeline",
    "BatchedAggregationArray",
    "aggregation_geometry",
    "window_coalesce_count",
    "column_link_loads",
    "mesh_link_loads",
    "xy_hop_counts",
]
