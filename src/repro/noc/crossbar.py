"""Centralised VOQ crossbar switch (the baseline interconnect, Figure 3b).

Existing accelerators (Graphicionado, AccuGraph, GraphDynS) connect every
PE to every on-chip memory partition through a crossbar with virtual
output queues.  Routing completes in one cycle, but both the connection
matrix and the arbiter grow as O(N^2) — the scalability villain the paper
identifies.  This cycle-level model reproduces the *functional* behaviour
(single-cycle transfers, per-output serialisation of conflicting updates);
the frequency penalty of the O(N^2) hardware lives in
:mod:`repro.models.frequency`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.noc.packet import Packet


@dataclass
class CrossbarStats:
    """Aggregate statistics for a crossbar run.

    Attributes:
        cycles: simulated cycles.
        delivered: packets transferred to their output.
        conflict_stalls: input->output requests denied by arbitration
            (more than one input wanted the same output that cycle).
    """

    cycles: int = 0
    delivered: int = 0
    conflict_stalls: int = 0

    @property
    def average_latency(self) -> float:
        return self.cycles / self.delivered if self.delivered else 0.0


class CrossbarSwitch:
    """An ``num_inputs x num_outputs`` crossbar with VOQs.

    Each input port keeps one FIFO per output (virtual output queues
    eliminate head-of-line blocking).  Every cycle, each output port
    round-robins over inputs with a pending packet for it and accepts one.
    """

    def __init__(self, num_inputs: int, num_outputs: int) -> None:
        if num_inputs <= 0 or num_outputs <= 0:
            raise ConfigurationError("crossbar ports must be positive")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self._voqs: List[List[Deque[Packet]]] = [
            [deque() for _ in range(num_outputs)] for _ in range(num_inputs)
        ]
        self._rr_pointer = [0] * num_outputs
        self.cycle = 0
        self.delivered: List[Packet] = []
        self.stats = CrossbarStats()

    def inject(self, packet: Packet, input_port: Optional[int] = None) -> None:
        """Enqueue a packet at an input port (defaults to ``packet.src``)."""
        port = packet.src if input_port is None else input_port
        if not 0 <= port < self.num_inputs:
            raise ConfigurationError(f"input port {port} out of range")
        if not 0 <= packet.dst < self.num_outputs:
            raise ConfigurationError(f"output port {packet.dst} out of range")
        packet.injected_cycle = self.cycle
        self._voqs[port][packet.dst].append(packet)

    def pending(self) -> int:
        return sum(
            len(q) for voq in self._voqs for q in voq
        )

    def step(self) -> List[Packet]:
        """One arbitration cycle; returns the packets delivered."""
        delivered_now: List[Packet] = []
        for out in range(self.num_outputs):
            contenders = [
                i for i in range(self.num_inputs) if self._voqs[i][out]
            ]
            if not contenders:
                continue
            pointer = self._rr_pointer[out]
            winner = min(
                contenders, key=lambda i: (i - pointer) % self.num_inputs
            )
            self._rr_pointer[out] = (winner + 1) % self.num_inputs
            packet = self._voqs[winner][out].popleft()
            packet.delivered_cycle = self.cycle
            delivered_now.append(packet)
            self.stats.conflict_stalls += len(contenders) - 1
        self.delivered.extend(delivered_now)
        self.stats.delivered += len(delivered_now)
        self.cycle += 1
        self.stats.cycles = self.cycle
        return delivered_now

    def run_until_drained(self, max_cycles: int = 1_000_000) -> CrossbarStats:
        while self.pending():
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"crossbar did not drain within {max_cycles} cycles"
                )
            self.step()
        return self.stats
