"""Packet records exchanged over the cycle-level NoC simulators."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_packet_ids = itertools.count()


@dataclass
class Packet:
    """One vertex-update packet in flight on the NoC.

    Attributes:
        src: source node ID (the PE whose GU produced the update).
        dst: destination node ID (the PE whose SPD owns the vertex).
        vertex: destination vertex ID carried by the update.
        value: scatter result to be reduced into the vertex's V_temp.
        injected_cycle: cycle at which the packet entered the network.
        delivered_cycle: set by the simulator on arrival.
        flits: link cycles the packet occupies per hop (1 = a single
            8-byte update on a wide link; >1 models payloads wider than
            the link, serialised store-and-forward).
        pid: unique packet ID (diagnostics).
        payload: optional arbitrary extra payload for tests.
    """

    src: int
    dst: int
    vertex: int = 0
    value: float = 0.0
    injected_cycle: int = 0
    delivered_cycle: Optional[int] = None
    flits: int = 1
    pid: int = field(default_factory=lambda: next(_packet_ids))
    payload: Any = None

    @property
    def latency(self) -> Optional[int]:
        """Cycles from injection to delivery, once delivered."""
        if self.delivered_cycle is None:
            return None
        return self.delivered_cycle - self.injected_cycle


def batch_packets(srcs, dsts, vertices, values, injected_cycle: int):
    """Build one single-flit :class:`Packet` per entry.

    Shared helper for the batched injection paths, which construct
    hundreds of thousands of packets per run — one tight listcomp
    instead of per-call argument marshalling at every call site.
    """
    return [
        Packet(src, dst, vertex, value, injected_cycle)
        for src, dst, vertex, value in zip(srcs, dsts, vertices, values)
    ]
