"""Concentrated (multi-stage) crossbar: GraphPulse/Chronos-style.

GraphPulse reduces crossbar radix with a multi-stage switch and Chronos
multiplexes several PEs into one crossbar port (Section VI).  The model
here is the concentrator form: ``concentration`` PEs share each crossbar
port through round-robin concentrators, trading O((N/c)^2) crossbar cost
for serialisation at the shared ports.  Figure 8 covers its frequency
behaviour; this functional model quantifies the throughput cost and is
exercised in the interconnect comparison tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List

from repro.errors import ConfigurationError, SimulationError
from repro.noc.crossbar import CrossbarSwitch
from repro.noc.packet import Packet


@dataclass
class MultistageStats:
    """Counters of one concentrated-crossbar run."""

    cycles: int = 0
    delivered: int = 0
    concentrator_stalls: int = 0  # inputs that waited at a shared port

    @property
    def average_latency(self) -> float:
        return self.cycles / self.delivered if self.delivered else 0.0


class ConcentratedCrossbar:
    """``num_pes`` endpoints sharing a ``num_pes/concentration``-radix
    crossbar through round-robin concentrators."""

    def __init__(self, num_pes: int, concentration: int = 4) -> None:
        if num_pes <= 0 or concentration <= 0:
            raise ConfigurationError("sizes must be positive")
        if num_pes % concentration:
            raise ConfigurationError(
                "num_pes must be a multiple of the concentration factor"
            )
        self.num_pes = num_pes
        self.concentration = concentration
        self.radix = num_pes // concentration
        self._ingress: List[Deque[Packet]] = [
            deque() for _ in range(num_pes)
        ]
        self._egress: List[Deque[Packet]] = [deque() for _ in range(num_pes)]
        self._rr_in = [0] * self.radix
        self._core = CrossbarSwitch(self.radix, self.radix)
        self.cycle = 0
        self.delivered: List[Packet] = []
        self.stats = MultistageStats()

    def port_of(self, pe: int) -> int:
        """The crossbar port a PE is concentrated onto."""
        return pe // self.concentration

    def inject(self, packet: Packet) -> None:
        if not 0 <= packet.src < self.num_pes:
            raise ConfigurationError(f"src {packet.src} out of range")
        if not 0 <= packet.dst < self.num_pes:
            raise ConfigurationError(f"dst {packet.dst} out of range")
        packet.injected_cycle = self.cycle
        self._ingress[packet.src].append(packet)

    def pending(self) -> int:
        return (
            sum(len(q) for q in self._ingress)
            + self._core.pending()
            + sum(len(q) for q in self._egress)
        )

    def step(self) -> List[Packet]:
        """One cycle: concentrate -> switch -> deconcentrate."""
        # 1. Each shared input port admits one packet (round-robin over
        #    its PEs); the rest stall.
        for port in range(self.radix):
            base = port * self.concentration
            contenders = [
                base + i
                for i in range(self.concentration)
                if self._ingress[base + i]
            ]
            if not contenders:
                continue
            pointer = self._rr_in[port]
            winner = min(
                contenders,
                key=lambda pe: (pe - base - pointer) % self.concentration,
            )
            self._rr_in[port] = (winner - base + 1) % self.concentration
            self.stats.concentrator_stalls += len(contenders) - 1
            packet = self._ingress[winner].popleft()
            # Re-address onto crossbar ports; remember the endpoint.
            core_packet = Packet(
                src=self.port_of(packet.src),
                dst=self.port_of(packet.dst),
                vertex=packet.vertex,
                value=packet.value,
                payload=packet,
            )
            self._core.inject(core_packet)

        # 2. One crossbar arbitration cycle.
        for core_packet in self._core.step():
            original: Packet = core_packet.payload
            self._egress[original.dst].append(original)

        # 3. Each endpoint ejects one packet per cycle.
        delivered_now: List[Packet] = []
        for pe in range(self.num_pes):
            if self._egress[pe]:
                packet = self._egress[pe].popleft()
                packet.delivered_cycle = self.cycle
                delivered_now.append(packet)
        self.delivered.extend(delivered_now)
        self.stats.delivered += len(delivered_now)
        self.cycle += 1
        self.stats.cycles = self.cycle
        return delivered_now

    def run_until_drained(self, max_cycles: int = 1_000_000) -> MultistageStats:
        while self.pending():
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"concentrated crossbar did not drain in {max_cycles} cycles"
                )
            self.step()
        return self.stats
