"""Vectorised struct-of-arrays mesh NoC engine.

:class:`~repro.noc.mesh.MeshNetwork` is the *reference* simulator: one
:class:`~repro.noc.router.Router` object per node, advanced with Python
loops every cycle.  That is ideal for auditing but caps Figure 6-style
routing-conflict studies and analytic-model cross-checks at tiny meshes.
This module provides :class:`FastMeshNetwork`, a drop-in engine that
keeps **all** router state in a handful of NumPy buffers —

* ``(nodes, 5-ports, depth)`` FIFO ring buffers of packet indices,
* ``(nodes, 5)`` head/occupancy/round-robin/link-busy matrices,
* flat per-packet ``dst``/``flits``/``injected_cycle`` arrays —

and advances a whole cycle with batched array operations: XY route
computation, switch allocation with the reference's deterministic
round-robin priority, credit backpressure, and link traversal.

**Equivalence contract.**  The vectorised engine is packet-for-packet
and cycle-for-cycle identical to the reference simulator: identical
:class:`~repro.noc.mesh.MeshStats` (cycles, injected, delivered, hops,
latency, peak occupancy, stalled moves) and identical delivery order,
for any workload — including multi-flit packets, deferred injections,
and single-entry buffers.  ``tests/test_fastmesh.py`` enforces this
differentially across mesh sizes, traffic patterns, and the full
cycle-accurate simulator; treat any divergence as a bug in this module,
never as acceptable drift.

Both engines also support an *idle-cycle fast-forward*: when every FIFO
is empty and no link is busy, :meth:`run_until_drained` jumps the cycle
counter to the next scheduled event (pending injection or in-flight
landing) instead of spinning one cycle at a time.  The jump is
stats-neutral — idle cycles change nothing but the counter — so
fast-forwarded and stepped runs report identical ``MeshStats``.

Engine selection is wired through
:attr:`repro.core.config.ScalaGraphConfig.noc_engine` and the
:func:`make_mesh_network` factory; ``"auto"`` picks the vectorised
engine for meshes of :data:`AUTO_VECTORIZE_MIN_NODES` nodes or more.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.noc.mesh import MeshNetwork, MeshStats
from repro.noc.packet import Packet, batch_packets
from repro.noc.router import (
    EAST,
    LOCAL,
    NORTH,
    NUM_PORTS,
    PORT_NAMES,
    SOUTH,
    WEST,
)
from repro.noc.topology import MeshTopology

if TYPE_CHECKING:  # import-free at runtime: the hooks are duck-typed
    from repro.analysis.sanitizer import SimSanitizer
    from repro.faults.schedule import FaultSchedule

__all__ = [
    "AUTO_VECTORIZE_MIN_NODES",
    "FastMeshNetwork",
    "MeshEngine",
    "make_mesh_network",
    "resolve_engine",
]

#: ``noc_engine="auto"`` selects the vectorised engine for meshes with at
#: least this many nodes.  Below it the reference simulator's per-object
#: Python loops are cheap enough that NumPy dispatch overhead dominates.
AUTO_VECTORIZE_MIN_NODES = 64

#: Either cycle-level mesh engine (they are behaviourally identical).
MeshEngine = Union[MeshNetwork, "FastMeshNetwork"]

#: Input port seen by the downstream router of each output port
#: (mirrors ``mesh._LINK_OF_OUTPUT``; LOCAL has no link).
_DOWN_IN = np.array([-1, SOUTH, NORTH, EAST, WEST], dtype=np.int64)

#: ``_WINNER_LUT[r, m]`` — winning input port when the requesting
#: inputs form bitmask ``m`` and the round-robin pointer is ``r``: the
#: set bit with the smallest ``(i - r) % NUM_PORTS`` distance, i.e.
#: exactly ``argmin`` over the per-input keys.  ``m = 0`` (no request)
#: is never read because such outputs are not granted.
_WINNER_LUT = np.zeros((NUM_PORTS, 1 << NUM_PORTS), dtype=np.int64)
for _r in range(NUM_PORTS):
    for _m in range(1, 1 << NUM_PORTS):
        _WINNER_LUT[_r, _m] = min(
            (i for i in range(NUM_PORTS) if _m >> i & 1),
            key=lambda i, _r=_r: (i - _r) % NUM_PORTS,
        )
del _r, _m

#: Base-6 digit weights packing a node's five head-of-line output
#: requests (each ``-1..4``, stored as ``out + 1``) into one code.
_POW6 = (6 ** np.arange(NUM_PORTS)).astype(np.int64)

#: Flat view of :data:`_WINNER_LUT` for single-gather ``np.take`` with a
#: precomputed ``rr * 32 + mask`` index (row stride is ``1 << NUM_PORTS``).
_WINNER_FLAT = _WINNER_LUT.reshape(-1)

#: ``_MASK_LUT[code, o]`` — bitmask of input ports whose packed request
#: digit equals output port ``o`` (digit value ``o + 1``; digit 0 is
#: the "no request" sentinel).
_MASK_LUT = np.zeros((6**NUM_PORTS, NUM_PORTS), dtype=np.int64)
for _c in range(6**NUM_PORTS):
    for _i in range(NUM_PORTS):
        _d = _c // (6**_i) % 6
        if _d:
            _MASK_LUT[_c, _d - 1] |= 1 << _i
del _c, _i, _d

#: Engine-twin declaration consumed by the whole-program analyzer
#: (:mod:`repro.analysis.project`).  SIM601 audits that this module and
#: the reference mesh consume the same config fields, emit/read the
#: same ``MeshStats`` fields, and query the same fault *kinds* (the
#: query methods may differ — the reference reroutes per-packet via
#: ``route`` while this engine masks whole links via ``link_dead_mask``;
#: both consume link-outage faults).
ENGINE_TWIN = {
    "pair": "noc-engine",
    "reference": "repro.noc.mesh",
}

#: Declared dtype contract for the struct-of-arrays router state.
#: SIM604 checks every ``np.zeros/full/empty/ones`` call site assigned
#: to these attributes against this table, so a dtype change must be
#: made here — visibly — rather than slipping through one allocation.
BUFFER_DTYPES = {
    "_buf": "int64",
    "_head": "int64",
    "_count": "int64",
    "_rr": "int64",
    "_link_busy": "int64",
    "_pkt_dst": "int64",
    "_pkt_flits": "int64",
    "_pkt_injected": "int64",
    "_pkt_vertex": "int64",
    "_pkt_value": "float64",
    # Delivery log: registry indices in delivery order (cursor _dlv_n).
    "_dlv_pidx": "int64",
    # Per-cycle arbitration scratch, sliced to the active-node count and
    # written with np.take(..., out=)/in-place ufuncs so steady-state
    # cycles allocate no full-width temporaries.
    "_scr_cnt": "int64",
    "_scr_occ": "bool",
    "_scr_nocc": "bool",
    "_scr_heads": "int64",
    "_scr_dst": "int64",
    "_scr_out": "int64",
    "_scr_flat": "int64",
    "_scr_rr": "int64",
    "_scr_mask": "int64",
    "_scr_winner": "int64",
    "_scr_granted": "bool",
    "_scr_code": "int64",
    "_scr_nbase": "int64",
    "_scr_pernode": "int64",
    "_scr_route8": "int8",
    # Head-route cache: fault-free XY output port of each (node, port)
    # head-of-line packet, -1 when that FIFO is empty.
    "_head_route": "int64",
}


class FastMeshNetwork:
    """A ``rows x cols`` mesh advanced one cycle at a time, vectorised.

    Public surface mirrors :class:`~repro.noc.mesh.MeshNetwork`:
    :meth:`schedule` / :meth:`inject` packets, :meth:`step` or
    :meth:`run_until_drained`, read :attr:`delivered` and :attr:`stats`.

    Packets are registered once and referenced by integer index inside
    the FIFO arrays; the :class:`~repro.noc.packet.Packet` objects
    themselves are only touched at injection and delivery, so the
    per-cycle work is pure array math.
    """

    def __init__(
        self,
        topology: MeshTopology,
        buffer_depth: int = 4,
        sanitizer: Optional["SimSanitizer"] = None,
        faults: Optional["FaultSchedule"] = None,
        lean_packets: bool = False,
    ) -> None:
        if buffer_depth <= 0:
            raise ConfigurationError("buffer_depth must be positive")
        self.topology = topology
        self.buffer_depth = buffer_depth
        #: With ``lean_packets``, :meth:`inject_batch` is the only entry
        #: point and no Packet objects are materialised: the packet
        #: lifecycle lives entirely in the registry arrays,
        #: :attr:`delivered` stays empty, and :meth:`delivered_arrays` /
        #: :meth:`delivered_count` are the delivery views.  Stats are
        #: identical either way; this only drops the per-packet object
        #: work for callers (the vectorised scatter engine) that never
        #: read Packet instances.
        self.lean_packets = lean_packets
        #: Optional runtime invariant checker (see
        #: :mod:`repro.analysis.sanitizer`); None = zero overhead.
        self.sanitizer = sanitizer
        #: Optional fault schedule (see :mod:`repro.faults`); None =
        #: fault-free, zero overhead.  Must replay fault-for-fault
        #: identically to the reference engine (equivalence contract).
        self.faults = faults
        self.cycle = 0
        self.delivered: List[Packet] = []
        self.stats = MeshStats()

        n = topology.num_nodes
        depth = buffer_depth
        # --- struct-of-arrays router state -----------------------------
        #: FIFO ring buffers of packet indices, (node, port, slot).
        self._buf = np.zeros((n, NUM_PORTS, depth), dtype=np.int64)
        #: Ring-buffer head slot per (node, port).
        self._head = np.zeros((n, NUM_PORTS), dtype=np.int64)
        #: Entries queued per (node, port) — the occupancy ledger.
        self._count = np.zeros((n, NUM_PORTS), dtype=np.int64)
        #: Round-robin pointer per (node, output port).
        self._rr = np.zeros((n, NUM_PORTS), dtype=np.int64)
        #: Remaining busy cycles per (node, output port) — multi-flit
        #: serialisation (mirrors the reference's ``_link_busy`` dict).
        self._link_busy = np.zeros((n, NUM_PORTS), dtype=np.int64)
        #: True once any packet with ``flits > 1`` was registered.
        #: ``_link_busy`` only ever becomes non-zero through such
        #: packets, so while this stays False the busy decrement, the
        #: grant busy-check, and the serialisation branches are skipped
        #: wholesale (the dominant single-flit workload).
        self._has_multiflit = False

        # --- packet registry (None entries = lean, array-only packets) -
        self._pkts: List[Optional[Packet]] = []
        cap = 1024
        self._pkt_dst = np.zeros(cap, dtype=np.int64)
        self._pkt_flits = np.ones(cap, dtype=np.int64)
        self._pkt_injected = np.zeros(cap, dtype=np.int64)
        self._pkt_vertex = np.zeros(cap, dtype=np.int64)
        self._pkt_value = np.zeros(cap, dtype=np.float64)
        #: Registry indices of delivered packets, in delivery order
        #: (parallel to :attr:`delivered`; feeds
        #: :meth:`delivered_arrays`).  Growable array + cursor, so the
        #: per-cycle delivery log is a slice assignment and
        #: :meth:`delivered_arrays` reads a view, never a Python list.
        self._dlv_pidx = np.zeros(1024, dtype=np.int64)
        self._dlv_n = 0
        #: Packets removed from router FIFOs by the current arbitrate
        #: pass (ejections + multi-flit link departures) — lets
        #: :meth:`step` derive post-pass occupancy from the pre-pass
        #: per-node sums instead of a second full reduction.
        self._removed_by_pass = 0
        #: Router-FIFO occupancy as of the end of the last :meth:`step`
        #: (cheap read for per-cycle driver loops; equal to
        #: :meth:`total_occupancy` until the next injection).
        self.last_occupancy = 0

        # --- injection / link-traversal bookkeeping --------------------
        # Per source node: (future-injection heap keyed (when, seq),
        # ready deque of (seq, pidx, when, merged_cycle)).  Splitting
        # ready packets out of the heap avoids the reference's
        # pop-and-repush churn for backpressured injections while
        # reproducing its (when, seq) ordering exactly.
        self._pending: Dict[
            int, Tuple[List[List[int]], Deque[Tuple[int, int, int, int]]]
        ] = {}
        self._seq = 0
        #: Packets in flight on a link: (arrive_cycle, node, in_port, pidx).
        self._in_flight: List[Tuple[int, int, int, int]] = []

        # --- precomputed geometry --------------------------------------
        node = np.arange(n, dtype=np.int64)
        cols = topology.cols
        self._node_row = node // cols
        self._node_col = node % cols
        down = np.full((n, NUM_PORTS), -1, dtype=np.int64)
        down[:, NORTH] = node - cols
        down[:, SOUTH] = node + cols
        down[:, WEST] = node - 1
        down[:, EAST] = node + 1
        self._down_node = down
        self._arange_nodes = np.arange(n, dtype=np.int64)
        # (node, dst) -> XY output port, one gather per cycle instead of
        # the divmod/where route chain.  Quadratic in nodes, so only
        # built for meshes where the table stays small (int8, <= 16 MiB
        # — covers the 48x48 paper-scale probes).
        if n <= 4096:
            nr = self._node_row[:, None]
            nc = self._node_col[:, None]
            dr = self._node_row[None, :]
            dc = self._node_col[None, :]
            self._route_table = np.where(
                nc < dc,
                EAST,
                np.where(
                    nc > dc,
                    WEST,
                    np.where(
                        nr < dr, SOUTH, np.where(nr > dr, NORTH, LOCAL)
                    ),
                ),
            ).astype(np.int8)
        else:
            self._route_table = None
        self._port_row = np.arange(NUM_PORTS, dtype=np.int64).reshape(
            1, NUM_PORTS
        )

        # --- preallocated arbitration scratch --------------------------
        # One row per node, sliced to the active subset each cycle; all
        # hot-path gathers/compares land here via np.take(..., out=) and
        # in-place ufuncs, so a steady-state cycle performs zero
        # full-width allocations (only grant-sized index arrays remain).
        self._buf_flat = self._buf.reshape(-1)
        self._head_flat = self._head.reshape(-1)
        self._count_flat = self._count.reshape(-1)
        self._rr_flat = self._rr.reshape(-1)
        self._down_node_flat = self._down_node.reshape(-1)
        #: Flat base index of (node, port, slot 0) into ``_buf_flat``;
        #: adding the head slot yields the head-of-line gather index.
        self._flat_node_port = (
            node[:, None] * NUM_PORTS + np.arange(NUM_PORTS, dtype=np.int64)
        ) * depth
        #: Flat base index of (node, dst 0) into the route table.
        self._rt_base = node * np.int64(n)
        #: Downstream flat (node, port) row per flat (node, out-port)
        #: grant index: ``down_node * NUM_PORTS + down_in`` in one
        #: gather when the whole mesh is active.
        self._down_flat_lut = (
            self._down_node * NUM_PORTS + _DOWN_IN[None, :]
        ).reshape(-1)
        self._route_flat = (
            self._route_table.reshape(-1)
            if self._route_table is not None
            else None
        )
        self._scr_cnt = np.zeros((n, NUM_PORTS), dtype=np.int64)
        self._scr_occ = np.zeros((n, NUM_PORTS), dtype=bool)
        self._scr_nocc = np.zeros((n, NUM_PORTS), dtype=bool)
        self._scr_heads = np.zeros((n, NUM_PORTS), dtype=np.int64)
        self._scr_dst = np.zeros((n, NUM_PORTS), dtype=np.int64)
        self._scr_out = np.zeros((n, NUM_PORTS), dtype=np.int64)
        self._scr_flat = np.zeros((n, NUM_PORTS), dtype=np.int64)
        self._scr_rr = np.zeros((n, NUM_PORTS), dtype=np.int64)
        self._scr_mask = np.zeros((n, NUM_PORTS), dtype=np.int64)
        self._scr_winner = np.zeros((n, NUM_PORTS), dtype=np.int64)
        self._scr_granted = np.zeros((n, NUM_PORTS), dtype=bool)
        self._scr_code = np.zeros(n, dtype=np.int64)
        self._scr_nbase = np.zeros(n, dtype=np.int64)
        self._scr_pernode = np.zeros(n, dtype=np.int64)
        self._scr_route8 = np.zeros((n, NUM_PORTS), dtype=np.int8)
        # Head-route cache: the fault-free XY output port of the
        # head-of-line packet per (node, port), -1 when empty.  Kept
        # current at every write that can change a head (injection,
        # commit-pass pop, link landing), which touches far fewer rows
        # per cycle than the full head+route gather chain it replaces in
        # the fault-free arbitrate pass.  Routes are destination-only,
        # so the cache stays valid across fault windows (the fault
        # branch recomputes deflections from scratch and never reads
        # it).
        if self._route_flat is not None:
            self._head_route = np.full((n, NUM_PORTS), -1, dtype=np.int64)
            self._head_route_flat = self._head_route.reshape(-1)
        else:
            self._head_route = None
            self._head_route_flat = None
        # Deferred maintenance: mutation sites append their touched flat
        # rows here; the fault-free arbitrate pass flushes the union in
        # ONE recompute per cycle (a per-site eager refresh costs more
        # in fixed numpy overhead than the cached gather saves).
        self._hr_dirty: List[np.ndarray] = []
        # Cleared when the fault branch runs (it bypasses maintenance
        # reads); the next fault-free pass then rebuilds every row.
        self._hr_valid = True
        #: node * num_nodes per flat (node, port) row — route-table row
        #: base for :meth:`_refresh_head_route` without a divide.
        self._rt_base_pp = np.repeat(node * np.int64(n), NUM_PORTS)

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def schedule(self, packet: Packet, cycle: Optional[int] = None) -> None:
        """Queue a packet for injection at ``cycle`` (default: its
        ``injected_cycle``).  Injection is retried every cycle until the
        source router's local buffer has space."""
        when = packet.injected_cycle if cycle is None else cycle
        if self.lean_packets:
            raise ConfigurationError(
                "lean_packets networks accept only inject_batch"
            )
        self._check_node(packet.src)
        self._check_node(packet.dst)
        pidx = self._register(packet)
        entry = self._pending.get(packet.src)
        if entry is None:
            entry = ([], deque())
            self._pending[packet.src] = entry
        heapq.heappush(entry[0], [when, self._seq, pidx])
        self._seq += 1

    def inject(self, packet: Packet) -> bool:
        """Immediately place a packet into its source router's local
        input buffer.  Returns False when the buffer is full."""
        if self.lean_packets:
            raise ConfigurationError(
                "lean_packets networks accept only inject_batch"
            )
        self._check_node(packet.src)
        self._check_node(packet.dst)
        src = packet.src
        if self._count[src, LOCAL] >= self.buffer_depth:
            return False
        packet.injected_cycle = self.cycle
        pidx = self._register(packet)
        slot = (self._head[src, LOCAL] + self._count[src, LOCAL]) % (
            self.buffer_depth
        )
        self._buf[src, LOCAL, slot] = pidx
        self._count[src, LOCAL] += 1
        if self._head_route_flat is not None:
            self._refresh_head_route_one(src, LOCAL)
        self._pkt_injected[pidx] = self.cycle
        self.stats.injected += 1
        return True

    def inject_batch(
        self,
        srcs: np.ndarray,
        dsts: np.ndarray,
        vertices: np.ndarray,
        values: np.ndarray,
        assume_unique: bool = False,
        checked: bool = True,
    ) -> np.ndarray:
        """Inject one packet per entry, in argument order; returns the
        per-entry acceptance mask.

        Equivalent to calling :meth:`inject` sequentially on freshly
        built packets: entries from the same source compete for that
        router's remaining local-buffer space in argument order, so
        entry ``i`` is accepted iff fewer earlier same-source entries
        fit than there were free slots.  One Packet object is built per
        *accepted* entry (rejected entries cost nothing), and all
        registry/buffer updates are batched array writes.

        ``assume_unique=True`` asserts that ``srcs`` has no repeats
        (one packet per PE per cycle), skipping the duplicate scan.
        ``checked=False`` additionally asserts every node index is in
        range, skipping the bounds scan (four array reductions) — for
        trusted per-cycle callers like the vectorised scatter engine.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        if srcs.size == 0:
            return np.zeros(0, dtype=bool)
        dsts = np.asarray(dsts, dtype=np.int64)
        n = self.topology.num_nodes
        if checked:
            lo = min(int(srcs.min()), int(dsts.min()))
            hi = max(int(srcs.max()), int(dsts.max()))
            if lo < 0 or hi >= n:
                bad = lo if lo < 0 else hi
                raise ConfigurationError(
                    f"node {bad} outside mesh with {n} nodes"
                )
        sf = srcs * NUM_PORTS  # flat (src, LOCAL) rows; LOCAL == 0
        space = self.buffer_depth - self._count_flat.take(sf)
        # Rank each entry within its source group (argument order) —
        # rank r fits iff r < free slots, exactly sequential inject().
        # The scatter engines inject at most one packet per source per
        # cycle, so the all-unique fast path is the common one.
        unique = assume_unique or (
            srcs.size == 1
            or int(np.bincount(srcs, minlength=n).max()) <= 1
        )
        if unique:
            rank = None
            ok = space > 0
        else:
            order = np.argsort(srcs, kind="stable")
            sorted_srcs = srcs[order]
            group_start = np.concatenate(
                ([True], sorted_srcs[1:] != sorted_srcs[:-1])
            )
            starts = np.flatnonzero(group_start)
            rank = np.empty(srcs.size, dtype=np.int64)
            rank[order] = np.arange(srcs.size) - starts[
                np.cumsum(group_start) - 1
            ]
            ok = rank < space
        if ok.all():
            # All accepted (the steady-state case): skip the nonzero
            # and five masked gathers below.
            acc = None
            a_src, a_dst = srcs, dsts
            a_vtx = np.asarray(vertices, dtype=np.int64)
            a_val = np.asarray(values, dtype=np.float64)
            a_sf = sf
        else:
            acc = ok.nonzero()[0]
            if acc.size == 0:
                return ok
            a_src = srcs[acc]
            a_dst = dsts[acc]
            a_vtx = np.asarray(vertices, dtype=np.int64)[acc]
            a_val = np.asarray(values, dtype=np.float64)[acc]
            a_sf = sf[acc]
        cycle = self.cycle
        n_acc = int(a_src.size)
        base = len(self._pkts)
        need = base + n_acc
        if need > self._pkt_dst.size:
            grow = self._pkt_dst.size
            while grow < need:
                grow *= 2
            self._grow_registry(grow)
        if self.lean_packets:
            self._pkts += [None] * n_acc
        else:
            self._pkts.extend(
                batch_packets(
                    a_src.tolist(),
                    a_dst.tolist(),
                    a_vtx.tolist(),
                    a_val.tolist(),
                    cycle,
                )
            )
        pidx = np.arange(base, need, dtype=np.int64)
        self._pkt_dst[base:need] = a_dst
        self._pkt_flits[base:need] = 1
        self._pkt_injected[base:need] = cycle
        self._pkt_vertex[base:need] = a_vtx
        self._pkt_value[base:need] = a_val
        slot = self._head_flat.take(a_sf)
        slot += self._count_flat.take(a_sf)
        if rank is not None:
            slot += rank if acc is None else rank[acc]
        slot %= self.buffer_depth
        bidx = a_sf * self.buffer_depth
        bidx += slot
        self._buf_flat[bidx] = pidx
        if rank is None:
            self._count_flat[a_sf] += 1
        else:
            np.add.at(self._count_flat, a_sf, 1)
        if self._head_route_flat is not None:
            self._hr_dirty.append(a_sf)
        self.stats.injected += n_acc
        return ok

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the network by one cycle (same three phases as the
        reference: injection, landing + link bookkeeping, then one
        batched arbitrate/reserve/commit pass over every router)."""
        if self._pending:
            self._inject_pending()
        if self._in_flight:
            self._land_in_flight()
        if self._has_multiflit:
            busy = self._link_busy
            np.subtract(busy, 1, out=busy)
            np.maximum(busy, 0, out=busy)

        per_node = self._scr_pernode
        self._count.sum(axis=1, out=per_node)
        active = per_node.nonzero()[0]
        if active.size:
            # _arbitrate_and_move records how many packets left the
            # FIFOs (ejections + multi-flit link departures); link moves
            # are occupancy-neutral, so post-pass occupancy follows from
            # the pre-pass sum without a second full reduction.
            self._removed_by_pass = 0
            self._arbitrate_and_move(active)
            occupancy = int(per_node.sum()) - self._removed_by_pass
        else:
            occupancy = 0
        self.last_occupancy = occupancy
        if occupancy > self.stats.max_occupancy:
            self.stats.max_occupancy = occupancy
        self.cycle += 1
        self.stats.cycles = self.cycle
        if self.sanitizer is not None:
            self._run_sanitizer(occupancy)

    def _arbitrate_and_move(self, active: np.ndarray) -> None:
        """One switch-allocation pass over the ``active`` node subset.

        Reproduces the reference pipeline exactly: per-output round-robin
        grants from head-of-line XY requests, downstream space
        reservation against *pre-commit* occupancy, then simultaneous
        commit of every accepted move.
        """
        depth = self.buffer_depth
        count = self._count
        a = active.size
        faults = self.faults
        out = self._scr_out[:a]
        flat = self._scr_flat[:a]
        if faults is None and self._head_route is not None:
            # Fault-free fast path: the head-route cache already holds
            # each head packet's XY output port (-1 for empty rows), so
            # one 2-D gather replaces the whole head+route chain below.
            # Flush deferred maintenance first — one batched recompute
            # of every row touched since the last read.
            dirty = self._hr_dirty
            if not self._hr_valid:
                self._refresh_head_route(
                    np.arange(
                        self._head_route_flat.size, dtype=np.int64
                    )
                )
                self._hr_valid = True
                dirty.clear()
            elif dirty:
                self._refresh_head_route(
                    dirty[0] if len(dirty) == 1 else np.concatenate(dirty)
                )
                dirty.clear()
            self._head_route.take(active, axis=0, out=out, mode="clip")
        elif faults is None:
            # No route table (mesh too large): gather head-of-line
            # state and compute dimension-order routes directly.
            cnt = self._scr_cnt[:a]
            count.take(active, axis=0, out=cnt, mode="clip")
            occ = self._scr_occ[:a]  # ports with a head-of-line packet
            np.greater(cnt, 0, out=occ)
            self._flat_node_port.take(active, axis=0, out=flat, mode="clip")
            heads = self._scr_heads[:a]
            self._head.take(active, axis=0, out=heads, mode="clip")
            flat += heads  # flat (node, port, head-slot) index into _buf
            self._buf_flat.take(
                flat.reshape(-1), out=heads.reshape(-1), mode="clip"
            )
            dst = self._scr_dst[:a]
            self._pkt_dst.take(heads, out=dst, mode="clip")
            nocc = self._scr_nocc[:a]
            np.logical_not(occ, out=nocc)
            dst_row, dst_col = np.divmod(dst, self.topology.cols)
            row = self._node_row[active][:, None]
            col = self._node_col[active][:, None]
            out[...] = np.where(
                col < dst_col,
                EAST,
                np.where(
                    col > dst_col,
                    WEST,
                    np.where(
                        row < dst_row,
                        SOUTH,
                        np.where(row > dst_row, NORTH, LOCAL),
                    ),
                ),
            )
            np.copyto(out, -1, where=nocc)
        else:
            # Fault branch: gather head-of-line state, then apply the
            # vectorised deflection policy.  It never reads the cache,
            # so maintenance pauses here: mark the cache invalid and
            # drop the dirty backlog — the next fault-free pass
            # rebuilds every row from the live FIFO arrays.
            if self._head_route is not None:
                self._hr_valid = False
                self._hr_dirty.clear()
            cnt = self._scr_cnt[:a]
            count.take(active, axis=0, out=cnt, mode="clip")
            occ = self._scr_occ[:a]  # ports with a head-of-line packet
            np.greater(cnt, 0, out=occ)
            self._flat_node_port.take(active, axis=0, out=flat, mode="clip")
            heads = self._scr_heads[:a]
            self._head.take(active, axis=0, out=heads, mode="clip")
            flat += heads  # flat (node, port, head-slot) index into _buf
            self._buf_flat.take(
                flat.reshape(-1), out=heads.reshape(-1), mode="clip"
            )
            dst = self._scr_dst[:a]
            self._pkt_dst.take(heads, out=dst, mode="clip")
            dst_row, dst_col = np.divmod(dst, self.topology.cols)
            row = self._node_row[active][:, None]
            col = self._node_col[active][:, None]
            # Dimension-order routing for every head packet at once.
            fout = np.where(
                col < dst_col,
                EAST,
                np.where(
                    col > dst_col,
                    WEST,
                    np.where(
                        row < dst_row,
                        SOUTH,
                        np.where(row > dst_row, NORTH, LOCAL),
                    ),
                ),
            )
            # Vectorised mirror of repro.faults.route_with_faults: dead
            # XY links deflect one hop along the other axis (toward the
            # destination row, or the mesh interior), a dead deflection
            # blocks the packet this cycle, and frozen FIFOs withhold
            # their requests entirely.  Kept decision-for-decision
            # identical to the reference engine's scalar policy.
            dead = faults.link_dead_mask(self.cycle)[active]
            stall = faults.fifo_stall_mask(self.cycle)[active]
            valid = occ & ~stall
            a_col = np.arange(active.size)[:, None]
            xy_dead = valid & dead[a_col, fout]  # dead[:, LOCAL] is False
            fault_seen = bool(xy_dead.any()) or bool((stall & occ).any())
            if xy_dead.any():
                rows_total = self.topology.rows
                cols_total = self.topology.cols
                is_x = (fout == EAST) | (fout == WEST)
                deflect_same_row = np.where(
                    row + 1 < rows_total, SOUTH, NORTH
                )
                alt_x = np.where(
                    row < dst_row,
                    SOUTH,
                    np.where(row > dst_row, NORTH, deflect_same_row),
                )
                alt_y = np.where(col + 1 < cols_total, EAST, WEST)
                alt = np.where(is_x, alt_x, alt_y)
                blocked = dead[a_col, alt]
                if rows_total == 1:
                    blocked = blocked | is_x  # no Y axis to deflect along
                if cols_total == 1:
                    blocked = blocked | ~is_x  # no X axis to deflect along
                fout = np.where(
                    xy_dead, np.where(blocked, -1, alt), fout
                )
            if fault_seen:
                self.stats.degraded_cycles += 1
            out[...] = np.where(valid, fout, -1)

        # Switch allocation: for each (node, out port), the contending
        # input port closest at-or-after the round-robin pointer wins.
        # A node's five head requests (each -1..4) form one base-6 code;
        # _MASK_LUT turns the code into per-output request bitmasks and
        # _WINNER_LUT resolves each mask against the round-robin
        # pointer — two table gathers instead of an (active, out, in)
        # match/argmin tensor pass.
        out += 1  # request digits 0..5 (0 = no request)
        code = self._scr_code[:a]
        np.dot(out, _POW6, out=code)  # (a,)
        mask = self._scr_mask[:a]  # (a, out) request bitmasks
        _MASK_LUT.take(code, axis=0, out=mask, mode="clip")
        rr = self._scr_rr[:a]
        self._rr.take(active, axis=0, out=rr, mode="clip")
        np.multiply(rr, _WINNER_LUT.shape[1], out=flat)
        flat += mask
        winner = self._scr_winner[:a]  # (a, out)
        _WINNER_FLAT.take(
            flat.reshape(-1), out=winner.reshape(-1), mode="clip"
        )
        granted = self._scr_granted[:a]
        np.not_equal(mask, 0, out=granted)
        if self._has_multiflit:
            granted &= self._link_busy[active] == 0

        # Split local ejections from link traversals.  All gathers and
        # scatters below index the flat (node*NUM_PORTS + port) views —
        # single-array integer indexing skips the multi-array iterator
        # setup that dominated this tail.
        winner_flat = winner.reshape(-1)
        full = a == self._arange_nodes.size
        lm = np.flatnonzero(granted[:, LOCAL])
        local_nodes = lm if full else active.take(lm)
        local_in = winner_flat.take(lm * NUM_PORTS)  # LOCAL == 0
        granted[:, LOCAL] = False
        # Flat nonzero over the contiguous grant matrix, then split the
        # flat index into its (node-row, out-port) digits — one pass
        # instead of np.nonzero's two output arrays, and when every
        # node is active the flat index doubles directly as the
        # (node, port) gather index.
        gfl = np.flatnonzero(granted.reshape(-1))
        gin = winner_flat.take(gfl)
        go = gfl % NUM_PORTS
        if full:
            gnode = gfl // NUM_PORTS
            dnf = self._down_flat_lut.take(gfl)
        else:
            gnode = active.take(gfl // NUM_PORTS)
            dnf = self._down_flat_lut.take(gnode * NUM_PORTS + go)
        # Credit backpressure: reserve downstream space now (pre-commit
        # occupancy); a grant without space is a stalled move.
        space = self._count_flat.take(dnf) < depth
        stalled = int(go.size - np.count_nonzero(space))
        if stalled:
            self.stats.stalled_moves += stalled
            gnode, go, gin = gnode[space], go[space], gin[space]
            dnf = dnf[space]

        # Commit: dequeue every granted head and rotate the pointers.
        # (node, in) pairs are unique — each input port requests exactly
        # one output — so the fancy-indexed updates cannot collide.
        num_local = local_nodes.size
        if num_local and gnode.size:
            pop_node = np.concatenate([local_nodes, gnode])
            pop_in = np.concatenate([local_in, gin])
        elif num_local:
            pop_node, pop_in = local_nodes, local_in
        else:
            pop_node, pop_in = gnode, gin
        pf = pop_node * NUM_PORTS + pop_in
        pop_head = self._head_flat.take(pf)
        bidx = pf * depth
        bidx += pop_head
        pidx = self._buf_flat.take(bidx)
        pop_head += 1
        pop_head %= depth
        self._head_flat[pf] = pop_head
        self._count_flat[pf] -= 1
        # Round-robin pointer of the granting *output* port: the flat
        # index is node*NUM_PORTS + out, i.e. pf with the input digit
        # swapped for the output digit (LOCAL == 0 for ejections).
        rr_idx = pf - pop_in
        rr_idx[num_local:] += go
        rr_val = pop_in + 1
        rr_val %= NUM_PORTS
        self._rr_flat[rr_idx] = rr_val
        if self._head_route_flat is not None:
            self._hr_dirty.append(pf)
        # serial=None means "every popped packet is single-flit", which
        # is guaranteed while no flits>1 packet was ever registered.
        serial = (
            np.maximum(self._pkt_flits[pidx], 1) - 1
            if self._has_multiflit
            else None
        )
        if faults is not None and gnode.size:
            # Committed traversals leaving through a non-XY port are the
            # detours (counted at commit, same as the reference engine).
            t_dst = self._pkt_dst[pidx[num_local:]]
            t_row, t_col = np.divmod(t_dst, self.topology.cols)
            n_row = self._node_row[gnode]
            n_col = self._node_col[gnode]
            pure = np.where(
                n_col < t_col,
                EAST,
                np.where(
                    n_col > t_col,
                    WEST,
                    np.where(
                        n_row < t_row,
                        SOUTH,
                        np.where(n_row > t_row, NORTH, LOCAL),
                    ),
                ),
            )
            self.stats.rerouted_packets += int(np.count_nonzero(go != pure))

        if num_local:
            self._deliver(
                local_nodes,
                pidx[:num_local],
                None if serial is None else serial[:num_local],
            )
        if gnode.size:
            self._traverse(
                gnode,
                go,
                dnf,
                pidx[num_local:],
                None if serial is None else serial[num_local:],
            )

    def _deliver(
        self,
        nodes: np.ndarray,
        pidx: np.ndarray,
        serial: Optional[np.ndarray],
    ) -> None:
        """Eject packets at their destination (ascending node order —
        the same intra-cycle delivery order the reference produces).
        ``serial=None`` asserts every packet is single-flit."""
        self.stats.delivered += nodes.size
        self._removed_by_pass += int(nodes.size)
        if serial is None:
            self.stats.total_latency += int(
                nodes.size * self.cycle - self._pkt_injected[pidx].sum()
            )
            delivered_cycle = None
        else:
            delivered_cycle = self.cycle + serial
            self.stats.total_latency += int(
                (delivered_cycle - self._pkt_injected[pidx]).sum()
            )
            multi = serial > 0
            if multi.any():
                # +1 because the counter ticks at the start of the next
                # cycle: block exactly `serial` cycles.
                self._link_busy[nodes[multi], LOCAL] = serial[multi] + 1
        n0 = self._dlv_n
        need = n0 + pidx.size
        if need > self._dlv_pidx.size:
            grow = self._dlv_pidx.size
            while grow < need:
                grow *= 2
            log = np.zeros(grow, dtype=np.int64)
            log[:n0] = self._dlv_pidx[:n0]
            self._dlv_pidx = log
        self._dlv_pidx[n0:need] = pidx
        self._dlv_n = need
        if self.lean_packets:
            return
        packets = self._pkts
        out = self.delivered
        for i in range(nodes.size):
            packet = packets[pidx[i]]
            packet.delivered_cycle = (
                self.cycle
                if delivered_cycle is None
                else int(delivered_cycle[i])
            )
            out.append(packet)

    def delivered_count(self) -> int:
        """Packets delivered so far (lean-mode-safe cursor for
        :meth:`delivered_arrays`; equals ``len(delivered)`` when packets
        are materialised)."""
        return self._dlv_n

    def delivered_arrays(
        self, start: int = 0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(dst, vertex, value)`` of ``delivered[start:]`` as arrays.

        Batched read of the delivery stream for the vectorised scatter
        engine: the same packets as ``self.delivered[start:]``, without
        touching the Packet objects (three fancy-indexed reads of the
        registry sliced straight off the delivery log).
        """
        idx = self._dlv_pidx[start:self._dlv_n]
        return (
            self._pkt_dst[idx],
            self._pkt_vertex[idx],
            self._pkt_value[idx],
        )

    def _traverse(
        self,
        nodes: np.ndarray,
        outs: np.ndarray,
        df: np.ndarray,
        pidx: np.ndarray,
        serial: Optional[np.ndarray],
    ) -> None:
        """Move packets across links: single-flit packets land in the
        downstream FIFO this cycle; wider ones occupy the link and land
        once fully serialised (store-and-forward).  ``df`` is the flat
        ``down_node * NUM_PORTS + down_in`` row per packet.
        ``serial=None`` asserts every packet is single-flit."""
        depth = self.buffer_depth
        self.stats.total_hops += nodes.size
        if serial is None:
            slot = self._head_flat.take(df)
            slot += self._count_flat.take(df)
            slot %= depth
            bidx = df * depth
            bidx += slot
            self._buf_flat[bidx] = pidx
            self._count_flat[df] += 1
            if self._head_route_flat is not None:
                self._hr_dirty.append(df)
            return
        down_node, down_in = np.divmod(df, NUM_PORTS)
        single = serial == 0
        arr_node, arr_in, arr_pidx = (
            down_node[single],
            down_in[single],
            pidx[single],
        )
        if arr_node.size:
            slot = (
                self._head[arr_node, arr_in] + self._count[arr_node, arr_in]
            ) % depth
            self._buf[arr_node, arr_in, slot] = arr_pidx
            self._count[arr_node, arr_in] += 1
            if self._head_route_flat is not None:
                self._hr_dirty.append(arr_node * NUM_PORTS + arr_in)
        if not single.all():
            for k in np.flatnonzero(~single):
                self._removed_by_pass += 1
                self._link_busy[nodes[k], outs[k]] = serial[k] + 1
                self._in_flight.append(
                    (
                        self.cycle + int(serial[k]),
                        int(down_node[k]),
                        int(down_in[k]),
                        int(pidx[k]),
                    )
                )

    def run_until_drained(
        self, max_cycles: int = 1_000_000, fast_forward: bool = True
    ) -> MeshStats:
        """Step until every scheduled packet has been delivered.

        With ``fast_forward`` (default), idle gaps — no FIFO occupancy,
        no busy link — are skipped by jumping straight to the next
        pending-injection or in-flight-landing cycle; the resulting
        stats are identical to stepping through the gap.
        """
        while True:
            occupancy = self.total_occupancy()
            if not (self._pending or self._in_flight or occupancy):
                break
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"mesh did not drain within {max_cycles} cycles"
                )
            if fast_forward and not occupancy:
                target = self.next_event_cycle()
                if target is not None and target > self.cycle:
                    self.fast_forward(min(target, max_cycles))
            self.step()
        return self.stats

    # ------------------------------------------------------------------
    # Engine-agnostic inspection (shared with MeshNetwork)
    # ------------------------------------------------------------------
    def total_occupancy(self) -> int:
        """Total packets buffered in router FIFOs (excludes in-flight
        multi-flit packets; see :meth:`in_flight_packets`)."""
        return int(self._count.sum())

    def in_flight_packets(self) -> int:
        """Packets currently serialising across a link."""
        return len(self._in_flight)

    def next_event_cycle(self) -> Optional[int]:
        """Cycle of the next scheduled event while the mesh is idle.

        Returns None unless the network is *quiescent* — empty FIFOs,
        no busy links — with work still scheduled (pending injections
        or in-flight landings).  Jumping the cycle counter to the
        returned value is then observationally identical to stepping.
        """
        if self.total_occupancy() or self._link_busy.any():
            return None
        events = [arrive for arrive, _n, _p, _i in self._in_flight]
        for future, ready in self._pending.values():
            if ready:
                return None  # a past-due packet is retrying: not idle
            if future:
                events.append(future[0][0])
        return min(events) if events else None

    def fast_forward(self, target: int) -> int:
        """Jump the idle network's cycle counter to ``target``; returns
        the number of cycles skipped.  Callers must only pass targets at
        or before :meth:`next_event_cycle` (the jump assumes nothing can
        move in between)."""
        skipped = target - self.cycle
        if skipped <= 0:
            return 0
        self.cycle = target
        self.stats.cycles = self.cycle
        return skipped

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refresh_head_route(self, pf: np.ndarray) -> None:
        """Recompute the head-route cache for the flat
        ``node * NUM_PORTS + port`` rows ``pf``.

        Idempotent — rows may be in any state (duplicates included),
        each is recomputed from the live FIFO arrays: the XY route of
        the current head packet, or -1 when the row is empty.
        """
        bidx = pf * self.buffer_depth
        bidx += self._head_flat.take(pf)
        pidx = self._buf_flat.take(bidx)
        dst = self._pkt_dst.take(pidx, mode="clip")
        rt = self._rt_base_pp.take(pf)
        rt += dst
        route = self._route_flat.take(rt)
        self._head_route_flat[pf] = np.where(
            self._count_flat.take(pf) > 0, route, -1
        )

    def _refresh_head_route_one(self, node: int, port: int) -> None:
        """Scalar form of :meth:`_refresh_head_route` for the
        object-packet slow paths (``inject``/``_inject_pending``/
        ``_land_in_flight``)."""
        f = node * NUM_PORTS + port
        if self._count_flat[f] > 0:
            pidx = int(
                self._buf_flat[f * self.buffer_depth + self._head_flat[f]]
            )
            dst = int(self._pkt_dst[pidx])
            self._head_route_flat[f] = self._route_flat[
                node * self.topology.num_nodes + dst
            ]
        else:
            self._head_route_flat[f] = -1

    def _register(self, packet: Packet) -> int:
        pidx = len(self._pkts)
        self._pkts.append(packet)
        if packet.flits > 1:
            self._has_multiflit = True
        if pidx >= self._pkt_dst.size:
            self._grow_registry(self._pkt_dst.size * 2)
        self._pkt_dst[pidx] = packet.dst
        self._pkt_flits[pidx] = packet.flits
        self._pkt_injected[pidx] = packet.injected_cycle
        self._pkt_vertex[pidx] = packet.vertex
        self._pkt_value[pidx] = packet.value
        return pidx

    def _grow_registry(self, grow: int) -> None:
        self._pkt_dst = np.resize(self._pkt_dst, grow)
        self._pkt_flits = np.resize(self._pkt_flits, grow)
        self._pkt_injected = np.resize(self._pkt_injected, grow)
        self._pkt_vertex = np.resize(self._pkt_vertex, grow)
        self._pkt_value = np.resize(self._pkt_value, grow)

    def _inject_pending(self) -> None:
        """Drain due injections into local buffers, in (when, seq) order
        per node, deferring what does not fit.

        Deferred packets wait in the ready deque instead of being
        re-pushed into the heap every cycle (the reference's behaviour);
        the merge below reproduces the reference's ordering exactly,
        because a deferred packet's effective injection key is
        ``(current_cycle, seq)``.
        """
        cycle = self.cycle
        depth = self.buffer_depth
        # One vectorised read of the local-port state, then plain-int
        # arithmetic inside the loop; the (unique-node) writes are
        # committed with a single fancy-indexed scatter at the end.
        local_count = self._count[:, LOCAL].tolist()
        local_head = self._head[:, LOCAL].tolist()
        pkts = self._pkts
        slot_node: List[int] = []
        slot_pos: List[int] = []
        slot_pidx: List[int] = []
        slot_when: List[int] = []
        upd_node: List[int] = []
        upd_fits: List[int] = []
        for node in list(self._pending):
            future, ready = self._pending[node]
            if future and future[0][0] <= cycle:
                fresh = []
                while future and future[0][0] <= cycle:
                    fresh.append(heapq.heappop(future))
                if ready:
                    merged = [
                        (cycle, seq, pidx, when, merged_at)
                        for seq, pidx, when, merged_at in ready
                    ]
                    merged += [
                        (when, seq, pidx, when, cycle)
                        for when, seq, pidx in fresh
                    ]
                    merged.sort()
                    ready.clear()
                    ready.extend(
                        (seq, pidx, when, merged_at)
                        for _eff, seq, pidx, when, merged_at in merged
                    )
                else:
                    ready.extend(
                        (seq, pidx, when, cycle)
                        for when, seq, pidx in fresh
                    )
            if ready:
                space = depth - local_count[node]
                fits = min(space, len(ready)) if space > 0 else 0
                if fits:
                    base = local_head[node] + local_count[node]
                    for j in range(fits):
                        _seq, pidx, when, merged_at = ready.popleft()
                        # A packet deferred by backpressure injects "now";
                        # one arriving on schedule keeps its own cycle.
                        injected = when if merged_at == cycle else cycle
                        slot_node.append(node)
                        slot_pos.append((base + j) % depth)
                        slot_pidx.append(pidx)
                        slot_when.append(injected)
                        pkts[pidx].injected_cycle = injected
                    upd_node.append(node)
                    upd_fits.append(fits)
            if not ready and not future:
                del self._pending[node]
        if slot_node:
            self._buf[slot_node, LOCAL, slot_pos] = slot_pidx
            self._pkt_injected[slot_pidx] = slot_when
            self._count[upd_node, LOCAL] += np.asarray(
                upd_fits, dtype=np.int64
            )
            if self._head_route_flat is not None:
                self._hr_dirty.append(
                    np.asarray(upd_node, dtype=np.int64) * NUM_PORTS
                )
            self.stats.injected += len(slot_node)

    def _land_in_flight(self) -> None:
        """Deposit fully-transferred multi-flit packets downstream; a
        landing blocked by a full buffer retries next cycle."""
        depth = self.buffer_depth
        remaining = []
        for arrive, node, in_port, pidx in self._in_flight:
            if arrive > self.cycle:
                remaining.append((arrive, node, in_port, pidx))
                continue
            if self._count[node, in_port] < depth:
                slot = (
                    self._head[node, in_port] + self._count[node, in_port]
                ) % depth
                self._buf[node, in_port, slot] = pidx
                self._count[node, in_port] += 1
                if self._head_route_flat is not None:
                    self._refresh_head_route_one(node, in_port)
            else:
                self.stats.stalled_moves += 1
                remaining.append((self.cycle + 1, node, in_port, pidx))
        self._in_flight = remaining

    def _run_sanitizer(self, occupancy: int) -> None:
        """End-of-cycle invariant audit over the array state (opt-in)."""
        san = self.sanitizer
        assert san is not None
        san.check_cycle_monotonic(self.cycle)
        san.check_fifo_depth_array(
            self._count,
            self.buffer_depth,
            where="fastmesh router",
            cycle=self.cycle,
            port_names=PORT_NAMES,
        )
        san.check_conservation(
            injected=self.stats.injected,
            delivered=self.stats.delivered,
            coalesced=0,  # the mesh moves packets; it never merges them
            in_flight=occupancy + len(self._in_flight),
            where="fastmesh",
            cycle=self.cycle,
        )

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.topology.num_nodes:
            raise ConfigurationError(
                f"node {node} outside mesh with "
                f"{self.topology.num_nodes} nodes"
            )


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------
def resolve_engine(engine: str, topology: MeshTopology) -> str:
    """Resolve an engine name (``auto``/``reference``/``vectorized``)
    to a concrete one, choosing by mesh size for ``auto``."""
    name = engine.lower()
    if name == "auto":
        return (
            "vectorized"
            if topology.num_nodes >= AUTO_VECTORIZE_MIN_NODES
            else "reference"
        )
    if name in ("reference", "vectorized"):
        return name
    raise ConfigurationError(
        f"unknown NoC engine {engine!r} (auto/reference/vectorized)"
    )


def make_mesh_network(
    topology: MeshTopology,
    buffer_depth: int = 4,
    sanitizer: Optional["SimSanitizer"] = None,
    engine: str = "auto",
    faults: Optional["FaultSchedule"] = None,
    lean_packets: bool = False,
) -> MeshEngine:
    """Build a cycle-level mesh simulator.

    ``engine`` selects the implementation: ``"reference"`` (one Router
    object per node — the auditable golden model), ``"vectorized"``
    (:class:`FastMeshNetwork`), or ``"auto"`` (vectorised at or above
    :data:`AUTO_VECTORIZE_MIN_NODES` nodes).  Both produce identical
    packets, cycles, and stats — including fault replay when a
    :class:`~repro.faults.schedule.FaultSchedule` is armed.
    """
    if resolve_engine(engine, topology) == "vectorized":
        return FastMeshNetwork(
            topology,
            buffer_depth=buffer_depth,
            sanitizer=sanitizer,
            faults=faults,
            lean_packets=lean_packets,
        )
    # The reference engine always materialises packets; lean_packets is
    # a FastMeshNetwork-only optimisation and is ignored here.
    return MeshNetwork(
        topology, buffer_depth=buffer_depth, sanitizer=sanitizer,
        faults=faults,
    )
