"""Benes rearrangeable permutation network.

The paper's Figure 8 compares the mesh against a Benes network as the
representative O(N log N) interconnect.  A Benes network on ``N = 2^k``
ports has ``2k - 1`` stages of ``N/2`` two-by-two switches and can realise
*any* input-output permutation.  This module builds the network, computes
switch settings for a requested permutation with the classic looping
algorithm, and evaluates settings back to a permutation (used by the tests
to prove rearrangeability).  Hardware-complexity figures
(:meth:`BenesNetwork.num_switches`, :meth:`BenesNetwork.depth`) feed the
frequency and area models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class BenesSettings:
    """Switch settings for one (sub-)network.

    Attributes:
        first: cross/straight flag per first-stage switch.
        last: cross/straight flag per last-stage switch.
        subnets: settings of the upper/lower half networks (None at N=2).
    """

    first: List[bool]
    last: List[bool]
    subnets: Optional[Tuple["BenesSettings", "BenesSettings"]]

    @property
    def is_base(self) -> bool:
        return self.subnets is None


class BenesNetwork:
    """A Benes network on ``num_ports = 2^k`` ports."""

    def __init__(self, num_ports: int) -> None:
        if num_ports < 2 or num_ports & (num_ports - 1):
            raise ConfigurationError(
                f"Benes needs a power-of-two port count >= 2, got {num_ports}"
            )
        self.num_ports = num_ports

    # ------------------------------------------------------------------
    # Hardware complexity (consumed by the frequency/area models)
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of switch stages: ``2 * log2(N) - 1``."""
        return 2 * int(np.log2(self.num_ports)) - 1

    @property
    def num_switches(self) -> int:
        """Total 2x2 switches: ``depth * N / 2`` — the O(N log N) cost."""
        return self.depth * self.num_ports // 2

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route_permutation(self, perm: Sequence[int]) -> BenesSettings:
        """Compute switch settings realising ``perm`` (output of input i
        is ``perm[i]``). Raises if ``perm`` is not a permutation."""
        perm = list(perm)
        if sorted(perm) != list(range(self.num_ports)):
            raise ConfigurationError("perm must be a permutation of 0..N-1")
        return _route(perm)

    def evaluate(self, settings: BenesSettings) -> List[int]:
        """The permutation realised by the given switch settings."""
        return [_trace(settings, i) for i in range(self.num_ports)]


def _route(perm: List[int]) -> BenesSettings:
    n = len(perm)
    if n == 2:
        return BenesSettings(first=[perm[0] == 1], last=[], subnets=None)

    inverse = [0] * n
    for i, o in enumerate(perm):
        inverse[o] = i

    # Looping algorithm: 2-colour inputs with the subnet (0=upper,
    # 1=lower) they traverse, subject to: the two inputs of an input
    # switch take different subnets, and the two outputs of an output
    # switch are fed from different subnets.
    subnet = [-1] * n
    for seed in range(n):
        if subnet[seed] != -1:
            continue
        i, colour = seed, 0
        while subnet[i] == -1:
            subnet[i] = colour
            # The output this input drives must leave via the same subnet,
            # so the sibling output must use the other subnet...
            sibling_out = perm[i] ^ 1
            j = inverse[sibling_out]
            if subnet[j] == -1:
                subnet[j] = 1 - colour
            # ...and j's input-switch sibling must take colour again.
            i, colour = j ^ 1, colour
            if i == seed:
                break

    first = [bool(subnet[2 * k]) for k in range(n // 2)]
    last = [False] * (n // 2)
    sub_perm: List[List[int]] = [[0] * (n // 2), [0] * (n // 2)]
    for i in range(n):
        s = subnet[i]
        sub_perm[s][i // 2] = perm[i] // 2
        # Arriving at last-stage switch perm[i]//2 on port s, the packet
        # must exit on port perm[i] % 2.
        last[perm[i] // 2] = bool(s ^ (perm[i] % 2)) if s == subnet[i] else last[perm[i] // 2]
    # Recompute `last` deterministically from subnet-0 passengers only
    # (both passengers give consistent settings by construction).
    for i in range(n):
        if subnet[i] == 0:
            last[perm[i] // 2] = bool(perm[i] % 2)

    return BenesSettings(
        first=first,
        last=last,
        subnets=(_route(sub_perm[0]), _route(sub_perm[1])),
    )


def _trace(settings: BenesSettings, port: int) -> int:
    if settings.is_base:
        return port ^ int(settings.first[0])
    switch, lane = divmod(port, 2)
    subnet = lane ^ int(settings.first[switch])
    inner = _trace(settings.subnets[subnet], switch)
    out_lane = subnet ^ int(settings.last[inner])
    return 2 * inner + out_lane
