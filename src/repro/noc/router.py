"""Input-buffered mesh router with XY routing and round-robin arbitration.

Each ScalaGraph PE contains a routing unit (RU) that forwards vertex
updates to neighbouring RUs (Section III-A).  The router model here is the
standard low-cost design the paper's O(N) mesh complexity assumes: five
ports (local + N/S/E/W), one-flit-per-cycle links, FIFO input buffers,
dimension-order (X-then-Y) routing, and per-output round-robin arbitration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology

#: Port indices.  LOCAL is both the injection port and the delivery port.
LOCAL, NORTH, SOUTH, WEST, EAST = range(5)
PORT_NAMES = ("local", "north", "south", "west", "east")
NUM_PORTS = 5


def xy_output_port(topology: MeshTopology, node: int, dst: int) -> int:
    """Dimension-order routing decision: route X (columns) then Y (rows)."""
    r, c = topology.coord(node)
    dr, dc = topology.coord(dst)
    if c < dc:
        return EAST
    if c > dc:
        return WEST
    if r < dr:
        return SOUTH
    if r > dr:
        return NORTH
    return LOCAL


@dataclass
class Router:
    """One mesh router: five input FIFOs plus arbitration state."""

    node: int
    buffer_depth: int
    inputs: List[Deque[Packet]] = field(init=False)
    _rr_pointer: List[int] = field(init=False)

    def __post_init__(self) -> None:
        if self.buffer_depth <= 0:
            raise ConfigurationError("buffer_depth must be positive")
        self.inputs = [deque() for _ in range(NUM_PORTS)]
        self._rr_pointer = [0] * NUM_PORTS

    def has_space(self, in_port: int) -> bool:
        return len(self.inputs[in_port]) < self.buffer_depth

    def accept(self, in_port: int, packet: Packet) -> None:
        if not self.has_space(in_port):
            raise ConfigurationError(
                f"router {self.node} port {PORT_NAMES[in_port]} overflow"
            )
        self.inputs[in_port].append(packet)

    def occupancy(self) -> int:
        return sum(self.port_occupancy())

    def port_occupancy(self) -> Tuple[int, ...]:
        """Entries queued per input port, indexed like ``PORT_NAMES``
        (the per-FIFO ledger the SimSanitizer audits against
        ``buffer_depth``)."""
        return tuple(len(q) for q in self.inputs)

    def arbitrate(
        self,
        topology: MeshTopology,
        route_fn: Optional[Callable[[int, int], Optional[int]]] = None,
        frozen_ports: Tuple[int, ...] = (),
    ) -> Dict[int, int]:
        """Pick one winning input port per requested output port.

        Returns a mapping ``{out_port: in_port}`` covering every output
        some head-of-line packet wants this cycle.  Round-robin pointers
        rotate *only* when a grant is issued, which keeps arbitration
        fair under sustained contention.

        ``route_fn(node, dst)`` overrides the XY routing decision (the
        fault-injection detour hook); returning None withholds that
        packet's request this cycle.  ``frozen_ports`` lists input
        FIFOs whose dequeues are stalled (fault injection): they make
        no request at all, but keep accepting arrivals.
        """
        requests: Dict[int, List[int]] = {}
        for in_port, queue in enumerate(self.inputs):
            if not queue or in_port in frozen_ports:
                continue
            if route_fn is None:
                out_port = xy_output_port(topology, self.node, queue[0].dst)
            else:
                routed = route_fn(self.node, queue[0].dst)
                if routed is None:
                    continue
                out_port = routed
            requests.setdefault(out_port, []).append(in_port)

        grants: Dict[int, int] = {}
        for out_port, contenders in requests.items():
            pointer = self._rr_pointer[out_port]
            # Pick the first contender at or after the pointer, wrapping.
            winner = min(
                contenders, key=lambda p: (p - pointer) % NUM_PORTS
            )
            grants[out_port] = winner
        return grants

    def commit_grant(self, out_port: int, in_port: int) -> Packet:
        """Dequeue the granted packet and advance the RR pointer."""
        self._rr_pointer[out_port] = (in_port + 1) % NUM_PORTS
        return self.inputs[in_port].popleft()
