"""Cycle-level 2D-mesh NoC simulator.

This is the detailed model of ScalaGraph's interconnect: a matrix of
:class:`~repro.noc.router.Router` instances advanced cycle by cycle with
credit-style backpressure.  It is intentionally unoptimised Python — it
exists to validate the vectorised analytic NoC model used by the at-scale
accelerator simulations (tests cross-check the two on small meshes) and to
measure routing-conflict behaviour directly (Figure 6, Section II-C).

For at-scale cycle-level runs use :mod:`repro.noc.fastmesh`: a
struct-of-arrays NumPy engine that is packet-for-packet and
cycle-for-cycle identical to this one (differential tests enforce it)
but advances whole cycles with batched array operations.  This class
remains the golden model the fast engine is gated against.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # import-free at runtime: the hooks are duck-typed
    from repro.analysis.sanitizer import SimSanitizer
    from repro.faults.schedule import FaultSchedule

from repro.errors import ConfigurationError, SimulationError
from repro.noc.packet import Packet
from repro.noc.router import (
    EAST,
    LOCAL,
    NORTH,
    PORT_NAMES,
    SOUTH,
    WEST,
    Router,
    xy_output_port,
)
from repro.noc.topology import MeshTopology

#: For an output port on one router, the (row delta, col delta, input port
#: seen by the downstream router) of the traversed link.
_LINK_OF_OUTPUT = {
    NORTH: (-1, 0, SOUTH),
    SOUTH: (1, 0, NORTH),
    WEST: (0, -1, EAST),
    EAST: (0, 1, WEST),
}


@dataclass
class MeshStats:
    """Aggregate statistics for a mesh simulation run.

    Attributes:
        cycles: total simulated cycles.
        injected: packets accepted into a source router's local buffer
            (the conservation ledger's debit side).
        delivered: number of packets that reached their destination.
        total_hops: router-to-router link traversals (NoC communications
            in the paper's sense — traffic injected into the network).
        total_latency: sum of per-packet injection-to-delivery latencies.
        max_occupancy: peak total buffer occupancy across routers.
        stalled_moves: grants that could not proceed for lack of
            downstream buffer space (routing conflicts surface here).
        degraded_cycles: cycles in which an armed fault schedule
            actually degraded progress — a head-of-line packet faced a
            dead XY link (detoured or blocked) or a nonempty FIFO sat
            frozen.  Zero when no faults are armed.
        rerouted_packets: committed link traversals that left through a
            non-XY port (the detour-around-dead-link policy of
            :mod:`repro.faults`).
    """

    cycles: int = 0
    injected: int = 0
    delivered: int = 0
    total_hops: int = 0
    total_latency: int = 0
    max_occupancy: int = 0
    stalled_moves: int = 0
    degraded_cycles: int = 0
    rerouted_packets: int = 0

    @property
    def average_latency(self) -> float:
        return self.total_latency / self.delivered if self.delivered else 0.0

    @property
    def average_hops(self) -> float:
        return self.total_hops / self.delivered if self.delivered else 0.0


class MeshNetwork:
    """A ``rows x cols`` mesh advanced one cycle at a time.

    Usage: :meth:`schedule` packets (or :meth:`inject` directly), then call
    :meth:`run_until_drained`; delivered packets land in
    :attr:`delivered` with ``delivered_cycle`` filled in.
    """

    def __init__(
        self,
        topology: MeshTopology,
        buffer_depth: int = 4,
        sanitizer: Optional["SimSanitizer"] = None,
        faults: Optional["FaultSchedule"] = None,
    ) -> None:
        self.topology = topology
        self.buffer_depth = buffer_depth
        #: Optional runtime invariant checker (see
        #: :mod:`repro.analysis.sanitizer`); None = zero overhead.
        self.sanitizer = sanitizer
        #: Optional fault schedule (see :mod:`repro.faults`); None =
        #: fault-free, zero overhead.
        self.faults = faults
        self.routers = [
            Router(node=n, buffer_depth=buffer_depth)
            for n in range(topology.num_nodes)
        ]
        self.cycle = 0
        self.delivered: List[Packet] = []
        self.stats = MeshStats()
        self._pending: List[Tuple[int, int, Packet]] = []  # (cycle, seq, pkt)
        self._seq = 0
        # Multi-flit support: cycles each (node, out_port) stays busy,
        # and packets in flight on a link (store-and-forward).
        self._link_busy: Dict[Tuple[int, int], int] = {}
        self._in_flight: List[Tuple[int, int, int, Packet]] = []

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def schedule(self, packet: Packet, cycle: Optional[int] = None) -> None:
        """Queue a packet for injection at ``cycle`` (default: its
        ``injected_cycle``).  Injection is retried every cycle until the
        source router's local buffer has space."""
        when = packet.injected_cycle if cycle is None else cycle
        self._check_node(packet.src)
        self._check_node(packet.dst)
        heapq.heappush(self._pending, (when, self._seq, packet))
        self._seq += 1

    def inject(self, packet: Packet) -> bool:
        """Immediately place a packet into its source router's local
        input buffer.  Returns False when the buffer is full."""
        self._check_node(packet.src)
        self._check_node(packet.dst)
        router = self.routers[packet.src]
        if not router.has_space(LOCAL):
            return False
        packet.injected_cycle = self.cycle
        router.accept(LOCAL, packet)
        self.stats.injected += 1
        return True

    def inject_batch(
        self,
        srcs: np.ndarray,
        dsts: np.ndarray,
        vertices: np.ndarray,
        values: np.ndarray,
        assume_unique: bool = False,
        checked: bool = True,
    ) -> np.ndarray:
        """Inject one packet per entry, in argument order; returns the
        per-entry acceptance mask.  Loop form of
        :meth:`~repro.noc.fastmesh.FastMeshNetwork.inject_batch` so both
        engines expose the same batched surface (``assume_unique`` and
        ``checked`` are pure hints; the loop form never needs them)."""
        ok = np.zeros(len(srcs), dtype=bool)
        for i in range(len(srcs)):
            ok[i] = self.inject(
                Packet(
                    src=int(srcs[i]),
                    dst=int(dsts[i]),
                    vertex=int(vertices[i]),
                    value=float(values[i]),
                )
            )
        return ok

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the network by one cycle.

        Phase 1 drains the pending-injection heap into local buffers
        (subject to space); phase 2 arbitrates every router and commits
        all grants simultaneously (two-phase update so intra-cycle order
        does not matter); phase 3 applies the moves.
        """
        self._inject_pending()
        self._land_in_flight()
        self._tick_link_busy()

        # Collect all grants first (read phase); outputs still busy
        # serialising a multi-flit packet are skipped.  With a fault
        # schedule armed, routing goes through the schedule's detour
        # policy, frozen FIFOs withhold their requests, and any fault
        # that touched a live packet marks the cycle degraded.
        moves: List[Tuple[int, int, int]] = []  # (node, out_port, in_port)
        faults = self.faults
        fault_seen = False
        if faults is None:
            for router in self.routers:
                grants = router.arbitrate(self.topology)
                for out_port, in_port in grants.items():
                    if self._link_busy.get((router.node, out_port), 0) > 0:
                        continue
                    moves.append((router.node, out_port, in_port))
        else:
            stall_mask = faults.fifo_stall_mask(self.cycle)

            def route_fn(node: int, dst: int) -> Optional[int]:
                nonlocal fault_seen
                port, hit = faults.route(node, dst, self.cycle)
                fault_seen = fault_seen or hit
                return port

            for router in self.routers:
                stall_row = stall_mask[router.node]
                frozen: Tuple[int, ...] = ()
                if stall_row.any():
                    frozen = tuple(
                        p
                        for p in range(len(router.inputs))
                        if stall_row[p]
                    )
                    if any(router.inputs[p] for p in frozen):
                        fault_seen = True
                grants = router.arbitrate(self.topology, route_fn, frozen)
                for out_port, in_port in grants.items():
                    if self._link_busy.get((router.node, out_port), 0) > 0:
                        continue
                    moves.append((router.node, out_port, in_port))

        # Reserve downstream capacity: at most one packet enters a given
        # (router, input port) per cycle, and only if space exists *now*.
        accepted: List[Tuple[int, int, int]] = []
        for node, out_port, in_port in moves:
            if out_port == LOCAL:
                accepted.append((node, out_port, in_port))
                continue
            dr, dc, _ = _LINK_OF_OUTPUT[out_port]
            r, c = self.topology.coord(node)
            downstream = self.routers[self.topology.node(r + dr, c + dc)]
            dst_in = _LINK_OF_OUTPUT[out_port][2]
            if downstream.has_space(dst_in):
                accepted.append((node, out_port, in_port))
            else:
                self.stats.stalled_moves += 1

        # Commit phase.
        arrivals: List[Tuple[Router, int, Packet]] = []
        for node, out_port, in_port in accepted:
            router = self.routers[node]
            packet = router.commit_grant(out_port, in_port)
            if (
                faults is not None
                and out_port != LOCAL
                and out_port
                != xy_output_port(self.topology, node, packet.dst)
            ):
                # Counted at commit so arbitration losers and
                # backpressured grants are not double-counted.
                self.stats.rerouted_packets += 1
            serialisation = max(int(packet.flits), 1) - 1
            if out_port == LOCAL:
                packet.delivered_cycle = self.cycle + serialisation
                self.delivered.append(packet)
                self.stats.delivered += 1
                self.stats.total_latency += packet.latency or 0
                if serialisation:
                    # +1 because the counter ticks at the start of the
                    # next cycle: block exactly `serialisation` cycles.
                    self._link_busy[(node, out_port)] = serialisation + 1
            else:
                dr, dc, dst_in = _LINK_OF_OUTPUT[out_port]
                r, c = self.topology.coord(node)
                downstream_node = self.topology.node(r + dr, c + dc)
                self.stats.total_hops += 1
                if serialisation:
                    # The tail flits occupy the link; the packet lands
                    # downstream once fully transferred.  (+1: the busy
                    # counter ticks at the start of the next cycle.)
                    self._link_busy[(node, out_port)] = serialisation + 1
                    self._in_flight.append(
                        (
                            self.cycle + serialisation,
                            downstream_node,
                            dst_in,
                            packet,
                        )
                    )
                else:
                    arrivals.append(
                        (self.routers[downstream_node], dst_in, packet)
                    )
        for downstream, dst_in, packet in arrivals:
            downstream.accept(dst_in, packet)
        if fault_seen:
            self.stats.degraded_cycles += 1

        occupancy = sum(r.occupancy() for r in self.routers)
        self.stats.max_occupancy = max(self.stats.max_occupancy, occupancy)
        self.cycle += 1
        self.stats.cycles = self.cycle
        if self.sanitizer is not None:
            self._run_sanitizer(occupancy)

    def _run_sanitizer(self, occupancy: int) -> None:
        """End-of-cycle invariant audit (opt-in, see module docstring of
        :mod:`repro.analysis.sanitizer`)."""
        san = self.sanitizer
        san.check_cycle_monotonic(self.cycle)
        for router in self.routers:
            for port, depth in enumerate(router.port_occupancy()):
                san.check_fifo_depth(
                    depth,
                    self.buffer_depth,
                    where=f"router {router.node} port {PORT_NAMES[port]}",
                    cycle=self.cycle,
                )
        san.check_conservation(
            injected=self.stats.injected,
            delivered=self.stats.delivered,
            coalesced=0,  # the mesh moves packets; it never merges them
            in_flight=occupancy + len(self._in_flight),
            where="mesh",
            cycle=self.cycle,
        )

    def run_until_drained(
        self, max_cycles: int = 1_000_000, fast_forward: bool = True
    ) -> MeshStats:
        """Step until every scheduled packet has been delivered.

        With ``fast_forward`` (default), idle gaps — no FIFO occupancy,
        no busy link — are skipped by jumping straight to the next
        pending-injection or in-flight-landing cycle; the resulting
        stats are identical to stepping through the gap.
        """
        while True:
            occupancy = self.total_occupancy()
            if not (self._pending or self._in_flight or occupancy):
                break
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"mesh did not drain within {max_cycles} cycles"
                )
            if fast_forward and not occupancy:
                target = self.next_event_cycle()
                if target is not None and target > self.cycle:
                    self.fast_forward(min(target, max_cycles))
            self.step()
        return self.stats

    # ------------------------------------------------------------------
    # Engine-agnostic inspection (shared with FastMeshNetwork)
    # ------------------------------------------------------------------
    def total_occupancy(self) -> int:
        """Total packets buffered in router FIFOs (excludes in-flight
        multi-flit packets; see :meth:`in_flight_packets`)."""
        return sum(r.occupancy() for r in self.routers)

    def in_flight_packets(self) -> int:
        """Packets currently serialising across a link."""
        return len(self._in_flight)

    def next_event_cycle(self) -> Optional[int]:
        """Cycle of the next scheduled event while the mesh is idle.

        Returns None unless the network is *quiescent* — empty FIFOs,
        no busy links — with work still scheduled (pending injections
        or in-flight landings).  Jumping the cycle counter to the
        returned value is then observationally identical to stepping.
        """
        if self.total_occupancy() or self._link_busy:
            return None
        events = [arrive for arrive, _n, _p, _pkt in self._in_flight]
        if self._pending:
            events.append(self._pending[0][0])
        return min(events) if events else None

    def fast_forward(self, target: int) -> int:
        """Jump the idle network's cycle counter to ``target``; returns
        the number of cycles skipped.  Callers must only pass targets at
        or before :meth:`next_event_cycle` (the jump assumes nothing can
        move in between)."""
        skipped = target - self.cycle
        if skipped <= 0:
            return 0
        self.cycle = target
        self.stats.cycles = self.cycle
        return skipped

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _land_in_flight(self) -> None:
        """Deposit fully-transferred multi-flit packets downstream.

        A landing blocked by a full buffer retries next cycle (the tail
        keeps the link busy meanwhile, which is store-and-forward
        backpressure).
        """
        remaining = []
        for arrive_cycle, node, in_port, packet in self._in_flight:
            if arrive_cycle > self.cycle:
                remaining.append((arrive_cycle, node, in_port, packet))
                continue
            router = self.routers[node]
            if router.has_space(in_port):
                router.accept(in_port, packet)
            else:
                self.stats.stalled_moves += 1
                remaining.append((self.cycle + 1, node, in_port, packet))
        self._in_flight = remaining

    def _tick_link_busy(self) -> None:
        for key in list(self._link_busy):
            self._link_busy[key] -= 1
            if self._link_busy[key] <= 0:
                del self._link_busy[key]

    def _inject_pending(self) -> None:
        deferred = []
        while self._pending and self._pending[0][0] <= self.cycle:
            when, seq, packet = heapq.heappop(self._pending)
            router = self.routers[packet.src]
            if router.has_space(LOCAL):
                packet.injected_cycle = when  # latency counts queueing time
                router.accept(LOCAL, packet)
                self.stats.injected += 1
            else:
                deferred.append((self.cycle + 1, seq, packet))
        for item in deferred:
            heapq.heappush(self._pending, item)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.topology.num_nodes:
            raise ConfigurationError(
                f"node {node} outside mesh with {self.topology.num_nodes} nodes"
            )
