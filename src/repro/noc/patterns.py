"""Synthetic NoC traffic patterns (standard interconnect methodology).

Graph workloads are irregular, but interconnects are characterised with
canonical patterns: uniform random, permutations (transpose,
bit-reversal, shuffle), hotspot, and tornado.  These generators feed the
cycle-level mesh/crossbar simulators for saturation-throughput studies
(``benchmarks/bench_noc_characterization.py``) and stress tests.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.noc.topology import MeshTopology

#: A pattern maps (topology, rng, count) -> (src, dst) arrays.
PatternFn = Callable[[MeshTopology, np.random.Generator, int], Tuple[np.ndarray, np.ndarray]]


def uniform_random(
    topology: MeshTopology, rng: np.random.Generator, count: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Each packet picks an independent uniform source and destination."""
    n = topology.num_nodes
    return (
        rng.integers(0, n, count, dtype=np.int64),
        rng.integers(0, n, count, dtype=np.int64),
    )


def transpose(
    topology: MeshTopology, rng: np.random.Generator, count: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Node (r, c) sends to (c, r).  Requires a square mesh."""
    if topology.rows != topology.cols:
        raise ConfigurationError("transpose needs a square mesh")
    src = rng.integers(0, topology.num_nodes, count, dtype=np.int64)
    r, c = src // topology.cols, src % topology.cols
    return src, c * topology.cols + r


def bit_reversal(
    topology: MeshTopology, rng: np.random.Generator, count: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Destination = bit-reversed source index (power-of-two meshes)."""
    n = topology.num_nodes
    bits = int(math.log2(n))
    if 1 << bits != n:
        raise ConfigurationError("bit_reversal needs a power-of-two mesh")
    src = rng.integers(0, n, count, dtype=np.int64)
    dst = np.zeros_like(src)
    value = src.copy()
    for _ in range(bits):
        dst = (dst << 1) | (value & 1)
        value >>= 1
    return src, dst


def shuffle(
    topology: MeshTopology, rng: np.random.Generator, count: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Perfect shuffle: rotate the node index left by one bit."""
    n = topology.num_nodes
    bits = int(math.log2(n))
    if 1 << bits != n:
        raise ConfigurationError("shuffle needs a power-of-two mesh")
    src = rng.integers(0, n, count, dtype=np.int64)
    dst = ((src << 1) | (src >> (bits - 1))) & (n - 1)
    return src, dst


def hotspot(
    topology: MeshTopology,
    rng: np.random.Generator,
    count: int,
    hotspot_fraction: float = 0.5,
    hotspot_node: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """A fraction of packets target one node; the rest are uniform.

    This is the pattern a high in-degree vertex induces on a graph
    accelerator's NoC.
    """
    if not 0 <= hotspot_fraction <= 1:
        raise ConfigurationError("hotspot_fraction must be in [0, 1]")
    n = topology.num_nodes
    src = rng.integers(0, n, count, dtype=np.int64)
    dst = rng.integers(0, n, count, dtype=np.int64)
    hot = rng.random(count) < hotspot_fraction
    dst[hot] = hotspot_node
    return src, dst


def tornado(
    topology: MeshTopology, rng: np.random.Generator, count: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Each node sends (almost) half-way across each dimension — the
    worst case for minimal routing on rings, a hard case on meshes."""
    src = rng.integers(0, topology.num_nodes, count, dtype=np.int64)
    r, c = src // topology.cols, src % topology.cols
    dr = (r + (topology.rows - 1) // 2) % topology.rows
    dc = (c + (topology.cols - 1) // 2) % topology.cols
    return src, dr * topology.cols + dc


#: Registry of patterns by conventional name.
PATTERNS: Dict[str, PatternFn] = {
    "uniform": uniform_random,
    "transpose": transpose,
    "bit_reversal": bit_reversal,
    "shuffle": shuffle,
    "hotspot": hotspot,
    "tornado": tornado,
}


def generate(
    name: str,
    topology: MeshTopology,
    count: int,
    seed: int = 0,
    **kwargs,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a named pattern's (src, dst) arrays."""
    if name not in PATTERNS:
        raise ConfigurationError(
            f"unknown pattern {name!r}; known: {sorted(PATTERNS)}"
        )
    rng = np.random.default_rng(seed)
    return PATTERNS[name](topology, rng, count, **kwargs)


def saturation_throughput(
    topology: MeshTopology,
    pattern: str,
    packets: int = 400,
    seed: int = 0,
    buffer_depth: int = 4,
    engine: str = "auto",
) -> float:
    """Accepted throughput (packets/node/cycle) under saturating load.

    Injects all packets at cycle 0 and measures drain rate — an upper
    bound on sustainable throughput for the pattern.  ``engine`` picks
    the mesh simulator (``auto``/``reference``/``vectorized``; both
    engines report identical stats, so this only affects wall-clock).
    """
    from repro.noc.fastmesh import make_mesh_network
    from repro.noc.packet import Packet

    src, dst = generate(pattern, topology, packets, seed)
    network = make_mesh_network(
        topology, buffer_depth=buffer_depth, engine=engine
    )
    for s, d in zip(src, dst):
        network.schedule(Packet(src=int(s), dst=int(d), injected_cycle=0))
    stats = network.run_until_drained()
    if stats.cycles == 0:
        return 0.0
    return stats.delivered / stats.cycles / topology.num_nodes
