"""ScalaGraph (HPCA 2022) reproduction library.

A from-scratch Python implementation of *ScalaGraph: A Scalable
Accelerator for Massively Parallel Graph Processing* (Yao et al., HPCA
2022) and every substrate it depends on: CSR graphs and generators, the
vertex-centric programming model, cycle-level NoC simulators
(mesh/crossbar/Benes), the Figure 11 aggregation pipeline, HBM and
scratchpad models, the three workload mappings, FPGA
frequency/area/energy models, and the GraphDynS/AccuGraph/Gunrock
baselines.

Quickstart::

    from repro import ScalaGraph, ScalaGraphConfig, PageRank, load_dataset

    graph = load_dataset("PK")
    report = ScalaGraph(ScalaGraphConfig()).run(PageRank(), graph)
    print(report.summary())
"""

from repro.algorithms import (
    BFS,
    SSSP,
    ConnectedComponents,
    PageRank,
    SpMV,
    VertexProgram,
    WidestPath,
    make_algorithm,
    run_direction_optimizing_bfs,
    run_reference,
)
from repro.baselines import AccuGraph, GraphDynS, GraphPulse, Gunrock
from repro.core import (
    CycleAccurateScalaGraph,
    FunctionalScalaGraph,
    ScalaGraph,
    ScalaGraphConfig,
    SimulationReport,
    TimingParams,
)
from repro.engines import EventDrivenEngine
from repro.validate import validate_report, validate_timing_envelope
from repro.errors import (
    CapacityError,
    ConfigurationError,
    GraphFormatError,
    ReproError,
    SimulationError,
    SynthesisError,
)
from repro.graph import CSRGraph, load_dataset, rmat_graph

__version__ = "1.0.0"

__all__ = [
    "BFS",
    "SSSP",
    "ConnectedComponents",
    "PageRank",
    "VertexProgram",
    "make_algorithm",
    "run_reference",
    "AccuGraph",
    "GraphDynS",
    "Gunrock",
    "FunctionalScalaGraph",
    "ScalaGraph",
    "ScalaGraphConfig",
    "SimulationReport",
    "TimingParams",
    "CapacityError",
    "ConfigurationError",
    "GraphFormatError",
    "ReproError",
    "SimulationError",
    "SynthesisError",
    "CSRGraph",
    "load_dataset",
    "rmat_graph",
    "SpMV",
    "WidestPath",
    "run_direction_optimizing_bfs",
    "GraphPulse",
    "CycleAccurateScalaGraph",
    "EventDrivenEngine",
    "validate_report",
    "validate_timing_envelope",
    "__version__",
]
