# Convenience targets for the ScalaGraph reproduction.

.PHONY: install test test-sanitize lint bench examples results clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# Tier-1 suite with the runtime invariant sanitizer armed.
test-sanitize:
	REPRO_SANITIZE=1 PYTHONPATH=src python -m pytest tests/

# Repo-specific static analysis: simlint per-file rules plus the SIM6xx
# whole-program analyzer (engine twins, config knobs, dtype contracts),
# plus the strict mypy baseline (skipped gracefully where mypy is not
# installed).
lint:
	PYTHONPATH=src python -m repro lint --project
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping type check"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

# The artifacts the task sheet asks for.
results:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
