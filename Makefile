# Convenience targets for the ScalaGraph reproduction.

.PHONY: install test bench examples results clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

# The artifacts the task sheet asks for.
results:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
