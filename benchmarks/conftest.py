"""Shared fixtures for the paper-reproduction benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_*`` file regenerates one table or figure of the paper and
prints the rows/series; every emitted table is also written to
``benchmarks/results/<name>.txt`` so the output survives pytest's
capture.  ``EXPERIMENTS.md`` records the paper-vs-measured comparison.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import run_matrix

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def figure14_matrix():
    """The full Figure 14/15/20 sweep: 5 graphs x 4 algorithms x 5
    systems, sharing one reference execution per cell."""
    return run_matrix()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
