"""Shared fixtures for the paper-reproduction benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_*`` file regenerates one table or figure of the paper and
prints the rows/series; every emitted table is also written to
``benchmarks/results/<name>.txt`` so the output survives pytest's
capture.  ``EXPERIMENTS.md`` records the paper-vs-measured comparison.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import ResultCache, run_matrix_parallel

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict) -> None:
    """Persist a machine-readable summary under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


@pytest.fixture(scope="session")
def figure14_matrix():
    """The full Figure 14/15/20 sweep: 5 graphs x 4 algorithms x 5
    systems, sharing one reference execution per cell.

    Cells fan out over worker processes and are cached on disk, so a
    re-run after an interrupted or repeated benchmark session only
    recomputes what is missing.  Knobs (environment variables):

    * ``REPRO_BENCH_WORKERS`` — worker processes (``1`` = serial;
      default lets the executor choose).
    * ``REPRO_BENCH_CACHE``   — cache directory (default
      ``benchmarks/.cache``; ``0``/``off`` disables caching).
    * ``REPRO_BENCH_REFRESH`` — set to ``1`` to recompute and overwrite
      cached cells.
    """
    workers_env = os.environ.get("REPRO_BENCH_WORKERS", "")
    max_workers = int(workers_env) if workers_env else None
    cache_env = os.environ.get("REPRO_BENCH_CACHE", "")
    cache: ResultCache | None
    if cache_env.lower() in ("0", "off", "none"):
        cache = None
    else:
        cache = ResultCache(cache_env or Path(__file__).parent / ".cache")
    return run_matrix_parallel(
        max_workers=max_workers,
        cache=cache,
        refresh=os.environ.get("REPRO_BENCH_REFRESH") == "1",
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
