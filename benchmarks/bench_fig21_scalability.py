"""Figure 21: ScalaGraph's performance scaling with the PE count.

Paper: near-linear speedup up to 512 PEs on the U280's 460 GB/s;
1024 PEs gains only 1.16x over 512 (bandwidth saturated); with ample
off-chip bandwidth (the cycle-accurate >=1024-PE study), each doubling
beyond 1,024 PEs still buys ~1.47x.
"""

from conftest import emit

from repro.algorithms import PageRank, run_reference
from repro.core import ScalaGraph, ScalaGraphConfig
from repro.experiments import format_series, geometric_mean
from repro.graph.datasets import DATASET_ORDER, load_dataset
from repro.memory.hbm import HBMConfig

U280_PES = (32, 64, 128, 256, 512, 1024)
UNBOUNDED_PES = (1024, 2048, 4096)
MAX_ITERS = 5


def run_scaling():
    u280 = {name: {} for name in DATASET_ORDER}
    unbounded = {name: {} for name in DATASET_ORDER}
    for name in DATASET_ORDER:
        graph = load_dataset(name)
        reference = run_reference(PageRank(), graph, max_iterations=MAX_ITERS)
        base = None
        for pes in U280_PES:
            report = ScalaGraph(ScalaGraphConfig().with_pes(pes)).run(
                PageRank(), graph, reference=reference
            )
            if base is None:
                base = report.gteps
            u280[name][pes] = report.gteps / base
        for pes in UNBOUNDED_PES:
            config = ScalaGraphConfig(hbm=HBMConfig.unbounded()).with_pes(pes)
            report = ScalaGraph(config).run(
                PageRank(), graph, reference=reference
            )
            unbounded[name][pes] = report.gteps / base
    return u280, unbounded


def test_figure21_scalability(benchmark):
    u280, unbounded = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    text = format_series(
        u280,
        x_label="PEs",
        title="Figure 21: speedup over 32 PEs on the U280 (460 GB/s)",
    )
    text += "\n\n" + format_series(
        unbounded,
        x_label="PEs",
        title="Figure 21 (right): >=1024 PEs with ample off-chip bandwidth",
    )
    saturation = geometric_mean(
        [u280[n][1024] / u280[n][512] for n in DATASET_ORDER]
    )
    doubling = geometric_mean(
        [
            (unbounded[n][4096] / unbounded[n][1024]) ** 0.5
            for n in DATASET_ORDER
        ]
    )
    text += (
        f"\n\n1024 vs 512 PEs on U280: {saturation:.2f}x (paper 1.16x, "
        f"bandwidth-saturated); per-doubling beyond 1024 with ample "
        f"bandwidth: {doubling:.2f}x (paper 1.47x)."
    )
    emit("fig21_scalability", text)

    for name in DATASET_ORDER:
        curve = u280[name]
        # Monotone scaling...
        values = [curve[p] for p in U280_PES]
        assert values == sorted(values)
        # ...substantial through 512 (near-linear regime)...
        assert curve[512] > 4.0
        # ...then bandwidth-saturated at 1024 on the U280.
        assert curve[1024] / curve[512] < 1.6
        # With ample bandwidth, 4096 PEs keep scaling past the U280 wall.
        assert unbounded[name][4096] > curve[1024]
    assert 1.0 <= saturation < 1.6
    assert 1.1 < doubling < 1.9
