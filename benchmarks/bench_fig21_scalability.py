"""Figure 21: ScalaGraph's performance scaling with the PE count.

Paper: near-linear speedup up to 512 PEs on the U280's 460 GB/s;
1024 PEs gains only 1.16x over 512 (bandwidth saturated); with ample
off-chip bandwidth (the cycle-accurate >=1024-PE study), each doubling
beyond 1,024 PEs still buys ~1.47x.

The analytic curves above are cross-checked with one *cycle-accurate*
scaling pair at paper scale: a million-edge R-MAT graph through the
vectorized cycle engine on 16x16 (256 PEs) and 32x32 (1024 PEs)
meshes — the regime the paper's >=1024-PE study lives in.  Skip with
``REPRO_FIG21_CYCLE_SIM=`` (empty) on hosts that cannot afford the
~40 s of simulation.
"""

import os

from conftest import emit

from repro.algorithms import PageRank, run_reference
from repro.core import ScalaGraph, ScalaGraphConfig
from repro.experiments import format_series, geometric_mean
from repro.graph.datasets import DATASET_ORDER, load_dataset
from repro.memory.hbm import HBMConfig

U280_PES = (32, 64, 128, 256, 512, 1024)
UNBOUNDED_PES = (1024, 2048, 4096)
MAX_ITERS = 5
CYCLE_SIM = os.environ.get("REPRO_FIG21_CYCLE_SIM", "1").strip()


def run_cycle_sim_scaling():
    """Cycle-accurate 256 -> 1024 PE scaling on a million-edge R-MAT.

    Built lazily (graph construction and two vectorized cycle-sim runs)
    so the env-knob skip costs nothing."""
    from repro.core import CycleAccurateScalaGraph
    from repro.graph.generators import rmat_graph

    graph = rmat_graph(16, edge_factor=16, seed=1)
    points = {}
    for rows in (16, 32):
        config = ScalaGraphConfig(
            num_tiles=1,
            pe_rows=rows,
            pe_cols=rows,
            aggregation_registers=64,
            mapping="rom",
            cycle_engine="vectorized",
        )
        result = CycleAccurateScalaGraph(config).run(
            PageRank(max_iters=2), graph
        )
        points[rows * rows] = int(result.stats.total_cycles)
    return graph.num_edges, points


def run_scaling():
    u280 = {name: {} for name in DATASET_ORDER}
    unbounded = {name: {} for name in DATASET_ORDER}
    for name in DATASET_ORDER:
        graph = load_dataset(name)
        reference = run_reference(PageRank(), graph, max_iterations=MAX_ITERS)
        base = None
        for pes in U280_PES:
            report = ScalaGraph(ScalaGraphConfig().with_pes(pes)).run(
                PageRank(), graph, reference=reference
            )
            if base is None:
                base = report.gteps
            u280[name][pes] = report.gteps / base
        for pes in UNBOUNDED_PES:
            config = ScalaGraphConfig(hbm=HBMConfig.unbounded()).with_pes(pes)
            report = ScalaGraph(config).run(
                PageRank(), graph, reference=reference
            )
            unbounded[name][pes] = report.gteps / base
    return u280, unbounded


def test_figure21_scalability(benchmark):
    u280, unbounded = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    text = format_series(
        u280,
        x_label="PEs",
        title="Figure 21: speedup over 32 PEs on the U280 (460 GB/s)",
    )
    text += "\n\n" + format_series(
        unbounded,
        x_label="PEs",
        title="Figure 21 (right): >=1024 PEs with ample off-chip bandwidth",
    )
    saturation = geometric_mean(
        [u280[n][1024] / u280[n][512] for n in DATASET_ORDER]
    )
    doubling = geometric_mean(
        [
            (unbounded[n][4096] / unbounded[n][1024]) ** 0.5
            for n in DATASET_ORDER
        ]
    )
    text += (
        f"\n\n1024 vs 512 PEs on U280: {saturation:.2f}x (paper 1.16x, "
        f"bandwidth-saturated); per-doubling beyond 1024 with ample "
        f"bandwidth: {doubling:.2f}x (paper 1.47x)."
    )
    cycle_points = None
    if CYCLE_SIM:
        edges, cycle_points = run_cycle_sim_scaling()
        cyc_speedup = cycle_points[256] / cycle_points[1024]
        text += (
            f"\n\nCycle-accurate cross-check (rmat16, {edges:,} edges, "
            f"vectorized engine): 256 PEs = {cycle_points[256]:,} "
            f"cycles, 1024 PEs = {cycle_points[1024]:,} cycles — "
            f"{cyc_speedup:.2f}x from two PE-count doublings "
            f"(sub-linear: NoC diameter and emission serialisation "
            f"grow with the mesh)."
        )
    emit("fig21_scalability", text)

    for name in DATASET_ORDER:
        curve = u280[name]
        # Monotone scaling...
        values = [curve[p] for p in U280_PES]
        assert values == sorted(values)
        # ...substantial through 512 (near-linear regime)...
        assert curve[512] > 4.0
        # ...then bandwidth-saturated at 1024 on the U280.
        assert curve[1024] / curve[512] < 1.6
        # With ample bandwidth, 4096 PEs keep scaling past the U280 wall.
        assert unbounded[name][4096] > curve[1024]
    assert 1.0 <= saturation < 1.6
    assert 1.1 < doubling < 1.9
    if cycle_points is not None:
        # More PEs must really buy cycles at paper scale, but less than
        # linearly (4x would mean the mesh costs nothing).
        assert cycle_points[1024] < cycle_points[256]
        assert cycle_points[256] / cycle_points[1024] < 4.0
