"""Figure 16: FPGA resource utilisation and power breakdown.

Left table (paper): GraphDynS-128 22.8/11.6/74.7 (%LUT/%REG/%BRAM),
ScalaGraph-128 10.9/6.4/70.8, GraphDynS-512 85.1/43.8/76.1,
ScalaGraph-512 39.2/22.9/73.2.  Right pie: HBM 65.43%, SPD 16.30%,
GU 9.99%, RU 5.25%, Dispatch 2.02%, Prefetch 1.01%.
"""

from conftest import emit

from repro.experiments import format_table
from repro.models.area import resource_utilization
from repro.models.energy import accelerator_power_watts

PAPER_ROWS = {
    ("GraphDynS", 128): (22.8, 11.6, 74.7),
    ("ScalaGraph", 128): (10.9, 6.4, 70.8),
    ("GraphDynS", 512): (85.1, 43.8, 76.1),
    ("ScalaGraph", 512): (39.2, 22.9, 73.2),
}
KIND = {"GraphDynS": "crossbar", "ScalaGraph": "mesh"}


def build():
    rows = []
    measured = {}
    for (system, pes), paper in PAPER_ROWS.items():
        util = resource_utilization(pes, KIND[system])
        measured[(system, pes)] = util
        rows.append(
            [
                f"{system}-{pes}",
                util.lut_pct,
                paper[0],
                util.reg_pct,
                paper[1],
                util.bram_pct,
                paper[2],
            ]
        )
    return rows, measured


def test_figure16_resources_and_power(benchmark):
    rows, measured = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(
        [
            "Accelerator",
            "LUT%",
            "(paper)",
            "REG%",
            "(paper)",
            "BRAM%",
            "(paper)",
        ],
        rows,
        title="Figure 16 (left): U280 resource utilisation",
        float_fmt="{:.1f}",
    )

    power = accelerator_power_watts(512, "mesh", 250.0)
    breakdown = sorted(
        power.breakdown().items(), key=lambda kv: kv[1], reverse=True
    )
    text += "\n\n" + format_table(
        ["Component", "Share"],
        [[name.upper(), f"{share:.2%}"] for name, share in breakdown],
        title=f"Figure 16 (right): power breakdown "
        f"(total {power.total_watts:.1f} W)",
    )
    emit("fig16_resources", text)

    # Model matches every published row within 5%.
    for key, paper in PAPER_ROWS.items():
        util = measured[key]
        for ours, theirs in zip(util.as_row(), paper):
            assert abs(ours - theirs) / theirs < 0.05

    # Paper's factor claims: 2.1x fewer LUTs, 1.8x fewer REGs at equal PEs.
    for pes in (128, 512):
        gd = measured[("GraphDynS", pes)]
        sg = measured[("ScalaGraph", pes)]
        assert gd.lut_pct / sg.lut_pct > 1.9
        assert gd.reg_pct / sg.reg_pct > 1.6

    # Power breakdown: HBM dominates, NoC (RU) is small.
    shares = power.breakdown()
    assert shares["hbm"] > 0.6
    assert shares["ru"] < 0.06
