"""Figure 6: overheads of naively applying a mesh NoC.

The paper motivates its co-designs by showing that a straightforward
16x16-mesh port of a graph accelerator — source-oriented mapping, no
aggregation, narrow (one-update-per-cycle) links, no degree-aware
scheduling — loses 6.9x to increased on-chip communications, and load
imbalance degrades execution a further 1.74x, running PageRank.

Decomposition here:

* *communication overhead* — slowdown of the naive mesh with balanced
  scheduling relative to an ideal communication-free machine;
* *imbalance overhead* — the busiest PE's edge load over the mean
  (power-law vertices concentrate work on few PEs);
* *total* — the full naive configuration against the ideal.
"""

import numpy as np
from conftest import emit

from repro.algorithms import PageRank, run_reference
from repro.core import ScalaGraph, ScalaGraphConfig, TimingParams
from repro.experiments import format_table, geometric_mean
from repro.graph.datasets import DATASET_ORDER, load_dataset

#: Narrow links: the naive port spends no area on wide channels.
NAIVE_TIMING = TimingParams(noc_link_updates_per_cycle=1.0)


def _naive_config(window: int) -> ScalaGraphConfig:
    return ScalaGraphConfig(
        num_tiles=1,
        pe_cols=16,
        mapping="som",
        aggregation_registers=0,
        degree_aware_window=window,
        inter_phase_pipelining=False,
        timing=NAIVE_TIMING,
    )


def run_decomposition():
    rows = []
    comm_factors, imbalance_factors = [], []
    for name in DATASET_ORDER:
        graph = load_dataset(name)
        reference = run_reference(PageRank(), graph, max_iterations=5)
        edges = reference.total_edges_traversed
        num_pes = 256
        ideal_cycles = edges / num_pes

        balanced = ScalaGraph(_naive_config(window=16)).run(
            PageRank(), graph, reference=reference
        )
        naive = ScalaGraph(_naive_config(window=1)).run(
            PageRank(), graph, reference=reference
        )

        comm = balanced.total_cycles / ideal_cycles
        # Workload imbalance: the busiest PE's per-iteration edge load
        # over the mean, under the source-oriented home placement.
        loads = np.bincount(
            graph.edge_sources() % num_pes, minlength=num_pes
        )
        imbalance = float(loads.max() / loads.mean())
        comm_factors.append(comm)
        imbalance_factors.append(imbalance)
        rows.append([name, comm, imbalance, naive.total_cycles / ideal_cycles])
    rows.append(
        [
            "gmean",
            geometric_mean(comm_factors),
            geometric_mean(imbalance_factors),
            geometric_mean([r[3] for r in rows]),
        ]
    )
    return rows


def test_figure6_mesh_overheads(benchmark):
    rows = benchmark.pedantic(run_decomposition, rounds=1, iterations=1)
    text = format_table(
        [
            "Graph",
            "comm overhead (paper ~6.9x)",
            "imbalance (paper ~1.74x)",
            "total naive vs ideal",
        ],
        rows,
        title="Figure 6: naive 16x16 mesh overheads on PageRank",
    )
    emit("fig06_mesh_overheads", text)

    gmean_row = rows[-1]
    # Shape: communications dominate (several x), imbalance adds a
    # smaller but real factor — matching the paper's 6.9x vs 1.74x split.
    assert gmean_row[1] > 2.5
    assert gmean_row[2] > 1.2
    assert gmean_row[1] > gmean_row[2]
    # The full naive port is far from the ideal machine.
    assert gmean_row[3] > 3.0
