"""Reference vs vectorized mesh-NoC engine speed (PR 3 perf artifact).

Drains an identical uniform-random workload through both cycle-level
mesh engines at 4x4 / 8x8 / 16x16 and reports cycles/sec for each,
cross-checking that the engines agree packet-for-packet before trusting
the timing.  The machine-readable summary is written twice: to
``benchmarks/results/bench_noc_engine_speed.json`` like every other
bench, and to the repo-root ``BENCH_PR3.json`` consumed by the perf
trajectory and the CI perf-smoke job.

Knobs (environment variables):

* ``REPRO_NOC_BENCH_SIZES`` — comma-separated ``RxC`` mesh sizes
  (default ``4x4,8x8,16x16``).
* ``REPRO_NOC_BENCH_PACKETS_PER_NODE`` — offered load per node
  (default 64; higher loads grow the reference's per-cycle cost while
  the vectorized engine stays nearly flat).
* ``REPRO_NOC_BENCH_REPEATS`` — timing repetitions per engine; the
  fastest run is reported (default 3).

No external benchmarking dependency: timing is a plain
``time.perf_counter`` pair around ``run_until_drained``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import emit, emit_json

from repro.noc import (
    FastMeshNetwork,
    MeshNetwork,
    MeshTopology,
    Packet,
)
from repro.noc.patterns import generate

BENCH_PR3 = Path(__file__).resolve().parent.parent / "BENCH_PR3.json"

_ENGINES = {"reference": MeshNetwork, "vectorized": FastMeshNetwork}


def _sizes() -> list[tuple[int, int]]:
    raw = os.environ.get("REPRO_NOC_BENCH_SIZES", "4x4,8x8,16x16")
    sizes = []
    for token in raw.split(","):
        rows, _, cols = token.strip().partition("x")
        sizes.append((int(rows), int(cols)))
    return sizes


def _drain(engine: str, topology, src, dst):
    """Build a fresh network, schedule the workload, time the drain."""
    network = _ENGINES[engine](topology)
    for i, (s, d) in enumerate(zip(src.tolist(), dst.tolist())):
        network.schedule(Packet(src=s, dst=d, vertex=i, injected_cycle=0))
    start = time.perf_counter()
    stats = network.run_until_drained(max_cycles=10_000_000)
    elapsed = time.perf_counter() - start
    order = [
        (p.vertex, p.injected_cycle, p.delivered_cycle)
        for p in network.delivered
    ]
    key = (
        stats.cycles,
        stats.injected,
        stats.delivered,
        stats.total_hops,
        stats.total_latency,
        stats.max_occupancy,
        stats.stalled_moves,
        tuple(order),
    )
    return stats, elapsed, key


def test_noc_engine_speed():
    packets_per_node = int(
        os.environ.get("REPRO_NOC_BENCH_PACKETS_PER_NODE", "64")
    )
    repeats = int(os.environ.get("REPRO_NOC_BENCH_REPEATS", "3"))
    meshes = []
    lines = [
        "mesh     cycles  reference cyc/s  vectorized cyc/s  speedup",
        "-" * 60,
    ]
    for rows, cols in _sizes():
        topology = MeshTopology(rows, cols)
        src, dst = generate(
            "uniform", topology, topology.num_nodes * packets_per_node,
            seed=7,
        )
        results = {}
        keys = {}
        for engine in _ENGINES:
            best = None
            for _ in range(repeats):
                stats, elapsed, key = _drain(engine, topology, src, dst)
                keys[engine] = key
                if best is None or elapsed < best:
                    best = elapsed
            results[engine] = {
                "cycles": stats.cycles,
                "seconds": best,
                "cycles_per_second": stats.cycles / best if best else 0.0,
            }
        # Equivalence gate before trusting the timing: same stats, same
        # delivery order, packet for packet.
        assert keys["reference"] == keys["vectorized"], (
            f"{rows}x{cols}: engines diverged"
        )
        ref = results["reference"]["cycles_per_second"]
        vec = results["vectorized"]["cycles_per_second"]
        speedup = vec / ref if ref else 0.0
        # The vectorized engine must never lose to the reference on the
        # benchmark meshes (the CI perf-smoke gate).
        assert speedup >= 1.0, (
            f"{rows}x{cols}: vectorized slower than reference "
            f"({speedup:.2f}x)"
        )
        meshes.append(
            {
                "mesh": f"{rows}x{cols}",
                "nodes": topology.num_nodes,
                "packets": topology.num_nodes * packets_per_node,
                "engines": results,
                "speedup": speedup,
            }
        )
        lines.append(
            f"{rows}x{cols:<6} {results['reference']['cycles']:>6} "
            f"{ref:>15,.0f} {vec:>17,.0f} {speedup:>8.1f}x"
        )

    payload = {
        "schema": "repro-bench-noc-engine/1",
        "pr": 3,
        "pattern": "uniform",
        "seed": 7,
        "packets_per_node": packets_per_node,
        "repeats": repeats,
        "meshes": meshes,
    }
    emit("bench_noc_engine_speed", "\n".join(lines))
    emit_json("bench_noc_engine_speed", payload)
    BENCH_PR3.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
