"""Figure 17: row-oriented mapping vs source-/destination-oriented.

Paper: running PageRank (all edges active), ROM cuts NoC communications
by 61.7% vs SOM (average packet latency 15.6 -> 5.9 cycles) and runs
2.6x faster; vs DOM it cuts communications by 28.6-67.0%, with
higher-degree graphs benefiting less.  DOM's results come from a
simulator with unbounded on-chip memory because its replicas exceed the
FPGA's BRAM (enforce_capacity=False here).
"""

from conftest import emit

from repro.algorithms import PageRank, run_reference
from repro.core import ScalaGraph, ScalaGraphConfig
from repro.experiments import format_table, geometric_mean
from repro.graph.datasets import DATASET_ORDER, load_dataset

MAX_ITERS = 5


def run_study():
    import numpy as np

    from repro.algorithms.reference import gather_frontier_edges
    from repro.mapping import make_mapping
    from repro.noc.topology import MeshTopology

    topo = MeshTopology(16, 32)  # two 16x16 tiles side by side
    rows = []
    comm_reduction_vs_som = []
    speedup_vs_som = []
    comm_reduction_vs_dom = []
    for name in DATASET_ORDER:
        graph = load_dataset(name)
        reference = run_reference(PageRank(), graph, max_iterations=MAX_ITERS)

        # Communication volume: the mapping's routing work per se
        # (aggregation studied separately in Figure 18).
        src, dst, _ = gather_frontier_edges(
            graph, np.arange(graph.num_vertices)
        )
        updated = np.unique(dst)
        hops = {}
        for mapping_name in ("som", "dom", "rom"):
            mapping = make_mapping(mapping_name, topo)
            hops[mapping_name] = reference.num_iterations * (
                mapping.scatter_traffic(src, dst).total_hops
                + mapping.apply_traffic(updated).total_hops
            )

        # Performance: full timing-model runs.
        reports = {}
        for mapping_name in ("som", "rom"):
            accel = ScalaGraph(
                ScalaGraphConfig(mapping=mapping_name), enforce_capacity=False
            )
            reports[mapping_name] = accel.run(
                PageRank(), graph, reference=reference
            )

        reduction_som = 1 - hops["rom"] / hops["som"]
        reduction_dom = 1 - hops["rom"] / max(hops["dom"], 1)
        speedup = (
            reports["som"].total_cycles / reports["rom"].total_cycles
        )
        comm_reduction_vs_som.append(reduction_som)
        speedup_vs_som.append(speedup)
        comm_reduction_vs_dom.append(reduction_dom)
        rows.append(
            [
                name,
                hops["som"],
                hops["dom"],
                hops["rom"],
                f"{reduction_som:.1%}",
                f"{reduction_dom:.1%}",
                speedup,
            ]
        )
    return rows, comm_reduction_vs_som, speedup_vs_som, comm_reduction_vs_dom


def test_figure17_row_oriented_mapping(benchmark):
    rows, red_som, speedups, red_dom = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )
    mean_reduction = sum(red_som) / len(red_som)
    mean_speedup = geometric_mean(speedups)
    text = format_table(
        [
            "Graph",
            "SOM hops",
            "DOM hops",
            "ROM hops",
            "ROM vs SOM",
            "ROM vs DOM",
            "speedup vs SOM",
        ],
        rows,
        title="Figure 17: NoC communications and performance by mapping "
        "(PageRank)",
    )
    text += (
        f"\n\nROM cuts communications by {mean_reduction:.1%} vs SOM "
        f"(paper 61.7%) and runs {mean_speedup:.2f}x faster (paper 2.6x)."
    )
    emit("fig17_mapping", text)

    # Paper claims, as bands.
    assert 0.45 < mean_reduction < 0.75
    assert mean_speedup > 1.3
    # ROM beats DOM's communications on every graph (28.6-67.0% less).
    for reduction in red_dom:
        assert reduction > 0.15
