"""Tables I and III: dataset statistics.

Regenerates the dataset tables with both the paper's original sizes and
the parameter-matched stand-ins this reproduction instantiates.
"""

from conftest import emit

from repro.experiments import format_table
from repro.graph.datasets import DATASETS, load_dataset


def test_table1_and_3_dataset_statistics(benchmark):
    stats = {}

    def build_all():
        out = {}
        for key in DATASETS:
            graph = load_dataset(key)
            out[key] = graph
        return out

    graphs = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = []
    for key, spec in DATASETS.items():
        graph = graphs[key]
        rows.append(
            [
                key,
                spec.full_name,
                f"{spec.paper_vertices / 1e6:.2f}M",
                f"{spec.paper_edges / 1e6:.2f}M",
                graph.num_vertices,
                graph.num_edges,
                float(graph.average_degree),
                graph.max_degree(),
                spec.description,
            ]
        )
        stats[key] = graph
    text = format_table(
        [
            "Graph",
            "Name",
            "|V| paper",
            "|E| paper",
            "|V| stand-in",
            "|E| stand-in",
            "avg deg",
            "max deg",
            "Description",
        ],
        rows,
        title="Tables I / III: datasets (paper originals vs RMAT stand-ins)",
    )
    emit("tab01_datasets", text)

    # Invariant the substitution must preserve: average degree matches.
    for key, spec in DATASETS.items():
        paper_degree = spec.paper_edges / spec.paper_vertices
        assert stats[key].average_degree == spec.edge_factor
        assert abs(spec.edge_factor - paper_degree) / paper_degree < 0.35
