"""Figure 4: the crossbar's effect on frequency and performance.

The paper prototypes AccuGraph and GraphDynS (with a 4 MB scratchpad) on
the U280, runs one PageRank iteration on the Table I graphs, and scales
4 -> 512 PEs.  With the crossbar, frequency collapses beyond 64 PEs and
synthesis fails at 256+; without it, ~300 MHz holds and scaling is
near-linear.
"""

import pytest
from conftest import emit

from repro.algorithms import PageRank, run_reference
from repro.baselines import AccuGraph, GraphDynS
from repro.errors import SynthesisError
from repro.experiments import format_series, geometric_mean
from repro.graph.datasets import load_dataset
from repro.models.frequency import max_frequency_mhz, synthesizes

PE_COUNTS = (4, 8, 16, 32, 64, 128, 256, 512)
GRAPHS = ("FL", "PK", "LJ", "OR")  # Table I
BUILDERS = {
    "AccuGraph": AccuGraph.with_pes,
    "GraphDynS": GraphDynS.with_pes,
}


def run_sweep():
    """Normalised single-iteration PageRank performance per PE count."""
    references = {}
    for name in GRAPHS:
        graph = load_dataset(name)
        references[name] = (graph, run_reference(PageRank(), graph, max_iterations=1))

    frequency = {}
    performance = {}
    for accel, builder in BUILDERS.items():
        for crossbar in (True, False):
            label = f"{accel}" + ("" if crossbar else " w/o crossbar")
            freq_curve, perf_curve = {}, {}
            for pes in PE_COUNTS:
                if crossbar and not synthesizes("crossbar", pes):
                    continue  # route failure: the missing bars
                model = builder(pes, with_crossbar=crossbar)
                freq_curve[pes] = model.config.clock_mhz
                gteps = geometric_mean(
                    [
                        model.run(PageRank(), g, reference=r).gteps
                        for g, r in references.values()
                    ]
                )
                perf_curve[pes] = gteps
            baseline = perf_curve[4]
            frequency[label] = freq_curve
            performance[label] = {
                k: v / baseline for k, v in perf_curve.items()
            }
    return frequency, performance


def test_figure4_crossbar_effect(benchmark):
    frequency, performance = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    text = format_series(
        frequency,
        x_label="PEs",
        title="Figure 4(a): maximal frequency (MHz); missing = route failure",
        float_fmt="{:.0f}",
    )
    text += "\n\n" + format_series(
        performance,
        x_label="PEs",
        title="Figure 4(b): PageRank performance normalised to 4 PEs",
    )
    emit("fig04_crossbar_effect", text)

    # Shape assertions mirroring the paper's claims.
    for accel in BUILDERS:
        with_xbar = frequency[accel]
        without = frequency[f"{accel} w/o crossbar"]
        # (1) Frequency collapses past 64 PEs with the crossbar...
        assert with_xbar[128] < with_xbar[64] < with_xbar[32]
        assert with_xbar[128] <= 150
        # ...(2) while the crossbar-free variant holds 300 MHz.
        assert all(f == 300.0 for f in without.values())
        # (3) Route failure beyond 128 PEs: no crossbar entries exist.
        assert 256 not in with_xbar and 512 not in with_xbar
        with pytest.raises(SynthesisError):
            max_frequency_mhz("crossbar", 256)
        # (4) 4 -> 64 PEs scales well (paper: 10-12x of the ideal 16x)...
        perf = performance[accel]
        assert perf[64] > 7.0
        # ...but 64 -> 128 stalls or regresses (frequency collapse).
        assert perf[128] < 1.5 * perf[64]
        # (5) Crossbar-free scaling stays near-linear through 512 PEs.
        assert performance[f"{accel} w/o crossbar"][512] > 50.0
