"""Figure 14: throughput (GTEPS) of ScalaGraph vs Gunrock and GraphDynS.

Paper headlines (geometric means over 4 algorithms x 5 graphs):

* ScalaGraph-512 / Gunrock       ~ 3.2x
* ScalaGraph-512 / GraphDynS-512 ~ 2.2x
* ScalaGraph-512 / GraphDynS-128 ~ 4.6x
* ScalaGraph-128 / GraphDynS-128 ~ 1.2x
* BFS shows the smallest speedups, PageRank the highest (Section V-B).
"""

from conftest import emit, emit_json

from repro.experiments import format_table
from repro.experiments.runner import ALGORITHM_ORDER, GRAPH_ORDER, SYSTEM_ORDER


def test_figure14_throughput(benchmark, figure14_matrix):
    matrix = figure14_matrix

    def summarize():
        rows = []
        for graph in GRAPH_ORDER:
            for algorithm in ALGORITHM_ORDER:
                rows.append(
                    [graph, algorithm]
                    + [
                        matrix.gteps(graph, algorithm, system)
                        for system in SYSTEM_ORDER
                    ]
                )
        return rows

    rows = benchmark.pedantic(summarize, rounds=1, iterations=1)

    text = format_table(
        ["Graph", "Algorithm"] + list(SYSTEM_ORDER),
        rows,
        title="Figure 14: throughput (GTEPS)",
    )
    ratios = [
        ("ScalaGraph-512", "Gunrock", 3.2),
        ("ScalaGraph-512", "GraphDynS-512", 2.2),
        ("ScalaGraph-512", "GraphDynS-128", 4.6),
        ("ScalaGraph-128", "GraphDynS-128", 1.2),
    ]
    lines = ["", "Speedups (geometric mean; paper value in parentheses):"]
    for num, den, paper in ratios:
        lines.append(
            f"  {num} / {den}: {matrix.speedup(num, den):.2f}x ({paper}x)"
        )
    by_algo = matrix.speedup_by_algorithm("ScalaGraph-512", "Gunrock")
    lines.append(
        "  per-algorithm vs Gunrock: "
        + ", ".join(f"{a}={by_algo[a]:.2f}x" for a in ALGORITHM_ORDER)
    )
    emit("fig14_throughput", text + "\n" + "\n".join(lines))
    emit_json(
        "fig14_throughput",
        {
            "schema": "repro-fig14/1",
            "systems": list(SYSTEM_ORDER),
            "cells": [
                {
                    "graph": graph,
                    "algorithm": algorithm,
                    "gteps": {
                        system: matrix.gteps(graph, algorithm, system)
                        for system in SYSTEM_ORDER
                    },
                }
                for graph, algorithm in matrix.cells()
            ],
            "speedups": {
                f"{num}/{den}": matrix.speedup(num, den)
                for num, den, _ in ratios
            },
            "speedup_by_algorithm_vs_gunrock": by_algo,
        },
    )

    # --- Shape assertions -------------------------------------------
    # Headline orderings hold in every cell.
    for graph, algorithm in matrix.cells():
        sg512 = matrix.gteps(graph, algorithm, "ScalaGraph-512")
        assert sg512 > matrix.gteps(graph, algorithm, "GraphDynS-512")
        assert sg512 > matrix.gteps(graph, algorithm, "GraphDynS-128")
        assert sg512 > matrix.gteps(graph, algorithm, "Gunrock")

    # Mean speedups land near the paper's factors.
    assert 2.0 < matrix.speedup("ScalaGraph-512", "Gunrock") < 5.0
    assert 1.5 < matrix.speedup("ScalaGraph-512", "GraphDynS-512") < 3.2
    assert 3.0 < matrix.speedup("ScalaGraph-512", "GraphDynS-128") < 6.5
    assert 1.0 < matrix.speedup("ScalaGraph-128", "GraphDynS-128") < 2.5

    # BFS gains least, PageRank most (Section V-B).
    assert by_algo["bfs"] == min(by_algo.values())
    assert by_algo["pagerank"] >= 0.95 * max(by_algo.values())
