"""Figure 8: frequency of different NoCs vs the number of PEs.

Compares the crossbar (O(N^2)), Benes (O(N log N)), a multi-stage
crossbar (several PEs multiplexed per port), and the 2D mesh (O(N)).
Only the mesh supports 1,024+ PEs with negligible frequency loss.
"""

from conftest import emit

from repro.experiments import format_series
from repro.models.frequency import (
    Interconnect,
    max_frequency_mhz,
    synthesizes,
)
from repro.noc.benes import BenesNetwork

PE_COUNTS = (4, 16, 32, 64, 128, 256, 512, 1024)


def build_curves():
    curves = {}
    for kind in Interconnect:
        curve = {}
        for pes in PE_COUNTS:
            if synthesizes(kind, pes):
                curve[pes] = max_frequency_mhz(kind, pes)
        curves[kind.value] = curve
    return curves


def test_figure8_noc_frequency(benchmark):
    curves = benchmark.pedantic(build_curves, rounds=1, iterations=1)
    text = format_series(
        curves,
        x_label="PEs",
        title="Figure 8: max frequency (MHz) by interconnect; missing = "
        "compile failure",
        float_fmt="{:.0f}",
    )
    # Complexity context: switch counts at 64 ports.
    benes = BenesNetwork(64)
    text += (
        f"\n\nComplexity at 64 ports: crossbar 64^2 = 4096 crosspoints, "
        f"Benes {benes.num_switches} 2x2 switches ({benes.depth} stages), "
        f"mesh 64 five-port routers."
    )
    emit("fig08_noc_frequency", text)

    # Paper claims encoded as assertions:
    # (1) crossbar dies first (>=256 fails), Benes/multistage at 512.
    assert 256 not in curves["crossbar"]
    assert 512 not in curves["benes"]
    assert 512 not in curves["multistage_crossbar"]
    # (2) mesh reaches 1,024 PEs above 250 MHz.
    assert curves["mesh"][1024] > 250
    # (3) at 128 PEs the ordering follows complexity.
    assert (
        curves["mesh"][128]
        > curves["multistage_crossbar"][128]
        > curves["crossbar"][128]
    )
    assert curves["mesh"][128] > curves["benes"][128] > curves["crossbar"][128]
    # (4) mesh loses <20% from 4 to 1,024 PEs ("negligible loss").
    assert curves["mesh"][1024] / curves["mesh"][4] > 0.8
