"""NoC characterisation (extension): saturation throughput by pattern.

Standard interconnect methodology applied to the cycle-level simulators:
accepted throughput under saturating load for canonical traffic
patterns, on the mesh (ScalaGraph's choice) and for hotspot traffic —
the pattern a high-in-degree graph vertex induces, which is exactly what
the aggregation pipeline is built to defuse (Section IV-B).
"""

from conftest import emit

from repro.experiments import format_table
from repro.noc.patterns import PATTERNS, generate, saturation_throughput
from repro.noc.topology import MeshTopology

MESH = MeshTopology(8, 8)
PACKETS = 600


def characterize():
    rows = []
    throughputs = {}
    for pattern in sorted(PATTERNS):
        thr = saturation_throughput(MESH, pattern, packets=PACKETS, seed=3)
        throughputs[pattern] = thr
        src, dst = generate(pattern, MESH, PACKETS, seed=3)
        from repro.noc.traffic import mesh_link_loads

        report = mesh_link_loads(MESH, src, dst)
        rows.append(
            [
                pattern,
                thr,
                float(report.average_hops),
                report.max_link_load,
            ]
        )
    return rows, throughputs


def test_noc_characterization(benchmark):
    rows, throughputs = benchmark.pedantic(characterize, rounds=1, iterations=1)
    text = format_table(
        ["Pattern", "thr (pkt/node/cyc)", "avg hops", "max link load"],
        rows,
        title="8x8 mesh saturation throughput by traffic pattern",
        float_fmt="{:.3f}",
    )
    text += (
        "\n\nHotspot traffic (one overloaded destination — a hub vertex) "
        "collapses throughput;\nthe aggregation pipeline exists to "
        "coalesce exactly this pattern before it reaches the links."
    )
    emit("noc_characterization", text)

    # Uniform beats the adversarial permutations; hotspot is worst.
    assert throughputs["uniform"] > throughputs["transpose"]
    assert throughputs["uniform"] > throughputs["bit_reversal"]
    assert throughputs["hotspot"] == min(throughputs.values())
    # Everything drains (positive throughput).
    assert all(t > 0 for t in throughputs.values())
