"""Model validation: analytic timing model vs cycle-accurate simulation.

Not a paper figure — this bench quantifies the fidelity of the
cycle-approximate model that generates Figures 14-21, by replaying the
same workloads through the cycle-by-cycle tile simulator
(:class:`repro.core.CycleAccurateScalaGraph`) on small graphs and
comparing Scatter-phase cycle counts (the analytic model's fixed
per-phase overhead excluded, since the cycle sim models a drained
steady state).

Two regimes are validated:

* the original small-graph sweep on a 4x4 tile (where the analytic
  model was calibrated — ratios near 1.0), and
* one paper-scale point: a 32x32 mesh (1024 PEs) on a million-edge
  R-MAT graph through the vectorized cycle engine.  At this scale the
  cycle simulator exposes the aggregation-emission serialisation tail
  that the analytic Scatter model does not carry, so the deviation is
  large (~5x) — the artifact records it as a model-fidelity datum, not
  a target.  Skip with ``REPRO_VALIDATION_PAPER_SCALE=`` (empty) when
  the bench host cannot afford the ~20 s run.
"""

import os

from conftest import emit, emit_json

from repro.algorithms import BFS, ConnectedComponents, PageRank, run_reference
from repro.core import (
    CycleAccurateScalaGraph,
    Profiler,
    ScalaGraph,
    ScalaGraphConfig,
)
from repro.experiments import format_table, geometric_mean
from repro.graph.generators import rmat_graph

CONFIG = ScalaGraphConfig(num_tiles=1, pe_rows=4, pe_cols=4)
WORKLOADS = [
    ("rmat7-pagerank", rmat_graph(7, edge_factor=8, seed=3), PageRank(max_iters=3)),
    ("rmat8-pagerank", rmat_graph(8, edge_factor=6, seed=4), PageRank(max_iters=3)),
    ("rmat7-bfs", rmat_graph(7, edge_factor=8, seed=5), BFS()),
    ("rmat7-cc", rmat_graph(7, edge_factor=8, seed=6), ConnectedComponents()),
]

PAPER_SCALE = os.environ.get("REPRO_VALIDATION_PAPER_SCALE", "1").strip()


def run_paper_scale_validation():
    """32x32 mesh x million-edge R-MAT through the vectorized cycle
    engine, with the same scatter-cycle comparison as the 4x4 sweep.
    The graph is built here, not at import, so skipping the point skips
    its cost too."""
    graph = rmat_graph(16, edge_factor=16, seed=1)
    config = ScalaGraphConfig(
        num_tiles=1,
        pe_rows=32,
        pe_cols=32,
        aggregation_registers=64,
        mapping="rom",
        cycle_engine="vectorized",
    )
    program = PageRank(max_iters=2)
    reference = run_reference(program, graph)
    cycle = CycleAccurateScalaGraph(config).run(program, graph)
    analytic = ScalaGraph(config).run(program, graph, reference=reference)
    overhead = config.timing.phase_overhead_cycles
    measured = sum(cycle.stats.scatter_cycles)
    modelled = sum(
        max(it.scatter_cycles - overhead, 1.0)
        for it in analytic.iterations
    )
    return {
        "label": "rmat16-pagerank-32x32",
        "mesh": "32x32",
        "edges": int(graph.num_edges),
        "vertices": int(graph.num_vertices),
        "total_cycles": int(cycle.stats.total_cycles),
        "cycle_accurate_scatter_cycles": int(measured),
        "analytic_scatter_cycles": float(modelled),
        "ratio": measured / modelled,
    }


def run_validation():
    rows = []
    ratios = []
    profile = Profiler()
    for label, graph, program in WORKLOADS:
        reference = run_reference(program, graph)
        cycle = CycleAccurateScalaGraph(CONFIG, profiler=profile).run(
            program, graph
        )
        analytic = ScalaGraph(CONFIG, profiler=profile).run(
            program, graph, reference=reference
        )
        overhead = CONFIG.timing.phase_overhead_cycles
        measured = sum(cycle.stats.scatter_cycles)
        modelled = sum(
            max(it.scatter_cycles - overhead, 1.0)
            for it in analytic.iterations
        )
        ratio = measured / modelled
        ratios.append(ratio)
        rows.append(
            [
                label,
                graph.num_edges,
                measured,
                modelled,
                ratio,
            ]
        )
    return rows, ratios, profile


def test_validation_cycle_accurate_vs_analytic(benchmark):
    rows, ratios, profile = benchmark.pedantic(
        run_validation, rounds=1, iterations=1
    )
    text = format_table(
        [
            "Workload",
            "edges",
            "cycle-accurate scatter cyc",
            "analytic (minus overhead)",
            "ratio",
        ],
        rows,
        title="Timing-model validation on a 4x4 tile",
    )
    text += (
        f"\n\nGeomean cycle-accurate / analytic ratio: "
        f"{geometric_mean(ratios):.2f} (1.0 = perfect)."
    )
    paper_scale = None
    if PAPER_SCALE:
        paper_scale = run_paper_scale_validation()
        text += (
            f"\n\nPaper-scale point ({paper_scale['label']}, "
            f"{paper_scale['edges']:,} edges): cycle-accurate "
            f"{paper_scale['cycle_accurate_scatter_cycles']:,} vs "
            f"analytic {paper_scale['analytic_scatter_cycles']:,.0f} "
            f"scatter cycles — deviation {paper_scale['ratio']:.2f}x "
            f"(emission-tail serialisation the analytic model omits)."
        )
    emit("validation_cycle_sim", text)
    emit_json(
        "validation_cycle_sim",
        {
            "schema": "repro-validation/2",
            "workloads": [
                {
                    "label": label,
                    "edges": edges,
                    "cycle_accurate_scatter_cycles": measured,
                    "analytic_scatter_cycles": modelled,
                    "ratio": ratio,
                }
                for label, edges, measured, modelled, ratio in rows
            ],
            "geomean_ratio": geometric_mean(ratios),
            "paper_scale": paper_scale,
            "profile": profile.to_dict(),
        },
    )

    for ratio in ratios:
        assert 0.4 < ratio < 2.5
    assert 0.6 < geometric_mean(ratios) < 1.7
    if paper_scale is not None:
        # Sanity band only: the deviation is a recorded datum.  The
        # cycle count must be real (the run completed) and the ratio
        # finite and >1 (the analytic model is optimistic at scale).
        assert paper_scale["edges"] >= 1_000_000
        assert 1.0 < paper_scale["ratio"] < 20.0
