"""Model validation: analytic timing model vs cycle-accurate simulation.

Not a paper figure — this bench quantifies the fidelity of the
cycle-approximate model that generates Figures 14-21, by replaying the
same workloads through the cycle-by-cycle tile simulator
(:class:`repro.core.CycleAccurateScalaGraph`) on small graphs and
comparing Scatter-phase cycle counts (the analytic model's fixed
per-phase overhead excluded, since the cycle sim models a drained
steady state).
"""

from conftest import emit, emit_json

from repro.algorithms import BFS, ConnectedComponents, PageRank, run_reference
from repro.core import (
    CycleAccurateScalaGraph,
    Profiler,
    ScalaGraph,
    ScalaGraphConfig,
)
from repro.experiments import format_table, geometric_mean
from repro.graph.generators import rmat_graph

CONFIG = ScalaGraphConfig(num_tiles=1, pe_rows=4, pe_cols=4)
WORKLOADS = [
    ("rmat7-pagerank", rmat_graph(7, edge_factor=8, seed=3), PageRank(max_iters=3)),
    ("rmat8-pagerank", rmat_graph(8, edge_factor=6, seed=4), PageRank(max_iters=3)),
    ("rmat7-bfs", rmat_graph(7, edge_factor=8, seed=5), BFS()),
    ("rmat7-cc", rmat_graph(7, edge_factor=8, seed=6), ConnectedComponents()),
]


def run_validation():
    rows = []
    ratios = []
    profile = Profiler()
    for label, graph, program in WORKLOADS:
        reference = run_reference(program, graph)
        cycle = CycleAccurateScalaGraph(CONFIG, profiler=profile).run(
            program, graph
        )
        analytic = ScalaGraph(CONFIG, profiler=profile).run(
            program, graph, reference=reference
        )
        overhead = CONFIG.timing.phase_overhead_cycles
        measured = sum(cycle.stats.scatter_cycles)
        modelled = sum(
            max(it.scatter_cycles - overhead, 1.0)
            for it in analytic.iterations
        )
        ratio = measured / modelled
        ratios.append(ratio)
        rows.append(
            [
                label,
                graph.num_edges,
                measured,
                modelled,
                ratio,
            ]
        )
    return rows, ratios, profile


def test_validation_cycle_accurate_vs_analytic(benchmark):
    rows, ratios, profile = benchmark.pedantic(
        run_validation, rounds=1, iterations=1
    )
    text = format_table(
        [
            "Workload",
            "edges",
            "cycle-accurate scatter cyc",
            "analytic (minus overhead)",
            "ratio",
        ],
        rows,
        title="Timing-model validation on a 4x4 tile",
    )
    text += (
        f"\n\nGeomean cycle-accurate / analytic ratio: "
        f"{geometric_mean(ratios):.2f} (1.0 = perfect)."
    )
    emit("validation_cycle_sim", text)
    emit_json(
        "validation_cycle_sim",
        {
            "schema": "repro-validation/1",
            "workloads": [
                {
                    "label": label,
                    "edges": edges,
                    "cycle_accurate_scatter_cycles": measured,
                    "analytic_scatter_cycles": modelled,
                    "ratio": ratio,
                }
                for label, edges, measured, modelled, ratio in rows
            ],
            "geomean_ratio": geometric_mean(ratios),
            "profile": profile.to_dict(),
        },
    )

    for ratio in ratios:
        assert 0.4 < ratio < 2.5
    assert 0.6 < geometric_mean(ratios) < 1.7
