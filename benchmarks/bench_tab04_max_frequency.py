"""Table IV: maximal frequency of ScalaGraph vs GraphDynS, 32-1024 PEs.

Paper row for ScalaGraph (mesh): 304/293/292/285/274/258 MHz; GraphDynS
(crossbar): 270/227/112 then route failure ('-').
"""

from conftest import emit

from repro.experiments import format_table
from repro.models.frequency import max_frequency_mhz, synthesizes

PE_COUNTS = (32, 64, 128, 256, 512, 1024)
PAPER = {
    "ScalaGraph": {32: 304, 64: 293, 128: 292, 256: 285, 512: 274, 1024: 258},
    "GraphDynS": {32: 270, 64: 227, 128: 112},
}
KIND = {"ScalaGraph": "mesh", "GraphDynS": "crossbar"}


def build_rows():
    rows = []
    measured = {}
    for system, kind in KIND.items():
        row = [system]
        for pes in PE_COUNTS:
            if synthesizes(kind, pes):
                freq = max_frequency_mhz(kind, pes)
                measured[(system, pes)] = freq
                row.append(f"{freq:.0f}")
            else:
                row.append("-")
        rows.append(row)
    return rows, measured


def test_table4_max_frequency(benchmark):
    rows, measured = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    text = format_table(
        ["System"] + [str(p) for p in PE_COUNTS],
        rows,
        title="Table IV: maximal frequency (MHz); '-' = synthesis failure",
    )
    emit("tab04_max_frequency", text)

    for system, points in PAPER.items():
        for pes, expected in points.items():
            assert abs(measured[(system, pes)] - expected) / expected < 0.02
    # The '-' entries.
    for pes in (256, 512, 1024):
        assert ("GraphDynS", pes) not in measured
