"""Ablations beyond the paper: the design choices DESIGN.md calls out.

Three studies the paper motivates but does not quantify:

1. **NoC choice (mesh vs torus)** — Section III-A leaves "the most
   appropriate NoC" as future work.  The torus roughly halves column hop
   distances; does it buy end-to-end performance once the row-oriented
   mapping has already made the mesh a non-bottleneck?
2. **Link width** — how wide must mesh links be before the NoC stops
   limiting the row-oriented design?
3. **SOM's aggregation handicap** — how much of ROM's win comes from
   better aggregation opportunity (same-column funnelling) vs shorter
   routes?
"""

from conftest import emit

from repro.algorithms import PageRank, run_reference
from repro.core import ScalaGraph, ScalaGraphConfig, TimingParams
from repro.experiments import format_table, geometric_mean
from repro.graph.datasets import load_dataset

GRAPHS = ("PK", "OR", "TW")
MAX_ITERS = 5


def run_ablations():
    torus_rows, width_rows, som_rows = [], [], []
    for name in GRAPHS:
        graph = load_dataset(name)
        reference = run_reference(PageRank(), graph, max_iterations=MAX_ITERS)

        def run(**kwargs):
            timing_kwargs = kwargs.pop("timing", {})
            cfg = ScalaGraphConfig(
                timing=TimingParams(**timing_kwargs), **kwargs
            )
            return ScalaGraph(cfg).run(PageRank(), graph, reference=reference)

        # 1. Mesh vs torus under ROM.
        mesh = run(mapping="rom")
        torus = run(mapping="rom-torus")
        torus_rows.append(
            [
                name,
                mesh.gteps,
                torus.gteps,
                f"{1 - torus.total_noc_hops / mesh.total_noc_hops:.1%}",
                torus.gteps / mesh.gteps,
            ]
        )

        # 2. Link-width sweep.
        widths = {}
        for width in (1, 2, 4, 8, 16):
            widths[width] = run(
                timing={"noc_link_updates_per_cycle": float(width)}
            ).gteps
        width_rows.append([name] + [widths[w] for w in (1, 2, 4, 8, 16)])

        # 3. ROM vs SOM with aggregation disabled for both: the routing
        # geometry's contribution alone.
        rom_noagg = run(mapping="rom", aggregation_registers=0)
        som_noagg = run(mapping="som", aggregation_registers=0)
        rom_agg = run(mapping="rom")
        som_agg = run(mapping="som")
        som_rows.append(
            [
                name,
                som_noagg.total_cycles / rom_noagg.total_cycles,
                som_agg.total_cycles / rom_agg.total_cycles,
            ]
        )
    return torus_rows, width_rows, som_rows


def test_ablation_design_choices(benchmark):
    torus_rows, width_rows, som_rows = benchmark.pedantic(
        run_ablations, rounds=1, iterations=1
    )

    text = format_table(
        ["Graph", "mesh GTEPS", "torus GTEPS", "hop cut", "speedup"],
        torus_rows,
        title="Ablation 1: mesh vs torus under the row-oriented mapping",
    )
    text += (
        "\n-> The torus cuts hops but buys almost nothing end-to-end: the "
        "row-oriented mapping already\n   keeps the mesh off the critical "
        "path, validating the paper's low-cost NoC choice."
    )
    text += "\n\n" + format_table(
        ["Graph", "w=1", "w=2", "w=4", "w=8", "w=16"],
        width_rows,
        title="Ablation 2: GTEPS vs mesh link width (updates/cycle)",
    )
    text += "\n\n" + format_table(
        ["Graph", "ROM/SOM speedup (no aggregation)", "ROM/SOM (with)"],
        som_rows,
        title="Ablation 3: how much of ROM's win is routing geometry",
    )
    text += (
        "\n-> ROM's advantage mostly materialises *together with* the "
        "aggregation pipeline: without it both\n   mappings drown in "
        "un-coalesced traffic. The two mechanisms are a genuine co-design "
        "(Section IV)."
    )
    emit("ablation_design", text)

    for row in torus_rows:
        # Torus cuts hops...
        assert float(row[3].rstrip("%")) > 10
        # ...but gains under 10% end-to-end (mesh already sufficient).
        assert row[4] < 1.10
    for row in width_rows:
        values = row[1:]
        assert values == sorted(values)  # wider never slower
        # Diminishing returns: 8 -> 16 gains <5%.
        assert values[4] / values[3] < 1.05
    for row in som_rows:
        # ROM never loses; its headline win needs aggregation alongside.
        assert row[1] >= 0.95
        assert row[2] > row[1]
        assert row[2] > 1.3
