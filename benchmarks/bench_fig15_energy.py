"""Figure 15: energy consumption, normalised to Gunrock.

Paper headlines: ScalaGraph-512 uses ~7.1x less energy than Gunrock,
~1.3x less at 128 PEs than GraphDynS-128, and 3.3x / 2.8x less than
GraphDynS-128 / GraphDynS-512 at 512 PEs.  Energy = board power x
simulated execution time; the FPGA designs draw tens of watts against
the V100's 300 W.
"""

from conftest import emit

from repro.experiments import format_table, geometric_mean
from repro.experiments.runner import ALGORITHM_ORDER, GRAPH_ORDER, SYSTEM_ORDER


def test_figure15_energy(benchmark, figure14_matrix):
    matrix = figure14_matrix

    def summarize():
        rows = []
        normalized = {system: [] for system in SYSTEM_ORDER}
        for graph in GRAPH_ORDER:
            for algorithm in ALGORITHM_ORDER:
                base = matrix.reports[(graph, algorithm, "Gunrock")]
                row = [graph, algorithm]
                for system in SYSTEM_ORDER:
                    report = matrix.reports[(graph, algorithm, system)]
                    ratio = report.energy_joules / base.energy_joules
                    normalized[system].append(ratio)
                    row.append(ratio)
                rows.append(row)
        return rows, normalized

    rows, normalized = benchmark.pedantic(summarize, rounds=1, iterations=1)
    means = {s: geometric_mean(v) for s, v in normalized.items()}
    rows.append(["gmean", ""] + [means[s] for s in SYSTEM_ORDER])

    text = format_table(
        ["Graph", "Algorithm"] + list(SYSTEM_ORDER),
        rows,
        title="Figure 15: energy normalised to Gunrock (lower is better)",
        float_fmt="{:.3f}",
    )
    sg512_saving = 1.0 / means["ScalaGraph-512"]
    text += (
        f"\n\nScalaGraph-512 saves {sg512_saving:.1f}x energy vs Gunrock "
        f"(paper ~7.1x); vs GraphDynS-128 "
        f"{means['GraphDynS-128'] / means['ScalaGraph-512']:.1f}x (paper 3.3x); "
        f"vs GraphDynS-512 "
        f"{means['GraphDynS-512'] / means['ScalaGraph-512']:.1f}x (paper 2.8x); "
        f"ScalaGraph-128 vs GraphDynS-128 "
        f"{means['GraphDynS-128'] / means['ScalaGraph-128']:.2f}x (paper 1.3x)."
    )
    emit("fig15_energy", text)

    # Every accelerator beats the GPU on energy; ScalaGraph-512 is best.
    for system in SYSTEM_ORDER:
        if system != "Gunrock":
            assert means[system] < 1.0
    assert means["ScalaGraph-512"] == min(
        means[s] for s in SYSTEM_ORDER if s != "Gunrock"
    )
    # Factor bands around the paper's numbers.
    assert 3.0 < sg512_saving < 15.0
    assert means["GraphDynS-128"] / means["ScalaGraph-512"] > 1.8
    assert means["GraphDynS-512"] / means["ScalaGraph-512"] > 1.4
    assert means["GraphDynS-128"] / means["ScalaGraph-128"] > 1.0
