"""Reference vs vectorized scatter-phase engine speed (PR 9 artifact).

Runs the *end-to-end* cycle-accurate simulator — dispatcher queues,
aggregation arrays, NoC, SPD retire — twice over an identical R-MAT
PageRank workload, once per ``cycle_engine``, and reports cycles/sec.
Timings are interleaved (ref, vec, ref, vec, ...) and the best of N is
kept per engine, which is markedly more stable than back-to-back runs
on a noisy machine.  Before any timing is trusted the two engines must
agree stat-for-stat and property-for-property.

The machine-readable summary is written twice: to
``benchmarks/results/bench_cycle_engine_speed.json`` like every other
bench, and to the repo-root ``BENCH_PR9.json`` consumed by the perf
trajectory and the CI perf-smoke job.  The committed ``BENCH_PR6.json``
is kept as the frozen PR 6 baseline: when present, the 16x16 and 32x32
vectorized throughputs are compared against it and the ratios recorded
(``speedup_vs_pr6``) — measured on the bench host, so cross-machine
ratios carry that caveat.

Knobs (environment variables):

* ``REPRO_CYCLE_BENCH_SCALE`` — R-MAT scale (default 14; CI uses a
  smaller scale to fit the wall-time budget).
* ``REPRO_CYCLE_BENCH_EDGE_FACTOR`` — edges per vertex (default 16).
* ``REPRO_CYCLE_BENCH_REPEATS`` — interleaved timing rounds, best kept
  (default 2).
* ``REPRO_CYCLE_BENCH_MIN_SPEEDUP`` — hard floor on the 16x16 speedup
  (default 1.0: the vectorized engine must never lose; the committed
  repo-root artifact is generated at the defaults, where it clears 5x).
* ``REPRO_CYCLE_BENCH_LARGE`` — ``RxC`` mesh for the vectorized-only
  scaling run (default ``32x32``; empty string skips it).  Timed with
  the same interleaved best-of-N discipline as the 16x16 pair.
* ``REPRO_CYCLE_BENCH_LARGE_BUDGET`` — wall-clock budget in seconds for
  the large run (default 300, the CI perf-smoke timeout).
* ``REPRO_CYCLE_BENCH_PROBE`` — ``RxC`` mesh for the single budgeted
  paper-scale probe (default ``48x48``; empty string skips it).
* ``REPRO_CYCLE_BENCH_PROBE_BUDGET`` — wall-clock budget in seconds
  for the probe (default 300).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
from conftest import emit, emit_json

from repro.algorithms import make_algorithm
from repro.core.config import ScalaGraphConfig
from repro.core.cycle_sim import CycleAccurateScalaGraph
from repro.graph.generators import rmat_graph

BENCH_PR9 = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"
#: Frozen PR 6 numbers (committed artifact) used as the comparison
#: baseline; never rewritten by this bench.
BENCH_PR6 = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"

SCALE = int(os.environ.get("REPRO_CYCLE_BENCH_SCALE", "14"))
EDGE_FACTOR = int(os.environ.get("REPRO_CYCLE_BENCH_EDGE_FACTOR", "16"))
REPEATS = int(os.environ.get("REPRO_CYCLE_BENCH_REPEATS", "2"))
MIN_SPEEDUP = float(os.environ.get("REPRO_CYCLE_BENCH_MIN_SPEEDUP", "1.0"))
LARGE = os.environ.get("REPRO_CYCLE_BENCH_LARGE", "32x32").strip()
LARGE_BUDGET = float(
    os.environ.get("REPRO_CYCLE_BENCH_LARGE_BUDGET", "300")
)
PROBE = os.environ.get("REPRO_CYCLE_BENCH_PROBE", "48x48").strip()
PROBE_BUDGET = float(
    os.environ.get("REPRO_CYCLE_BENCH_PROBE_BUDGET", "300")
)


def _pr6_baseline(mesh: str) -> float:
    """Committed PR 6 vectorized cycles/sec for ``mesh`` (0.0 when the
    baseline artifact or mesh entry is missing)."""
    if not BENCH_PR6.exists():
        return 0.0
    payload = json.loads(BENCH_PR6.read_text())
    for entry in payload.get("meshes", []):
        if entry.get("mesh") == mesh:
            vec = entry.get("engines", {}).get("vectorized", {})
            return float(vec.get("cycles_per_second", 0.0))
    return 0.0


def _fingerprint(result):
    out = {}
    for name, value in vars(result.stats).items():
        if isinstance(value, (int, float, bool, str)):
            out[name] = value
        elif isinstance(value, list):
            out[name] = tuple(value)
    return out


def _timed_run(engine: str, rows: int, cols: int, graph):
    config = ScalaGraphConfig(
        num_tiles=1,
        pe_rows=rows,
        pe_cols=cols,
        aggregation_registers=64,
        mapping="rom",
        cycle_engine=engine,
    )
    sim = CycleAccurateScalaGraph(config)
    program = make_algorithm("pagerank", max_iters=2)
    start = time.perf_counter()
    result = sim.run(program, graph)
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_cycle_engine_speed():
    graph = rmat_graph(SCALE, edge_factor=EDGE_FACTOR, seed=1)
    rows = cols = 16

    # Interleaved best-of-N: alternate engines each round so slow drift
    # (thermal, competing load) hits both engines equally.
    best = {"reference": float("inf"), "vectorized": float("inf")}
    results = {}
    for _ in range(REPEATS):
        for engine in ("reference", "vectorized"):
            result, elapsed = _timed_run(engine, rows, cols, graph)
            results[engine] = result
            best[engine] = min(best[engine], elapsed)

    # Equivalence gate before trusting the timing.
    ref, vec = results["reference"], results["vectorized"]
    assert _fingerprint(ref) == _fingerprint(vec), "engines diverged"
    np.testing.assert_array_equal(ref.properties, vec.properties)

    cycles = ref.stats.total_cycles
    ref_cps = cycles / best["reference"]
    vec_cps = cycles / best["vectorized"]
    speedup = vec_cps / ref_cps
    assert speedup >= MIN_SPEEDUP, (
        f"16x16 cycle-engine speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x floor"
    )

    pr6_16 = _pr6_baseline("16x16")
    payload = {
        "schema": "repro-bench-cycle-engine/2",
        "pr": 9,
        "workload": {
            "graph": f"rmat(scale={SCALE}, edge_factor={EDGE_FACTOR}, seed=1)",
            "vertices": int(graph.num_vertices),
            "edges": int(graph.num_edges),
            "algorithm": "pagerank(max_iters=2)",
            "mapping": "rom",
            "aggregation_registers": 64,
        },
        "repeats": REPEATS,
        "meshes": [
            {
                "mesh": "16x16",
                "cycles": cycles,
                "engines": {
                    "reference": {
                        "seconds": best["reference"],
                        "cycles_per_second": ref_cps,
                    },
                    "vectorized": {
                        "seconds": best["vectorized"],
                        "cycles_per_second": vec_cps,
                    },
                },
                "speedup": speedup,
                "pr6_vectorized_cycles_per_second": pr6_16,
                "speedup_vs_pr6": (vec_cps / pr6_16) if pr6_16 else None,
            }
        ],
    }
    lines = [
        "mesh   engine      seconds    cycles/s   speedup",
        "-" * 50,
        f"16x16  reference  {best['reference']:>8.2f} {ref_cps:>11,.0f}",
        f"16x16  vectorized {best['vectorized']:>8.2f} {vec_cps:>11,.0f}"
        f" {speedup:>8.2f}x",
    ]

    # Vectorized-only scaling run: a 32x32 mesh (1024 PEs) must finish
    # the same workload inside the perf-smoke wall-clock budget — the
    # reference engine cannot come close at this size.  Best-of-N like
    # the 16x16 pair, so the PR 6 ratio is not a one-shot noise draw.
    if LARGE:
        lrows, _, lcols = LARGE.partition("x")
        lbest = float("inf")
        for _ in range(REPEATS):
            lresult, lelapsed = _timed_run(
                "vectorized", int(lrows), int(lcols), graph
            )
            lbest = min(lbest, lelapsed)
        assert lbest <= LARGE_BUDGET, (
            f"{LARGE} vectorized run took {lbest:.1f}s "
            f"(budget {LARGE_BUDGET:.0f}s)"
        )
        lcycles = lresult.stats.total_cycles
        lcps = lcycles / lbest
        pr6_large = _pr6_baseline(LARGE)
        payload["meshes"].append(
            {
                "mesh": LARGE,
                "cycles": lcycles,
                "engines": {
                    "vectorized": {
                        "seconds": lbest,
                        "cycles_per_second": lcps,
                    }
                },
                "budget_seconds": LARGE_BUDGET,
                "pr6_vectorized_cycles_per_second": pr6_large,
                "speedup_vs_pr6": (lcps / pr6_large) if pr6_large else None,
            }
        )
        vs = f" ({lcps / pr6_large:.2f}x vs PR6)" if pr6_large else ""
        lines.append(
            f"{LARGE}  vectorized {lbest:>8.2f} "
            f"{lcps:>11,.0f}   (budget {LARGE_BUDGET:.0f}s){vs}"
        )

    # Budgeted paper-scale probe: one shot at a 48x48 mesh (2304 PEs),
    # no baseline to compare against — the point is that the size runs
    # at all inside a CI-sized budget.
    if PROBE:
        prows, _, pcols = PROBE.partition("x")
        presult, pelapsed = _timed_run(
            "vectorized", int(prows), int(pcols), graph
        )
        assert pelapsed <= PROBE_BUDGET, (
            f"{PROBE} vectorized probe took {pelapsed:.1f}s "
            f"(budget {PROBE_BUDGET:.0f}s)"
        )
        pcycles = presult.stats.total_cycles
        payload["meshes"].append(
            {
                "mesh": PROBE,
                "cycles": pcycles,
                "engines": {
                    "vectorized": {
                        "seconds": pelapsed,
                        "cycles_per_second": pcycles / pelapsed,
                    }
                },
                "budget_seconds": PROBE_BUDGET,
                "probe": True,
            }
        )
        lines.append(
            f"{PROBE}  vectorized {pelapsed:>8.2f} "
            f"{pcycles / pelapsed:>11,.0f}   (probe, budget "
            f"{PROBE_BUDGET:.0f}s)"
        )

    emit("bench_cycle_engine_speed", "\n".join(lines))
    emit_json("bench_cycle_engine_speed", payload)
    BENCH_PR9.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
