"""Table II: communication volume of the three mappings.

The paper derives, for K PEs, N active vertices and M active edges:

===================  ==============  ======  ==========
Mechanism            Scatter         Apply   Off-chip
===================  ==============  ======  ==========
Source-oriented      O(M sqrt(K))    O(N)    O(N + M)
Destination-orient.  0               O(NK)   O(NK + M)
Row-oriented         O(M sqrt(K)/2)  O(N)    O(N + M)
===================  ==============  ======  ==========

This bench measures the actual volumes on a PageRank frontier and checks
each asymptotic claim empirically: scaling in K for Scatter, the factor
~2 between SOM and ROM, and DOM's O(NK) Apply/off-chip terms.
"""

import numpy as np
from conftest import emit

from repro.algorithms.reference import gather_frontier_edges
from repro.experiments import format_table
from repro.graph.datasets import load_dataset
from repro.mapping import make_mapping
from repro.noc.topology import MeshTopology

MESHES = {16: (4, 4), 64: (8, 8), 256: (16, 16)}


def measure():
    graph = load_dataset("PK")
    active = np.arange(graph.num_vertices)
    src, dst, _ = gather_frontier_edges(graph, active)
    updated = np.unique(dst)

    rows = []
    volumes = {}
    for k, (r, c) in MESHES.items():
        topo = MeshTopology(r, c)
        for name in ("som", "dom", "rom"):
            mapping = make_mapping(name, topo)
            scatter = mapping.scatter_traffic(src, dst)
            apply_t = mapping.apply_traffic(updated)
            offchip = mapping.offchip_bytes(active.size, src.size)
            volumes[(name, k)] = (
                scatter.total_hops,
                apply_t.total_hops,
                offchip,
            )
            rows.append(
                [
                    name.upper(),
                    k,
                    scatter.total_hops,
                    float(scatter.average_hops),
                    apply_t.total_hops,
                    offchip,
                ]
            )
    return rows, volumes, src.size, updated.size


def test_table2_mapping_complexity(benchmark):
    rows, volumes, m_edges, n_updated = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    text = format_table(
        [
            "Mapping",
            "K",
            "Scatter hops",
            "avg hops",
            "Apply hops",
            "Off-chip bytes",
        ],
        rows,
        title="Table II (empirical): communication volume on PageRank/PK",
    )
    emit("tab02_mapping_complexity", text)

    # O(M sqrt(K)): quadrupling K doubles SOM/ROM Scatter hops.
    for name in ("som", "rom"):
        ratio_64_16 = volumes[(name, 64)][0] / volumes[(name, 16)][0]
        ratio_256_64 = volumes[(name, 256)][0] / volumes[(name, 64)][0]
        assert 1.6 < ratio_64_16 < 2.4
        assert 1.6 < ratio_256_64 < 2.4

    # ROM ~ SOM / 2 at every K (square mesh: the row hops vanish).
    for k in MESHES:
        assert volumes[("rom", k)][0] < volumes[("som", k)][0]
        assert volumes[("rom", k)][0] / volumes[("som", k)][0] < 0.65

    # DOM: zero Scatter, O(NK) Apply, O(NK + M) off-chip.
    for k in MESHES:
        assert volumes[("dom", k)][0] == 0
        assert volumes[("dom", k)][1] == n_updated * (k - 1)
        assert volumes[("dom", k)][2] > volumes[("som", k)][2]
    assert (
        volumes[("dom", 256)][1] / volumes[("dom", 16)][1]
        == (256 - 1) / (16 - 1)
    )

    # SOM/ROM Apply is K-independent (O(N)).
    for name in ("som", "rom"):
        assert volumes[(name, 16)][1] == volumes[(name, 256)][1] == 0
