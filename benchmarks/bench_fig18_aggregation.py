"""Figure 18: effectiveness of the update-aggregation pipeline.

Paper: (a) adding registers to the aggregation pipeline cuts NoC
communications by up to 50.3%, with most of the benefit arriving by
12-16 registers (16 is the default); (b) with 16 registers, aggregation
speeds execution up by 1.57x on average.
"""

from conftest import emit

from repro.algorithms import PageRank, run_reference
from repro.core import ScalaGraph, ScalaGraphConfig
from repro.experiments import format_series, format_table, geometric_mean
from repro.graph.datasets import DATASET_ORDER, load_dataset

REGISTER_SWEEP = (0, 4, 8, 12, 16, 20)
MAX_ITERS = 5


def run_study():
    comm_series = {name: {} for name in DATASET_ORDER}
    speedups = []
    perf_rows = []
    for name in DATASET_ORDER:
        graph = load_dataset(name)
        reference = run_reference(PageRank(), graph, max_iterations=MAX_ITERS)
        baseline_hops = None
        reports = {}
        for registers in REGISTER_SWEEP:
            accel = ScalaGraph(
                ScalaGraphConfig(aggregation_registers=registers)
            )
            report = accel.run(PageRank(), graph, reference=reference)
            reports[registers] = report
            if registers == 0:
                baseline_hops = report.total_noc_hops
            comm_series[name][registers] = (
                report.total_noc_hops / baseline_hops
            )
        speedup = (
            reports[0].total_cycles / reports[16].total_cycles
        )
        speedups.append(speedup)
        perf_rows.append(
            [
                name,
                f"{1 - comm_series[name][16]:.1%}",
                f"{1 - comm_series[name][20]:.1%}",
                speedup,
            ]
        )
    return comm_series, perf_rows, speedups


def test_figure18_update_aggregation(benchmark):
    comm_series, perf_rows, speedups = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )
    text = format_series(
        comm_series,
        x_label="registers",
        title="Figure 18(a): NoC communications vs aggregation registers "
        "(normalised to 0 = FIFO)",
    )
    text += "\n\n" + format_table(
        ["Graph", "comm cut @16 regs", "comm cut @20 regs", "speedup w/ 16 regs"],
        perf_rows,
        title="Figure 18(b): aggregation speedup "
        f"(gmean {geometric_mean(speedups):.2f}x, paper 1.57x)",
    )
    emit("fig18_aggregation", text)

    for name in DATASET_ORDER:
        series = comm_series[name]
        # Monotone: more registers, fewer communications.
        values = [series[r] for r in REGISTER_SWEEP]
        assert values == sorted(values, reverse=True)
        # Meaningful reduction at the default 16 registers
        # (paper: up to 50.3%).
        assert 1 - series[16] > 0.20
        # Diminishing returns: 16 -> 20 adds little.
        gain_12_16 = series[12] - series[16]
        gain_16_20 = series[16] - series[20]
        assert gain_16_20 <= gain_12_16 + 0.02

    assert geometric_mean(speedups) > 1.1
