"""Figure 20: PE utilisation of ScalaGraph-128 vs GraphDynS-128.

Paper: GraphDynS-128 averages 92.3% and ScalaGraph-128 87.2% — the
distributed design gives up a few points of utilisation (central mesh
PEs see more traffic) but wins overall on frequency.  Utilisation here
is the Scatter-compute metric: ideal edge-processing cycles over the
cycles the dispatch/compute path took.
"""

from conftest import emit

from repro.experiments import format_table, geometric_mean
from repro.experiments.runner import ALGORITHM_ORDER, GRAPH_ORDER


def test_figure20_pe_utilization(benchmark, figure14_matrix):
    matrix = figure14_matrix

    def summarize():
        rows = []
        utils = {"ScalaGraph-128": [], "GraphDynS-128": []}
        for graph in GRAPH_ORDER:
            for algorithm in ALGORITHM_ORDER:
                row = [graph, algorithm]
                for system in ("GraphDynS-128", "ScalaGraph-128"):
                    report = matrix.reports[(graph, algorithm, system)]
                    util = report.scatter_utilization
                    utils[system].append(util)
                    row.append(f"{util:.1%}")
                rows.append(row)
        return rows, utils

    rows, utils = benchmark.pedantic(summarize, rounds=1, iterations=1)
    gd = geometric_mean(utils["GraphDynS-128"])
    sg = geometric_mean(utils["ScalaGraph-128"])
    text = format_table(
        ["Graph", "Algorithm", "GraphDynS-128", "ScalaGraph-128"],
        rows,
        title="Figure 20: PE utilisation during Scatter compute",
    )
    text += (
        f"\n\nMeans: GraphDynS-128 {gd:.1%} (paper 92.3%), "
        f"ScalaGraph-128 {sg:.1%} (paper 87.2%)."
    )
    emit("fig20_pe_utilization", text)

    # Paper shape: GraphDynS slightly ahead, both high; frequency (2.5x)
    # still hands ScalaGraph the performance win.
    assert gd > sg
    assert sg > 0.6
    assert gd > 0.8
    assert gd - sg < 0.3
