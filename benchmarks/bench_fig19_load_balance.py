"""Figure 19: effectiveness of the load-balance mechanisms.

(a) Degree-aware scheduling: raising the number of simultaneously
    scheduled vertices from 1 to 16 buys 1.02-1.28x, more on low-degree
    graphs (Section V-D).
(b) Inter-phase pipelining on CC: 1.05-1.76x, with TW benefiting least
    because its vertex properties do not fit on-chip and partitioning
    defeats the overlap.
"""

from conftest import emit

from repro.algorithms import ConnectedComponents, PageRank, run_reference
from repro.core import ScalaGraph, ScalaGraphConfig
from repro.experiments import format_series, format_table
from repro.graph.datasets import DATASETS, DATASET_ORDER, load_dataset
from repro.memory.spd import ScratchpadConfig

WINDOW_SWEEP = (1, 2, 4, 8, 16)
MAX_ITERS = 5


def run_degree_aware():
    series = {}
    for name in DATASET_ORDER:
        graph = load_dataset(name)
        reference = run_reference(PageRank(), graph, max_iterations=MAX_ITERS)
        base_cycles = None
        curve = {}
        for window in WINDOW_SWEEP:
            report = ScalaGraph(
                ScalaGraphConfig(degree_aware_window=window)
            ).run(PageRank(), graph, reference=reference)
            if window == 1:
                base_cycles = report.total_cycles
            curve[window] = base_cycles / report.total_cycles
        series[name] = curve
    return series


def run_pipelining():
    rows = []
    speedups = {}
    for name in DATASET_ORDER:
        graph = load_dataset(name)
        # TW's properties exceed the on-chip budget in the paper; scale
        # the scratchpad so the stand-in is partitioned the same way.
        spd = (
            ScratchpadConfig(total_bytes=graph.num_vertices * 2)
            if name == "TW"
            else ScratchpadConfig()
        )
        program = ConnectedComponents()
        reference = run_reference(program, graph)
        on = ScalaGraph(ScalaGraphConfig(spd=spd)).run(
            program, graph, reference=reference
        )
        off = ScalaGraph(
            ScalaGraphConfig(spd=spd, inter_phase_pipelining=False)
        ).run(program, graph, reference=reference)
        speedup = off.total_cycles / on.total_cycles
        speedups[name] = speedup
        rows.append([name, on.num_partitions, speedup])
    return rows, speedups


def test_figure19a_degree_aware_scheduling(benchmark):
    series = benchmark.pedantic(run_degree_aware, rounds=1, iterations=1)
    text = format_series(
        series,
        x_label="vertices/dispatch",
        title="Figure 19(a): speedup vs one-vertex-at-a-time scheduling "
        "(PageRank; paper 1.02-1.28x at 16)",
    )
    emit("fig19a_degree_aware", text)

    for name, curve in series.items():
        values = [curve[w] for w in WINDOW_SWEEP]
        # Speedup grows with the scheduling window...
        assert values == sorted(values)
        # ...to a modest factor in the paper's band.
        assert 1.0 <= curve[16] < 1.6

    # Low-degree graphs benefit most (paper: 'the lower degree a graph
    # has, the more it can benefit').
    degrees = {k: DATASETS[k].edge_factor for k in series}
    lowest = min(degrees, key=degrees.get)   # LJ (14)
    highest = max(degrees, key=degrees.get)  # OR (76)
    assert series[lowest][16] >= series[highest][16]


def test_figure19b_inter_phase_pipelining(benchmark):
    rows, speedups = benchmark.pedantic(run_pipelining, rounds=1, iterations=1)
    text = format_table(
        ["Graph", "partitions", "pipelining speedup"],
        rows,
        title="Figure 19(b): inter-phase pipelining on CC "
        "(paper 1.05-1.76x, TW smallest)",
    )
    emit("fig19b_pipelining", text)

    for name, speedup in speedups.items():
        assert speedup >= 1.0
        assert speedup < 2.0  # the overlap can at most halve time
    # TW (partitioned) gains least.
    assert speedups["TW"] == min(speedups.values())
    assert speedups["TW"] < 1.05
    # At least one in-SPD graph reaches a substantial overlap.
    assert max(speedups.values()) > 1.2
