"""Extension: direction-optimizing BFS on ScalaGraph.

Section I cites Beamer's direction-optimizing BFS [4] among the
algorithmic advances motivating accelerator work; this bench quantifies
what it buys on the reproduced hardware.  Pull phases skip edges into
already-visited vertices, and the trace-level `run_trace` API carries
the savings through the timing model.
"""

from conftest import emit

from repro.algorithms import BFS, run_direction_optimizing_bfs, run_reference
from repro.algorithms.dobfs import as_workload
from repro.core import ScalaGraph, ScalaGraphConfig
from repro.experiments import format_table, geometric_mean
from repro.graph.datasets import DATASET_ORDER, load_dataset
from repro.graph.transforms import largest_out_component_root


def run_study():
    accel = ScalaGraph(ScalaGraphConfig())
    rows = []
    speedups = []
    for name in DATASET_ORDER:
        graph = load_dataset(name)
        root = largest_out_component_root(graph)
        plain = run_reference(BFS(root=root), graph)
        plain_report = accel.run(BFS(root=root), graph, reference=plain)
        dobfs = run_direction_optimizing_bfs(graph, root=root)
        assert (dobfs.depths == plain.properties).all()
        dobfs_report = accel.run_trace(
            graph, as_workload(dobfs), algorithm="dobfs", monotonic=True
        )
        saved = 1 - dobfs.total_edges_examined / plain.total_edges_traversed
        speedup = plain_report.total_cycles / dobfs_report.total_cycles
        speedups.append(speedup)
        rows.append(
            [
                name,
                plain.total_edges_traversed,
                dobfs.total_edges_examined,
                f"{saved:.0%}",
                dobfs.pull_iterations,
                speedup,
            ]
        )
    return rows, speedups


def test_ext_direction_optimizing_bfs(benchmark):
    rows, speedups = benchmark.pedantic(run_study, rounds=1, iterations=1)
    text = format_table(
        [
            "Graph",
            "push edges",
            "DO edges",
            "saved",
            "pull iters",
            "cycle speedup",
        ],
        rows,
        title="Extension: direction-optimizing BFS vs top-down "
        f"(gmean speedup {geometric_mean(speedups):.2f}x)",
    )
    emit("ext_direction_optimizing", text)

    # Power-law graphs switch to pull and save most of their edges.
    for row in rows:
        assert row[4] >= 1  # at least one pull iteration
        assert float(row[3].rstrip("%")) > 50
    assert geometric_mean(speedups) > 1.1
