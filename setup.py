"""Legacy setup shim.

The evaluation environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.
This shim lets ``pip install -e . --no-build-isolation --no-use-pep517``
(and plain ``pip install -e .``, which falls back to it) work; all project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
