"""Vectorized engine: same knobs, same stats, masks dead links whole
(same link-outage fault kind as the reference's per-packet reroute)."""

import numpy as np

from sim603_pkg.config import EngineConfig
from sim603_pkg.stats import EngineStats

ENGINE_TWIN = {
    "pair": "fixture-engine",
    "reference": "sim603_pkg.ref_engine",
}

BUFFER_DTYPES = {
    "_vid": "int64",
    "_val": "float64",
}


class FastEngine:
    def __init__(self, config: EngineConfig, faults=None) -> None:
        self.config = config
        self.faults = faults
        self.stats = EngineStats()
        self._vid = np.zeros(config.depth, dtype=np.int64)
        self._val = np.zeros(config.depth, dtype=np.float64)

    def run(self) -> None:
        cfg = self.config
        if self.faults is not None:
            self.faults.link_dead_mask(self.stats.cycles)
        self.stats.cycles += cfg.window
        self.stats.delivered += cfg.depth
        self.stats.dropped += 1
