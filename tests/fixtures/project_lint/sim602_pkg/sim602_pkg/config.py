"""Config knobs consumed by both fixture engines."""

from dataclasses import dataclass


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the fixture engine pair.

    Attributes:
        window: coalescing window consumed by both engines.
        depth: buffer depth consumed by both engines.
        unused_knob: DRIFT — declared but never read anywhere.
    """

    window: int = 4
    depth: int = 8
    unused_knob: int = 0
