"""Stats emitted by both fixture engines."""

from dataclasses import dataclass


@dataclass
class EngineStats:
    """Counters both engines must emit identically.

    Attributes:
        cycles: cycles simulated.
        delivered: updates delivered.
    """

    cycles: int = 0
    delivered: int = 0
