"""Fixture: a clean engine-twin pair (zero SIM6xx findings)."""
