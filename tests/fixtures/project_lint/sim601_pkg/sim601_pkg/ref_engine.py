"""Reference engine: consumes both knobs, emits both stats, reroutes
around link outages per-packet."""

from sim601_pkg.config import EngineConfig
from sim601_pkg.stats import EngineStats


class RefEngine:
    def __init__(self, config: EngineConfig, faults=None) -> None:
        self.config = config
        self.faults = faults
        self.stats = EngineStats()

    def run(self) -> None:
        cfg = self.config
        budget = cfg.window * cfg.depth
        if self.faults is not None:
            self.faults.route(0, 1, self.stats.cycles)
        self.stats.cycles += 1
        self.stats.delivered += budget
