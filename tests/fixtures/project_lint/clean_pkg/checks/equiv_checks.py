"""Assertion root for the clean fixture: every emitted stats field is
compared between the twins (the SIM603 'asserted' set)."""


def check_equivalence(ref, fast):
    assert ref.stats.cycles == fast.stats.cycles
    assert ref.stats.delivered == fast.stats.delivered
