"""Experiment persistence tests."""

import json

import pytest

from repro.errors import ReproError
from repro.experiments import (
    compare_to_saved,
    load_matrix_summaries,
    run_matrix,
    save_matrix,
)


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(
        graphs=["PK"],
        algorithms=["bfs"],
        systems=["GraphDynS-128", "ScalaGraph-512"],
        scale_shift=-4,
    )


class TestSaveLoad:
    def test_round_trip(self, matrix, tmp_path):
        path = tmp_path / "matrix.json"
        save_matrix(matrix, path)
        loaded = load_matrix_summaries(path)
        assert set(loaded) == set(matrix.reports)
        for key, report in matrix.reports.items():
            assert loaded[key]["gteps"] == pytest.approx(report.gteps)
            assert loaded[key]["total_cycles"] == report.total_cycles

    def test_iterations_persisted(self, matrix, tmp_path):
        path = tmp_path / "matrix.json"
        save_matrix(matrix, path)
        loaded = load_matrix_summaries(path)
        key = next(iter(loaded))
        assert len(loaded[key]["iterations"]) == len(
            matrix.reports[key].iterations
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_matrix_summaries(tmp_path / "nope.json")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_matrix_summaries(path)

    def test_version_check(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 99, "cells": []}))
        with pytest.raises(ReproError):
            load_matrix_summaries(path)


class TestRegressionCompare:
    def test_no_drift_against_self(self, matrix, tmp_path):
        path = tmp_path / "baseline.json"
        save_matrix(matrix, path)
        assert compare_to_saved(matrix, path) == {}

    def test_detects_drift(self, matrix, tmp_path):
        path = tmp_path / "baseline.json"
        save_matrix(matrix, path)
        payload = json.loads(path.read_text())
        payload["cells"][0]["report"]["gteps"] *= 2  # corrupt the baseline
        path.write_text(json.dumps(payload))
        drifted = compare_to_saved(matrix, path)
        assert len(drifted) == 1
        (old, new), = drifted.values()
        assert old == pytest.approx(2 * new, rel=1e-9)

    def test_unknown_cells_ignored(self, matrix, tmp_path):
        path = tmp_path / "baseline.json"
        save_matrix(matrix, path)
        partial = run_matrix(
            graphs=["PK"],
            algorithms=["bfs"],
            systems=["ScalaGraph-512"],
            scale_shift=-4,
        )
        assert compare_to_saved(partial, path) == {}
