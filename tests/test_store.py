"""Experiment persistence tests."""

import json
import multiprocessing

import pytest

from repro.core.stats import SimulationReport
from repro.errors import ReproError
from repro.experiments import (
    CODE_MODEL_VERSION,
    ResultCache,
    compare_to_saved,
    dataset_fingerprint,
    load_matrix_summaries,
    run_matrix,
    save_matrix,
)


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(
        graphs=["PK"],
        algorithms=["bfs"],
        systems=["GraphDynS-128", "ScalaGraph-512"],
        scale_shift=-4,
    )


class TestSaveLoad:
    def test_round_trip(self, matrix, tmp_path):
        path = tmp_path / "matrix.json"
        save_matrix(matrix, path)
        loaded = load_matrix_summaries(path)
        assert set(loaded) == set(matrix.reports)
        for key, report in matrix.reports.items():
            assert loaded[key]["gteps"] == pytest.approx(report.gteps)
            assert loaded[key]["total_cycles"] == report.total_cycles

    def test_iterations_persisted(self, matrix, tmp_path):
        path = tmp_path / "matrix.json"
        save_matrix(matrix, path)
        loaded = load_matrix_summaries(path)
        key = next(iter(loaded))
        assert len(loaded[key]["iterations"]) == len(
            matrix.reports[key].iterations
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_matrix_summaries(tmp_path / "nope.json")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_matrix_summaries(path)

    def test_version_check(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 99, "cells": []}))
        with pytest.raises(ReproError):
            load_matrix_summaries(path)


class TestRegressionCompare:
    def test_no_drift_against_self(self, matrix, tmp_path):
        path = tmp_path / "baseline.json"
        save_matrix(matrix, path)
        assert compare_to_saved(matrix, path) == {}

    def test_detects_drift(self, matrix, tmp_path):
        path = tmp_path / "baseline.json"
        save_matrix(matrix, path)
        payload = json.loads(path.read_text())
        payload["cells"][0]["report"]["gteps"] *= 2  # corrupt the baseline
        path.write_text(json.dumps(payload))
        drifted = compare_to_saved(matrix, path)
        assert len(drifted) == 1
        (old, new), = drifted.values()
        assert old == pytest.approx(2 * new, rel=1e-9)

    def test_unknown_cells_ignored(self, matrix, tmp_path):
        path = tmp_path / "baseline.json"
        save_matrix(matrix, path)
        partial = run_matrix(
            graphs=["PK"],
            algorithms=["bfs"],
            systems=["ScalaGraph-512"],
            scale_shift=-4,
        )
        assert compare_to_saved(partial, path) == {}


class TestDatasetFingerprint:
    def test_deterministic(self):
        assert dataset_fingerprint("PK", "bfs") == dataset_fingerprint(
            "PK", "bfs"
        )

    def test_sensitive_to_inputs(self):
        base = dataset_fingerprint("PK", "bfs", scale_shift=0)
        assert dataset_fingerprint("PK", "bfs", scale_shift=-1) != base
        assert dataset_fingerprint("LJ", "bfs") != base
        # sssp loads weights, bfs does not -> different graph bytes.
        assert dataset_fingerprint("PK", "sssp") != base
        # bfs and pagerank read the same unweighted graph.
        assert dataset_fingerprint("PK", "pagerank") == base

    def test_unknown_graph_raises(self):
        with pytest.raises(ReproError):
            dataset_fingerprint("NOPE", "bfs")


class TestResultCache:
    CELL = ("PK", "bfs", "ScalaGraph-512")

    @pytest.fixture
    def report(self, matrix):
        return matrix.reports[("PK", "bfs", "ScalaGraph-512")]

    def test_miss_then_hit_round_trip(self, tmp_path, report):
        cache = ResultCache(tmp_path / "c")
        assert cache.get(*self.CELL, scale_shift=-4) is None
        cache.put(*self.CELL, report, scale_shift=-4)
        loaded = cache.get(*self.CELL, scale_shift=-4)
        assert loaded is not None
        assert json.dumps(
            loaded.to_dict(include_iterations=True)
        ) == json.dumps(report.to_dict(include_iterations=True))
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_key_sensitivity(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        base = cache.key(*self.CELL, scale_shift=-4)
        assert cache.key(*self.CELL, scale_shift=-3) != base
        assert cache.key("PK", "bfs", "GraphDynS-128", scale_shift=-4) != base
        assert cache.key(*self.CELL, scale_shift=-4, max_iterations=3) != base
        assert cache.key(*self.CELL, scale_shift=-4) == base

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path, report):
        cache = ResultCache(tmp_path / "c")
        cache.put(*self.CELL, report, scale_shift=-4)
        for path in (tmp_path / "c").glob("*.json"):
            path.write_text("{broken")
        assert cache.get(*self.CELL, scale_shift=-4) is None
        assert cache.stats.invalid == 1

    def test_model_version_mismatch_is_a_miss(self, tmp_path, report):
        old = ResultCache(tmp_path / "c", model_version="0.0-old")
        old.put(*self.CELL, report, scale_shift=-4)
        new = ResultCache(tmp_path / "c")
        assert new.model_version == CODE_MODEL_VERSION
        # Different version -> different key -> plain miss.
        assert new.get(*self.CELL, scale_shift=-4) is None

    def test_prune_removes_stale_versions(self, tmp_path, report):
        old = ResultCache(tmp_path / "c", model_version="0.0-old")
        old.put(*self.CELL, report, scale_shift=-4)
        new = ResultCache(tmp_path / "c")
        new.put(*self.CELL, report, scale_shift=-4)
        assert len(new) == 2
        assert new.prune() == 1
        assert len(new) == 1
        assert new.get(*self.CELL, scale_shift=-4) is not None

    def test_clear(self, tmp_path, report):
        cache = ResultCache(tmp_path / "c")
        cache.put(*self.CELL, report, scale_shift=-4)
        assert cache.clear() == 1
        assert len(cache) == 0


def _put_hammer(root, report_payload, count):
    """Child-process body for the concurrent put test."""
    cache = ResultCache(root)
    report = SimulationReport.from_dict(report_payload)
    for _ in range(count):
        cache.put("PK", "bfs", "ScalaGraph-512", report, scale_shift=-4)


class TestConcurrentPut:
    """Two processes hammering the same key never corrupt the entry.

    Regression test for the shared ``<key>.tmp`` staging file: with a
    per-key temp name, two writers interleave partial content and the
    rename publishes a torn payload.  The mkstemp-per-writer scheme
    must keep every concurrently-observed read a complete document.
    """

    def test_two_process_same_key_hammer(self, matrix, tmp_path):
        report = matrix.reports[("PK", "bfs", "ScalaGraph-512")]
        root = tmp_path / "c"
        payload = report.to_dict(include_iterations=True)
        writers = [
            multiprocessing.Process(
                target=_put_hammer, args=(root, payload, 50)
            )
            for _ in range(2)
        ]
        for proc in writers:
            proc.start()
        reader = ResultCache(root)
        try:
            # Read concurrently with the writers: every observed entry
            # must be a complete payload (miss until the first publish,
            # hit after — never invalid).
            while any(proc.is_alive() for proc in writers):
                reader.get("PK", "bfs", "ScalaGraph-512", scale_shift=-4)
        finally:
            for proc in writers:
                proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in writers)
        assert reader.stats.invalid == 0
        final = reader.get("PK", "bfs", "ScalaGraph-512", scale_shift=-4)
        assert final is not None
        assert json.dumps(
            final.to_dict(include_iterations=True)
        ) == json.dumps(payload)
        # No staging litter: every mkstemp file was renamed or removed.
        assert list(root.glob(".put-*.tmp")) == []
