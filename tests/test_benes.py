"""Benes network tests: construction and rearrangeability."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.noc.benes import BenesNetwork


class TestConstruction:
    def test_depth(self):
        assert BenesNetwork(2).depth == 1
        assert BenesNetwork(8).depth == 5
        assert BenesNetwork(64).depth == 11

    def test_num_switches_is_n_log_n(self):
        net = BenesNetwork(16)
        assert net.num_switches == net.depth * 8
        # O(N log N): 16 ports -> 56 switches vs crossbar's 256 points.
        assert net.num_switches == 56

    def test_rejects_non_power_of_two(self):
        for bad in (0, 1, 3, 6, 100):
            with pytest.raises(ConfigurationError):
                BenesNetwork(bad)


class TestRouting:
    def test_identity(self):
        net = BenesNetwork(8)
        perm = list(range(8))
        assert net.evaluate(net.route_permutation(perm)) == perm

    def test_reversal(self):
        net = BenesNetwork(8)
        perm = list(reversed(range(8)))
        assert net.evaluate(net.route_permutation(perm)) == perm

    def test_swap_pairs(self):
        net = BenesNetwork(8)
        perm = [1, 0, 3, 2, 5, 4, 7, 6]
        assert net.evaluate(net.route_permutation(perm)) == perm

    def test_base_case(self):
        net = BenesNetwork(2)
        assert net.evaluate(net.route_permutation([1, 0])) == [1, 0]
        assert net.evaluate(net.route_permutation([0, 1])) == [0, 1]

    def test_rejects_non_permutation(self):
        net = BenesNetwork(4)
        with pytest.raises(ConfigurationError):
            net.route_permutation([0, 0, 1, 2])
        with pytest.raises(ConfigurationError):
            net.route_permutation([0, 1, 2])

    def test_random_permutations_all_sizes(self):
        rng = np.random.default_rng(9)
        for n in (4, 8, 16, 32, 128):
            net = BenesNetwork(n)
            for _ in range(5):
                perm = list(rng.permutation(n))
                assert net.evaluate(net.route_permutation(perm)) == perm

    @given(st.permutations(list(range(16))))
    def test_rearrangeable_property(self, perm):
        """A Benes network realises *every* permutation — the property
        that makes it a crossbar substitute at O(N log N) cost."""
        net = BenesNetwork(16)
        assert net.evaluate(net.route_permutation(list(perm))) == list(perm)
