"""Cycle-level crossbar switch tests (the Figure 3 baseline)."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.noc.crossbar import CrossbarSwitch
from repro.noc.packet import Packet


class TestBasics:
    def test_single_cycle_delivery(self):
        xb = CrossbarSwitch(4, 4)
        p = Packet(src=0, dst=2)
        xb.inject(p)
        xb.step()
        assert p.delivered_cycle == 0

    def test_parallel_distinct_outputs(self):
        """A full permutation transfers in one cycle — the crossbar's
        defining property (all pairwise ports connect directly)."""
        xb = CrossbarSwitch(8, 8)
        packets = [Packet(src=i, dst=(i + 3) % 8) for i in range(8)]
        for p in packets:
            xb.inject(p)
        delivered = xb.step()
        assert len(delivered) == 8

    def test_output_conflict_serialises(self):
        xb = CrossbarSwitch(8, 8)
        for i in range(8):
            xb.inject(Packet(src=i, dst=0))
        stats = xb.run_until_drained()
        assert stats.cycles == 8
        assert stats.conflict_stalls == 7 + 6 + 5 + 4 + 3 + 2 + 1

    def test_round_robin_fairness(self):
        xb = CrossbarSwitch(3, 1)
        for _ in range(3):
            for i in range(3):
                xb.inject(Packet(src=i, dst=0))
        xb.run_until_drained()
        order = [p.src for p in xb.delivered]
        # Every window of three deliveries serves all three inputs.
        assert set(order[:3]) == {0, 1, 2}
        assert set(order[3:6]) == {0, 1, 2}

    def test_voq_avoids_hol_blocking(self):
        """Input 0 has packets for outputs 0 and 1; a conflict on output
        0 must not block the output-1 packet (VOQ property)."""
        xb = CrossbarSwitch(2, 2)
        xb.inject(Packet(src=0, dst=0))
        xb.inject(Packet(src=0, dst=1))
        xb.inject(Packet(src=1, dst=0))
        delivered = xb.step()
        assert len(delivered) == 2  # one per output, despite the conflict

    def test_rectangular(self):
        xb = CrossbarSwitch(4, 2)
        for i in range(4):
            xb.inject(Packet(src=i, dst=i % 2))
        stats = xb.run_until_drained()
        assert stats.delivered == 4
        assert stats.cycles == 2


class TestValidation:
    def test_rejects_bad_ports(self):
        with pytest.raises(ConfigurationError):
            CrossbarSwitch(0, 4)

    def test_rejects_out_of_range_input(self):
        xb = CrossbarSwitch(2, 2)
        with pytest.raises(ConfigurationError):
            xb.inject(Packet(src=5, dst=0))

    def test_rejects_out_of_range_output(self):
        xb = CrossbarSwitch(2, 2)
        with pytest.raises(ConfigurationError):
            xb.inject(Packet(src=0, dst=5))

    def test_max_cycles_guard(self):
        xb = CrossbarSwitch(2, 2)
        xb.inject(Packet(src=0, dst=0))
        xb.inject(Packet(src=1, dst=0))
        with pytest.raises(SimulationError):
            xb.run_until_drained(max_cycles=1)

    def test_pending_count(self):
        xb = CrossbarSwitch(2, 2)
        assert xb.pending() == 0
        xb.inject(Packet(src=0, dst=1))
        assert xb.pending() == 1
