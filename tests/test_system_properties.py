"""System-level property-based tests (hypothesis).

These exercise whole-pipeline invariants across randomly generated
graphs and configurations — the guarantees a downstream user relies on
regardless of input shape.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BFS, ConnectedComponents, PageRank, run_reference
from repro.algorithms.reference import gather_frontier_edges
from repro.core import ScalaGraph, ScalaGraphConfig
from repro.graph.csr import CSRGraph
from repro.mapping import make_mapping
from repro.noc.topology import MeshTopology
from repro.noc.traffic import xy_hop_counts


def graphs(max_vertices=24, max_edges=80):
    """Strategy generating small random CSR graphs."""
    return st.integers(2, max_vertices).flatmap(
        lambda n: st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_edges,
        ).map(lambda edges: CSRGraph.from_edges(n, edges))
    )


class TestGoldEquivalence:
    @given(graphs())
    @settings(max_examples=15)
    def test_accelerator_never_changes_bfs_results(self, graph):
        accel = ScalaGraph(ScalaGraphConfig(num_tiles=1, pe_cols=2))
        report = accel.run(BFS(root=0), graph)
        reference = run_reference(BFS(root=0), graph)
        assert np.array_equal(report.properties, reference.properties)

    @given(graphs())
    @settings(max_examples=15)
    def test_cc_labels_are_minima(self, graph):
        report = ScalaGraph(ScalaGraphConfig(num_tiles=1, pe_cols=2)).run(
            ConnectedComponents(), graph
        )
        labels = report.properties
        # Every label must name a vertex inside its own group whose
        # original ID is the label (labels are minima of their group).
        for v in range(graph.num_vertices):
            assert labels[int(labels[v])] == labels[v]
            assert labels[v] <= v

    @given(graphs())
    @settings(max_examples=10)
    def test_pagerank_mass_bounded(self, graph):
        report = ScalaGraph(ScalaGraphConfig(num_tiles=1, pe_cols=2)).run(
            PageRank(max_iters=5), graph
        )
        # Rank mass can only leak through dangling vertices, never grow.
        assert report.properties.sum() <= 1.0 + 1e-9
        assert np.all(report.properties >= 0)


class TestTimingInvariants:
    @given(graphs(), st.sampled_from([1, 2, 4]))
    @settings(max_examples=15)
    def test_report_sanity(self, graph, cols):
        config = ScalaGraphConfig(num_tiles=1, pe_cols=cols)
        report = ScalaGraph(config).run(BFS(root=0), graph)
        assert report.total_cycles >= 0
        assert 0 <= report.pe_utilization <= 1
        assert report.total_coalesced >= 0
        assert report.total_offchip_bytes >= 0
        if report.total_cycles:
            assert report.gteps >= 0

    @given(graphs())
    @settings(max_examples=10)
    def test_aggregation_never_hurts(self, graph):
        ref = run_reference(PageRank(max_iters=3), graph)
        on = ScalaGraph(
            ScalaGraphConfig(num_tiles=1, pe_cols=4)
        ).run(PageRank(max_iters=3), graph, reference=ref)
        off = ScalaGraph(
            ScalaGraphConfig(num_tiles=1, pe_cols=4, aggregation_registers=0)
        ).run(PageRank(max_iters=3), graph, reference=ref)
        assert on.total_cycles <= off.total_cycles + 1e-9

    @given(graphs())
    @settings(max_examples=10)
    def test_pipelining_never_hurts(self, graph):
        ref = run_reference(BFS(root=0), graph)
        on = ScalaGraph(
            ScalaGraphConfig(num_tiles=1, pe_cols=4)
        ).run(BFS(root=0), graph, reference=ref)
        off = ScalaGraph(
            ScalaGraphConfig(
                num_tiles=1, pe_cols=4, inter_phase_pipelining=False
            )
        ).run(BFS(root=0), graph, reference=ref)
        assert on.total_cycles <= off.total_cycles + 1e-9


class TestMappingInvariants:
    @given(graphs(), st.sampled_from([(2, 2), (4, 4), (2, 8)]))
    @settings(max_examples=15)
    def test_som_hops_equal_pairwise_distances(self, graph, shape):
        topo = MeshTopology(*shape)
        mapping = make_mapping("som", topo)
        src, dst, _ = gather_frontier_edges(
            graph, np.arange(graph.num_vertices)
        )
        traffic = mapping.scatter_traffic(src, dst)
        expected = int(
            xy_hop_counts(topo, mapping.home(src), mapping.home(dst)).sum()
        )
        assert traffic.total_hops == expected

    @given(graphs(), st.sampled_from([(2, 2), (4, 4)]))
    @settings(max_examples=15)
    def test_rom_hops_never_exceed_som(self, graph, shape):
        topo = MeshTopology(*shape)
        src, dst, _ = gather_frontier_edges(
            graph, np.arange(graph.num_vertices)
        )
        rom = make_mapping("rom", topo).scatter_traffic(src, dst)
        som = make_mapping("som", topo).scatter_traffic(src, dst)
        assert rom.total_hops <= som.total_hops

    @given(graphs(), st.sampled_from([(2, 2), (4, 4)]))
    @settings(max_examples=15)
    def test_torus_hops_never_exceed_mesh(self, graph, shape):
        topo = MeshTopology(*shape)
        src, dst, _ = gather_frontier_edges(
            graph, np.arange(graph.num_vertices)
        )
        mesh = make_mapping("rom", topo).scatter_traffic(src, dst)
        torus = make_mapping("rom-torus", topo).scatter_traffic(src, dst)
        assert torus.total_hops <= mesh.total_hops
