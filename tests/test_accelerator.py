"""ScalaGraph timing-model tests: invariants and the paper's knob effects."""

import numpy as np
import pytest

from repro.algorithms import BFS, ConnectedComponents, PageRank, run_reference
from repro.core import ScalaGraph, ScalaGraphConfig
from repro.core.config import TimingParams
from repro.errors import CapacityError
from repro.graph.generators import rmat_graph
from repro.memory.spd import ScratchpadConfig


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(10, edge_factor=16, seed=11, name="bench")


@pytest.fixture(scope="module")
def pr_reference(graph):
    return run_reference(PageRank(max_iters=6), graph)


def run_pr(config, graph, pr_reference, **kwargs):
    return ScalaGraph(config, **kwargs).run(
        PageRank(max_iters=6), graph, reference=pr_reference
    )


class TestReportInvariants:
    def test_gold_properties(self, graph, pr_reference):
        report = run_pr(ScalaGraphConfig(), graph, pr_reference)
        assert np.array_equal(report.properties, pr_reference.properties)

    def test_metadata(self, graph, pr_reference):
        report = run_pr(ScalaGraphConfig(), graph, pr_reference)
        assert report.accelerator == "ScalaGraph-512"
        assert report.num_pes == 512
        assert report.frequency_mhz == 250.0
        assert report.num_vertices == graph.num_vertices
        assert report.total_edges_traversed == pr_reference.total_edges_traversed

    def test_positive_cycles_and_gteps(self, graph, pr_reference):
        report = run_pr(ScalaGraphConfig(), graph, pr_reference)
        assert report.total_cycles > 0
        assert report.gteps > 0
        assert 0 < report.pe_utilization <= 1
        assert 0 < report.scatter_utilization <= 1

    def test_iteration_accounting(self, graph, pr_reference):
        report = run_pr(ScalaGraphConfig(), graph, pr_reference)
        assert len(report.iterations) == pr_reference.num_iterations
        total = sum(i.cycles for i in report.iterations)
        assert total == pytest.approx(report.total_cycles)

    def test_offchip_traffic_recorded(self, graph, pr_reference):
        report = run_pr(ScalaGraphConfig(), graph, pr_reference)
        # At least the edge stream flows every iteration.
        assert report.total_offchip_bytes >= (
            graph.num_edges * 4 * pr_reference.num_iterations
        )

    def test_power_attached(self, graph, pr_reference):
        report = run_pr(ScalaGraphConfig(), graph, pr_reference)
        assert report.power_watts > 0
        assert report.energy_joules > 0

    def test_summary_string(self, graph, pr_reference):
        text = run_pr(ScalaGraphConfig(), graph, pr_reference).summary()
        assert "ScalaGraph-512" in text and "GTEPS" in text


class TestScalingBehaviour:
    def test_more_pes_never_slower(self, graph, pr_reference):
        prev = None
        for pes in (32, 128, 512):
            report = run_pr(
                ScalaGraphConfig().with_pes(pes), graph, pr_reference
            )
            if prev is not None:
                assert report.gteps >= prev
            prev = report.gteps

    def test_scaling_is_substantial(self, graph, pr_reference):
        """Figure 21: near-linear scaling regime — 16x PEs should buy
        well over 4x throughput on PageRank."""
        small = run_pr(ScalaGraphConfig().with_pes(32), graph, pr_reference)
        large = run_pr(ScalaGraphConfig().with_pes(512), graph, pr_reference)
        assert large.gteps / small.gteps > 4.0

    def test_memory_bound_with_unbounded_bandwidth_relaxed(self, graph, pr_reference):
        """Figure 21's >=1024-PE study: with ample bandwidth the 1024-PE
        instance keeps scaling."""
        from repro.memory.hbm import HBMConfig

        bounded = run_pr(
            ScalaGraphConfig().with_pes(1024), graph, pr_reference
        )
        unbounded = run_pr(
            ScalaGraphConfig(hbm=HBMConfig.unbounded()).with_pes(1024),
            graph,
            pr_reference,
        )
        assert unbounded.gteps >= bounded.gteps


class TestOptimizationKnobs:
    def test_aggregation_helps(self, graph, pr_reference):
        on = run_pr(ScalaGraphConfig(), graph, pr_reference)
        off = run_pr(
            ScalaGraphConfig(aggregation_registers=0), graph, pr_reference
        )
        assert on.gteps > off.gteps
        assert on.total_coalesced > 0
        assert off.total_coalesced == 0

    def test_aggregation_monotone_in_registers(self, graph, pr_reference):
        gteps = [
            run_pr(
                ScalaGraphConfig(aggregation_registers=r), graph, pr_reference
            ).gteps
            for r in (0, 4, 16)
        ]
        assert gteps == sorted(gteps)

    def test_degree_aware_scheduling_helps(self, graph, pr_reference):
        packed = run_pr(ScalaGraphConfig(), graph, pr_reference)
        baseline = run_pr(
            ScalaGraphConfig(degree_aware_window=1), graph, pr_reference
        )
        assert packed.gteps >= baseline.gteps

    def test_pipelining_helps_monotonic_algorithms(self, graph):
        program = ConnectedComponents()
        ref = run_reference(program, graph)
        on = ScalaGraph(ScalaGraphConfig()).run(program, graph, reference=ref)
        off = ScalaGraph(
            ScalaGraphConfig(inter_phase_pipelining=False)
        ).run(program, graph, reference=ref)
        assert on.gteps > off.gteps
        assert on.extra["pipelining_used"] == 1.0
        assert sum(i.overlap_cycles for i in on.iterations) > 0

    def test_pipelining_disabled_for_pagerank(self, graph, pr_reference):
        """Section IV-D: non-monotonic algorithms must not pipeline."""
        report = run_pr(ScalaGraphConfig(), graph, pr_reference)
        assert report.extra["pipelining_used"] == 0.0
        assert all(i.overlap_cycles == 0 for i in report.iterations)

    def test_pipelining_disabled_when_partitioned(self, graph):
        """Section V-D: partitioned graphs gain little, so the model
        disables the overlap entirely across partitions."""
        spd = ScratchpadConfig(total_bytes=graph.num_vertices * 2)
        program = ConnectedComponents()
        ref = run_reference(program, graph)
        report = ScalaGraph(ScalaGraphConfig(spd=spd)).run(
            program, graph, reference=ref
        )
        assert report.num_partitions > 1
        assert report.extra["pipelining_used"] == 0.0


class TestMappings:
    def test_rom_beats_som(self, graph, pr_reference):
        rom = run_pr(ScalaGraphConfig(), graph, pr_reference)
        som = run_pr(ScalaGraphConfig(mapping="som"), graph, pr_reference)
        assert rom.gteps > som.gteps
        assert rom.total_noc_hops < som.total_noc_hops

    def test_dom_capacity_error(self, graph, pr_reference):
        """Section V-C: DOM's O(N*K) replicas exceed on-chip capacity —
        here 1,024 vertices x 512 PEs against a 1 MB scratchpad."""
        spd = ScratchpadConfig(total_bytes=1 << 20)
        with pytest.raises(CapacityError):
            run_pr(
                ScalaGraphConfig(mapping="dom", spd=spd), graph, pr_reference
            )

    def test_dom_allowed_with_infinite_memory(self, graph, pr_reference):
        report = ScalaGraph(
            ScalaGraphConfig(mapping="dom"), enforce_capacity=False
        ).run(PageRank(max_iters=6), graph, reference=pr_reference)
        assert report.total_noc_messages == 0  # scatter all-local


class TestPartitionedExecution:
    def test_partition_count(self, graph):
        spd = ScratchpadConfig(total_bytes=graph.num_vertices * 4)
        report = ScalaGraph(ScalaGraphConfig(spd=spd)).run(
            BFS(), graph
        )
        assert report.num_partitions == 2

    def test_partitioning_never_free(self, graph, pr_reference):
        whole = run_pr(ScalaGraphConfig(), graph, pr_reference)
        spd = ScratchpadConfig(total_bytes=graph.num_vertices * 2)
        sliced = run_pr(ScalaGraphConfig(spd=spd), graph, pr_reference)
        assert sliced.total_cycles >= whole.total_cycles

    def test_functional_result_independent_of_partitioning(self, graph):
        spd = ScratchpadConfig(total_bytes=graph.num_vertices * 2)
        a = ScalaGraph(ScalaGraphConfig()).run(BFS(), graph)
        b = ScalaGraph(ScalaGraphConfig(spd=spd)).run(BFS(), graph)
        assert np.array_equal(a.properties, b.properties)


class TestTimingParams:
    def test_higher_overhead_slower(self, graph, pr_reference):
        fast = run_pr(
            ScalaGraphConfig(timing=TimingParams(phase_overhead_cycles=16)),
            graph,
            pr_reference,
        )
        slow = run_pr(
            ScalaGraphConfig(timing=TimingParams(phase_overhead_cycles=512)),
            graph,
            pr_reference,
        )
        assert slow.total_cycles > fast.total_cycles

    def test_wider_links_never_slower(self, graph, pr_reference):
        narrow = run_pr(
            ScalaGraphConfig(
                timing=TimingParams(noc_link_updates_per_cycle=1)
            ),
            graph,
            pr_reference,
        )
        wide = run_pr(
            ScalaGraphConfig(
                timing=TimingParams(noc_link_updates_per_cycle=16)
            ),
            graph,
            pr_reference,
        )
        assert wide.total_cycles <= narrow.total_cycles
