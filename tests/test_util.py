"""Tests for the shared numpy utilities and determinism guarantees."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import grouped_arange, grouped_arange_from_counts


class TestGroupedArange:
    def test_basic(self):
        keys = np.array([0, 0, 0, 1, 1, 3])
        assert grouped_arange(keys).tolist() == [0, 1, 2, 0, 1, 0]

    def test_single_group(self):
        assert grouped_arange(np.zeros(4, dtype=int)).tolist() == [0, 1, 2, 3]

    def test_all_distinct(self):
        assert grouped_arange(np.arange(5)).tolist() == [0] * 5

    def test_empty(self):
        assert grouped_arange(np.array([])).size == 0

    @given(st.lists(st.integers(0, 5), max_size=50))
    def test_property_matches_python(self, values):
        keys = np.array(sorted(values), dtype=np.int64)
        result = grouped_arange(keys)
        seen = {}
        for key, rank in zip(keys, result):
            assert rank == seen.get(int(key), 0)
            seen[int(key)] = int(rank) + 1


class TestGroupedArangeFromCounts:
    def test_basic(self):
        out = grouped_arange_from_counts(np.array([3, 1, 2]))
        assert out.tolist() == [0, 1, 2, 0, 0, 1]

    def test_zero_counts_skipped(self):
        out = grouped_arange_from_counts(np.array([2, 0, 1]))
        assert out.tolist() == [0, 1, 0]

    def test_empty(self):
        assert grouped_arange_from_counts(np.array([], dtype=int)).size == 0

    @given(st.lists(st.integers(0, 6), max_size=30))
    def test_property_total_length(self, counts):
        counts = np.array(counts, dtype=np.int64)
        out = grouped_arange_from_counts(counts)
        assert out.size == counts.sum()


class TestEndToEndDeterminism:
    """Identical inputs must give bit-identical results — sweeps and
    regression stores rely on it."""

    def test_matrix_runs_identical(self):
        from repro.experiments import run_matrix

        kwargs = dict(
            graphs=["PK"],
            algorithms=["bfs"],
            systems=["ScalaGraph-512"],
            scale_shift=-4,
        )
        a = run_matrix(**kwargs)
        b = run_matrix(**kwargs)
        for key in a.reports:
            assert a.reports[key].total_cycles == b.reports[key].total_cycles
            assert a.reports[key].gteps == b.reports[key].gteps
            assert np.array_equal(
                a.reports[key].properties, b.reports[key].properties
            )

    def test_cycle_sim_deterministic(self):
        from repro.algorithms import BFS
        from repro.core import CycleAccurateScalaGraph, ScalaGraphConfig
        from repro.graph.generators import rmat_graph

        g = rmat_graph(6, edge_factor=5, seed=9)
        cfg = ScalaGraphConfig(num_tiles=1, pe_rows=4, pe_cols=4)
        a = CycleAccurateScalaGraph(cfg).run(BFS(), g)
        b = CycleAccurateScalaGraph(cfg).run(BFS(), g)
        assert a.stats.scatter_cycles == b.stats.scatter_cycles
        assert a.stats.noc_hops == b.stats.noc_hops
