"""Direction-optimizing BFS tests."""

import numpy as np
import pytest

from repro.algorithms import BFS, run_direction_optimizing_bfs, run_reference
from repro.algorithms.dobfs import as_workload
from repro.core import ScalaGraph, ScalaGraphConfig
from repro.errors import ConfigurationError
from repro.graph.generators import path_graph, rmat_graph, star_graph


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(9, edge_factor=10, seed=2)


class TestCorrectness:
    def test_depths_match_plain_bfs(self, graph):
        dobfs = run_direction_optimizing_bfs(graph, root=0)
        plain = run_reference(BFS(root=0), graph)
        assert np.array_equal(dobfs.depths, plain.properties)

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_depths_across_graphs(self, seed):
        g = rmat_graph(7, edge_factor=6, seed=seed)
        dobfs = run_direction_optimizing_bfs(g, root=1)
        plain = run_reference(BFS(root=1), g)
        assert np.array_equal(dobfs.depths, plain.properties)

    def test_path_graph_never_pulls(self):
        """On a path the frontier is always one vertex: pure push."""
        g = path_graph(20)
        dobfs = run_direction_optimizing_bfs(g, root=0)
        assert dobfs.pull_iterations == 0
        assert np.array_equal(
            dobfs.depths, run_reference(BFS(root=0), g).properties
        )

    def test_star_switches_to_pull(self):
        """A hub frontier covering all edges triggers the alpha rule."""
        g = star_graph(100, outward=True)
        dobfs = run_direction_optimizing_bfs(g, root=0, alpha=2.0)
        assert dobfs.pull_iterations >= 1
        assert np.all(dobfs.depths[1:] == 1)

    def test_invalid_params(self, graph):
        with pytest.raises(ConfigurationError):
            run_direction_optimizing_bfs(graph, root=-1)
        with pytest.raises(ConfigurationError):
            run_direction_optimizing_bfs(graph, alpha=0)


class TestEdgeSavings:
    def test_pull_examines_fewer_edges(self, graph):
        """The whole point: on a low-diameter power-law graph the
        direction-optimized traversal examines fewer edges than the
        push-only one."""
        dobfs = run_direction_optimizing_bfs(graph, root=0)
        plain = run_reference(BFS(root=0), graph)
        assert dobfs.pull_iterations >= 1
        assert dobfs.total_edges_examined < plain.total_edges_traversed

    def test_pull_steps_record_transposed_edges(self, graph):
        dobfs = run_direction_optimizing_bfs(graph, root=0)
        for step in dobfs.steps:
            if step.mode == "pull":
                # dst of every examined edge is an unvisited vertex.
                assert np.isin(step.edge_dst, step.active_vertices).all()

    def test_precomputed_transpose(self, graph):
        rev = graph.reversed()
        a = run_direction_optimizing_bfs(graph, root=0, transpose=rev)
        b = run_direction_optimizing_bfs(graph, root=0)
        assert np.array_equal(a.depths, b.depths)


class TestAcceleratorIntegration:
    def test_run_trace_accepts_dobfs_workload(self, graph):
        dobfs = run_direction_optimizing_bfs(graph, root=0)
        accel = ScalaGraph(ScalaGraphConfig())
        report = accel.run_trace(
            graph,
            as_workload(dobfs),
            algorithm="dobfs",
            monotonic=True,
            properties=dobfs.depths,
        )
        assert report.algorithm == "dobfs"
        assert report.total_edges_traversed == dobfs.total_edges_examined
        assert report.total_cycles > 0

    def test_dobfs_faster_than_push_bfs_on_accelerator(self, graph):
        """Fewer examined edges should translate into fewer cycles."""
        accel = ScalaGraph(ScalaGraphConfig())
        plain_report = accel.run(BFS(root=0), graph)
        dobfs = run_direction_optimizing_bfs(graph, root=0)
        dobfs_report = accel.run_trace(
            graph, as_workload(dobfs), algorithm="dobfs", monotonic=True
        )
        assert dobfs_report.total_cycles < plain_report.total_cycles
