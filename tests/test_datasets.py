"""Unit tests for the paper-dataset stand-in registry."""

import pytest

from repro.errors import GraphFormatError
from repro.graph.datasets import DATASET_ORDER, DATASETS, load_dataset


class TestRegistry:
    def test_all_paper_datasets_present(self):
        # Table III's five evaluation graphs plus Table I's Flickr.
        assert set(DATASETS) == {"FL", "PK", "LJ", "OR", "RM", "TW"}
        assert DATASET_ORDER == ("PK", "LJ", "OR", "RM", "TW")

    def test_paper_statistics_recorded(self):
        """Table III's vertex/edge counts are preserved as metadata."""
        assert DATASETS["TW"].paper_edges == 1_468_400_000
        assert DATASETS["PK"].paper_vertices == 1_600_000

    def test_standin_average_degree_matches_paper(self):
        """The stand-in's average degree tracks the original's."""
        for spec in DATASETS.values():
            paper_degree = spec.paper_edges / spec.paper_vertices
            assert spec.edge_factor == pytest.approx(paper_degree, rel=0.35)

    def test_rmat_params_sum_to_one(self):
        for spec in DATASETS.values():
            a, b, c = spec.rmat_params()
            assert a + b + c <= 1.0 + 1e-12
            assert min(a, b, c) >= 0


class TestLoading:
    def test_load_by_code_and_name(self):
        by_code = load_dataset("PK", scale_shift=-6)
        by_name = load_dataset("Pokec", scale_shift=-6)
        assert by_code.num_edges == by_name.num_edges

    def test_case_insensitive(self):
        g = load_dataset("pk", scale_shift=-6)
        assert g.name == "PK"

    def test_scale_shift(self):
        small = load_dataset("LJ", scale_shift=-4)
        smaller = load_dataset("LJ", scale_shift=-5)
        assert small.num_vertices == 2 * smaller.num_vertices

    def test_weighted(self):
        g = load_dataset("PK", scale_shift=-6, weighted=True)
        assert g.is_weighted
        assert g.weights.max() <= 255

    def test_deterministic_by_default(self):
        a = load_dataset("OR", scale_shift=-5)
        b = load_dataset("OR", scale_shift=-5)
        assert (a.indices == b.indices).all()

    def test_seed_override(self):
        a = load_dataset("OR", scale_shift=-5, seed=1)
        b = load_dataset("OR", scale_shift=-5, seed=2)
        assert not (a.indices == b.indices).all()

    def test_unknown_dataset(self):
        with pytest.raises(GraphFormatError):
            load_dataset("nope")

    def test_excessive_shift(self):
        with pytest.raises(GraphFormatError):
            load_dataset("PK", scale_shift=-100)

    def test_twitter_is_most_skewed(self):
        """TW's stand-in should have the heaviest tail (its RMAT `a` is
        the largest), mirroring the real Twitter graph."""
        tw = load_dataset("TW", scale_shift=-4)
        orr = load_dataset("OR", scale_shift=-3)  # similar edge count
        tw_skew = tw.max_degree() / tw.average_degree
        or_skew = orr.max_degree() / orr.average_degree
        assert tw_skew > or_skew
