"""Cycle-level mesh NoC tests: routing correctness, latency, conflicts."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.noc.mesh import MeshNetwork
from repro.noc.packet import Packet
from repro.noc.router import EAST, LOCAL, NORTH, SOUTH, WEST, xy_output_port
from repro.noc.topology import MeshTopology
from repro.noc.traffic import xy_hop_counts


def drained(topology, packets, **kwargs):
    net = MeshNetwork(topology, **kwargs)
    for p in packets:
        net.schedule(p)
    stats = net.run_until_drained()
    return net, stats


class TestXYRouting:
    def test_route_decisions(self):
        topo = MeshTopology(4, 4)
        # From node 5 (1,1): east to column 3, then south to row 3.
        assert xy_output_port(topo, 5, 15) == EAST
        assert xy_output_port(topo, 7, 15) == SOUTH
        assert xy_output_port(topo, 5, 4) == WEST
        assert xy_output_port(topo, 5, 1) == NORTH
        assert xy_output_port(topo, 5, 5) == LOCAL

    def test_single_packet_delivery(self):
        topo = MeshTopology(4, 4)
        p = Packet(src=0, dst=15)
        net, stats = drained(topo, [p])
        assert stats.delivered == 1
        assert p.delivered_cycle is not None

    def test_latency_equals_hops_for_lone_packet(self):
        topo = MeshTopology(4, 4)
        for src, dst in [(0, 15), (3, 12), (0, 0), (5, 6)]:
            p = Packet(src=src, dst=dst)
            drained(topo, [p])
            assert p.latency == topo.hop_distance(src, dst)

    def test_all_pairs_delivered(self):
        topo = MeshTopology(3, 3)
        packets = [
            Packet(src=s, dst=d)
            for s in range(9)
            for d in range(9)
        ]
        _, stats = drained(topo, packets)
        assert stats.delivered == 81

    def test_total_hops_match_analytic(self):
        topo = MeshTopology(4, 4)
        rng = np.random.default_rng(0)
        src = rng.integers(0, 16, 50)
        dst = rng.integers(0, 16, 50)
        packets = [Packet(src=int(s), dst=int(d)) for s, d in zip(src, dst)]
        _, stats = drained(topo, packets)
        assert stats.total_hops == int(xy_hop_counts(topo, src, dst).sum())

    def test_payload_preserved(self):
        topo = MeshTopology(2, 2)
        p = Packet(src=0, dst=3, vertex=42, value=3.5)
        net, _ = drained(topo, [p])
        delivered = net.delivered[0]
        assert delivered.vertex == 42 and delivered.value == 3.5


class TestContention:
    def test_converging_traffic_serialises(self):
        """Many packets to one node: the destination's local port can
        eject only one per cycle, so drain time >= packet count."""
        topo = MeshTopology(4, 4)
        packets = [Packet(src=s, dst=5) for s in range(16) if s != 5]
        _, stats = drained(topo, packets)
        assert stats.cycles >= 15

    def test_conflicts_counted(self):
        topo = MeshTopology(1, 4)
        # Two packets share the eastbound path simultaneously.
        packets = [Packet(src=0, dst=3), Packet(src=0, dst=3)]
        _, stats = drained(topo, packets)
        assert stats.delivered == 2

    def test_backpressure_with_tiny_buffers(self):
        topo = MeshTopology(2, 2)
        packets = [Packet(src=0, dst=3) for _ in range(20)]
        net, stats = drained(topo, packets, buffer_depth=1)
        assert stats.delivered == 20

    def test_fairness_under_sustained_load(self):
        """Round-robin arbitration must not starve any input."""
        topo = MeshTopology(1, 3)
        # Node 1 forwards traffic from node 0 and injects its own.
        packets = [Packet(src=0, dst=2, injected_cycle=i) for i in range(10)]
        packets += [Packet(src=1, dst=2, injected_cycle=i) for i in range(10)]
        net, stats = drained(topo, packets)
        sources = [p.src for p in net.delivered]
        # Both sources appear in the first half of deliveries.
        assert set(sources[:10]) == {0, 1}


class TestScheduling:
    def test_injection_at_future_cycle(self):
        topo = MeshTopology(2, 2)
        p = Packet(src=0, dst=1, injected_cycle=10)
        net = MeshNetwork(topo)
        net.schedule(p)
        stats = net.run_until_drained()
        assert p.delivered_cycle >= 10

    def test_inject_returns_false_when_full(self):
        topo = MeshTopology(2, 2)
        net = MeshNetwork(topo, buffer_depth=1)
        assert net.inject(Packet(src=0, dst=3))
        assert not net.inject(Packet(src=0, dst=3))

    def test_invalid_nodes_rejected(self):
        topo = MeshTopology(2, 2)
        net = MeshNetwork(topo)
        with pytest.raises(ConfigurationError):
            net.schedule(Packet(src=0, dst=99))
        with pytest.raises(ConfigurationError):
            net.schedule(Packet(src=-1, dst=0))

    def test_max_cycles_guard(self):
        topo = MeshTopology(2, 2)
        net = MeshNetwork(topo)
        net.schedule(Packet(src=0, dst=3, injected_cycle=0))
        with pytest.raises(SimulationError):
            net.run_until_drained(max_cycles=1)

    def test_empty_run(self):
        topo = MeshTopology(2, 2)
        net = MeshNetwork(topo)
        stats = net.run_until_drained()
        assert stats.delivered == 0
        assert stats.cycles == 0

    def test_stats_average_latency(self):
        topo = MeshTopology(1, 2)
        p = Packet(src=0, dst=1)
        net, stats = drained(topo, [p])
        assert stats.average_latency == pytest.approx(p.latency)
