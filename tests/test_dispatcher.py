"""Dispatcher model tests: degree-aware packing and inter-phase pipelining."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dispatcher import (
    apply_compute_cycles,
    pack_lines,
    pipeline_schedule,
    scatter_compute_cycles,
)
from repro.errors import ConfigurationError


class TestPackLines:
    def test_single_low_degree_vertex(self):
        lines = pack_lines(
            np.array([3]), np.array([0]), num_groups=1, line_width=16, window=1
        )
        assert lines[0] == 1

    def test_high_degree_vertex_spans_lines(self):
        lines = pack_lines(
            np.array([33]), np.array([0]), num_groups=1, line_width=16, window=1
        )
        assert lines[0] == 3  # 2 full + 1 remainder

    def test_window_one_is_one_vertex_per_line(self):
        """Figure 19a's baseline: each low-degree vertex occupies its own
        dispatch line."""
        degrees = np.array([2, 3, 1, 4])
        lines = pack_lines(degrees, np.zeros(4, dtype=int), 1, 16, window=1)
        assert lines[0] == 4

    def test_window_packs_low_degree_vertices(self):
        """Section IV-C: multiple low-degree vertices share one line."""
        degrees = np.array([2, 3, 1, 4])
        lines = pack_lines(degrees, np.zeros(4, dtype=int), 1, 16, window=16)
        assert lines[0] == 1  # 10 edges fit one 16-wide line

    def test_window_capped_by_line_width(self):
        degrees = np.full(8, 4)  # 32 edges
        lines = pack_lines(degrees, np.zeros(8, dtype=int), 1, 16, window=16)
        assert lines[0] == 2  # edges bound, not vertex bound

    def test_window_limits_vertices_per_line(self):
        degrees = np.ones(8, dtype=int)  # 8 single-edge vertices
        lines = pack_lines(degrees, np.zeros(8, dtype=int), 1, 16, window=4)
        assert lines[0] == 2  # 4 vertices per line max

    def test_monotone_in_window(self):
        rng = np.random.default_rng(0)
        degrees = rng.integers(1, 20, 100)
        groups = rng.integers(0, 4, 100)
        prev = None
        for window in (1, 2, 4, 8, 16):
            total = pack_lines(degrees, groups, 4, 16, window).sum()
            if prev is not None:
                assert total <= prev
            prev = total

    def test_per_group_accounting(self):
        degrees = np.array([16, 16, 1])
        groups = np.array([0, 1, 1])
        lines = pack_lines(degrees, groups, 2, 16, window=1)
        assert lines[0] == 1
        assert lines[1] == 2

    def test_lower_bound_edges_over_width(self):
        rng = np.random.default_rng(1)
        degrees = rng.integers(1, 50, 200)
        lines = pack_lines(degrees, np.zeros(200, dtype=int), 1, 16, 16)
        assert lines[0] >= np.ceil(degrees.sum() / 16)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            pack_lines(np.array([1]), np.array([0]), 1, 0, 1)
        with pytest.raises(ConfigurationError):
            pack_lines(np.array([1]), np.array([0, 1]), 2, 16, 1)

    @given(
        st.lists(st.integers(1, 40), min_size=1, max_size=50),
        st.integers(1, 16),
    )
    def test_always_enough_lines_for_edges(self, degrees, window):
        degrees = np.array(degrees)
        lines = pack_lines(degrees, np.zeros(degrees.size, dtype=int), 1, 16, window)
        assert lines[0] * 16 >= degrees.sum()

    @given(
        st.lists(st.integers(1, 40), min_size=1, max_size=50),
    )
    def test_never_fewer_than_fully_packed(self, degrees):
        degrees = np.array(degrees)
        lines = pack_lines(
            degrees, np.zeros(degrees.size, dtype=int), 1, 16, window=10_000
        )
        assert lines[0] <= np.ceil(degrees.sum() / 16) + degrees.size


class TestScatterCycles:
    def test_max_over_rows(self):
        degrees = np.array([16, 16, 16])
        rows = np.array([0, 0, 1])
        cycles = scatter_compute_cycles(degrees, rows, 2, 16, 16)
        assert cycles == 2.0

    def test_dispatch_efficiency(self):
        degrees = np.array([16])
        cycles = scatter_compute_cycles(
            degrees, np.array([0]), 1, 16, 16, dispatch_efficiency=0.5
        )
        assert cycles == 2.0

    def test_empty(self):
        cycles = scatter_compute_cycles(
            np.array([], dtype=int), np.array([], dtype=int), 4, 16, 16
        )
        assert cycles == 0.0


class TestApplyCycles:
    def test_busiest_pe(self):
        touched = np.array([0, 0, 0, 1, 2])
        assert apply_compute_cycles(touched, 4) == 3.0

    def test_empty(self):
        assert apply_compute_cycles(np.array([], dtype=int), 4) == 0.0


class TestPipelineSchedule:
    def test_disabled_is_serial(self):
        total, overlaps = pipeline_schedule([10, 10], [5, 5], enabled=False)
        assert total == 30
        assert overlaps == [0.0, 0.0]

    def test_overlap_bounded_by_next_scatter(self):
        total, overlaps = pipeline_schedule(
            [10, 4], [8, 8], enabled=True, efficiency=1.0
        )
        # Apply 0 (8) overlaps Scatter 1 (4): only 4 cycles hide.
        assert overlaps == [4.0, 0.0]
        assert total == 30 - 4

    def test_overlap_bounded_by_apply(self):
        total, overlaps = pipeline_schedule(
            [10, 20], [5, 5], enabled=True, efficiency=1.0
        )
        assert overlaps == [5.0, 0.0]

    def test_efficiency_scales_overlap(self):
        _, overlaps = pipeline_schedule(
            [10, 10], [5, 5], enabled=True, efficiency=0.5
        )
        assert overlaps[0] == 2.5

    def test_last_apply_not_overlapped(self):
        total, overlaps = pipeline_schedule(
            [10], [100], enabled=True, efficiency=1.0
        )
        assert total == 110
        assert overlaps == [0.0]

    def test_speedup_capped_at_ideal(self):
        """Perfect pipelining on equal phases approaches 2x, never more
        (the Figure 19b ceiling)."""
        scatter = [10.0] * 50
        apply = [10.0] * 50
        total, _ = pipeline_schedule(scatter, apply, enabled=True, efficiency=1.0)
        serial = sum(scatter) + sum(apply)
        assert serial / total <= 2.0
        assert serial / total > 1.8

    def test_rejects_misaligned(self):
        with pytest.raises(ConfigurationError):
            pipeline_schedule([1, 2], [1], enabled=True)


class TestRowDispatcherIssueLine:
    """Degree-aware window edge cases of the cycle simulator's DU
    (``_RowDispatcher.issue_line``), cross-checked against both the
    analytic ``pack_lines`` model and the vectorised engine's schedule
    replayer (``fastsim._row_line_counts``)."""

    @staticmethod
    def _lines(degrees, line_width, window):
        from repro.core.cycle_sim import _RowDispatcher

        du = _RowDispatcher(line_width, window)
        base = 0
        for v, deg in enumerate(degrees):
            du.push_vertex(v, np.arange(base, base + deg))
            base += deg
        lines = []
        while du.busy:
            line = du.issue_line()
            assert line, "a busy DU must always issue a non-empty line"
            assert len(line) <= line_width
            lines.append(line)
        # Every edge dispatched exactly once, in stream order.
        flat = [e for line in lines for e in line]
        assert flat == list(range(base))
        return lines

    def test_line_fills_exactly_at_vertex_boundary(self):
        # 2 + 2 fills a width-4 line with no mid-vertex split; the next
        # vertex starts a fresh line.
        lines = self._lines([2, 2, 3], line_width=4, window=16)
        assert [len(l) for l in lines] == [4, 3]

    def test_mid_vertex_resume_across_cycles(self):
        # A degree-10 vertex spans lines 4+4+2; the trailing remainder
        # shares its final line with the next vertices because a resumed
        # vertex does not count against the fresh line's window.
        lines = self._lines([10, 1, 1], line_width=4, window=16)
        assert [len(l) for l in lines] == [4, 4, 4]

    def test_mid_vertex_resume_counts_once_against_window(self):
        # The split vertex resumes at the head of the next line and its
        # completion consumes one window slot there (not two): line 2
        # holds the 2-edge remainder plus one fresh vertex, and the
        # window — not the width — ends the line.
        lines = self._lines([6, 1, 1], line_width=4, window=2)
        assert [len(l) for l in lines] == [4, 3, 1]

    def test_window_one_is_one_vertex_per_line(self):
        lines = self._lines([1, 1, 1], line_width=16, window=1)
        assert [len(l) for l in lines] == [1, 1, 1]

    def test_window_limits_vertices_per_line(self):
        lines = self._lines([1, 1, 1, 1], line_width=16, window=2)
        assert [len(l) for l in lines] == [2, 2]

    @given(
        st.lists(st.integers(1, 9), min_size=1, max_size=8),
        st.integers(2, 6),
    )
    def test_window_one_matches_pack_lines_exactly(self, degrees, width):
        """At window=1 the greedy DU and the analytic model coincide:
        both issue ceil(d / width) lines per vertex."""
        got = len(self._lines(degrees, width, window=1))
        want = pack_lines(
            np.array(degrees),
            np.zeros(len(degrees), dtype=np.int64),
            1,
            width,
            1,
        )[0]
        assert got == int(want)

    @given(
        st.lists(st.integers(1, 9), min_size=1, max_size=8),
        st.integers(2, 6),
        st.integers(1, 6),
    )
    def test_edge_conservation_and_line_caps(self, degrees, width, window):
        """Any workload: every line respects the width cap and the
        window cap on *newly started* vertices, and the line count is
        bounded below by the bandwidth bound."""
        lines = self._lines(degrees, width, window)
        total = sum(degrees)
        assert len(lines) >= -(-total // width)
        # Window cap: count vertices *starting* in each line.
        starts = np.cumsum([0] + degrees[:-1])
        for line in lines:
            started = sum(1 for e in line if e in set(starts.tolist()))
            assert started <= window

    @given(
        st.lists(st.integers(1, 9), min_size=1, max_size=8),
        st.integers(2, 6),
        st.integers(1, 6),
    )
    def test_fastsim_replayer_matches_issue_line(self, degrees, width, window):
        """The vectorised engine precomputes dispatch by replaying
        issue_line arithmetically; the per-cycle line sizes must agree
        edge-for-edge on every workload."""
        from repro.core.fastsim import _row_line_counts

        lines = self._lines(degrees, width, window)
        counts = _row_line_counts(degrees, width, window)
        assert counts == [len(l) for l in lines]
